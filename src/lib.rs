//! # xmem — Expressive Memory, end to end
//!
//! The facade crate of the XMem reproduction (ISCA 2018, Vijaykumar et al.):
//! it re-exports every layer of the system so applications can depend on a
//! single crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `xmem-core` | the Atom abstraction, XMemLib, AAM/AST/GAT/PAT/AMU/ALB |
//! | [`cpu`] | `cpu-sim` | trace-driven OOO core timing model |
//! | [`cache`] | `cache-sim` | caches, DRRIP, prefetchers, pinning hierarchy |
//! | [`dram`] | `dram-sim` | DDR3 banks, FR-FCFS, address mappings |
//! | [`os`] | `os-sim` | page tables, frame placement, program loading |
//! | [`workloads`] | `workloads` | Polybench-style kernels + placement mixes |
//! | [`sim`] | `xmem-sim` | the composed full-system machine + experiment runners |
//!
//! ## Quick start
//!
//! Express a high-reuse tile, let the system see it:
//!
//! ```
//! use xmem::core::prelude::*;
//!
//! # fn main() -> Result<(), XMemError> {
//! let mut lib = XMemLib::new();
//! let tile = lib.create_atom(
//!     xmem::core::call_site!(),
//!     "tile",
//!     AtomAttributes::builder()
//!         .access_pattern(AccessPattern::sequential(8))
//!         .reuse(Reuse(200))
//!         .build(),
//! )?;
//!
//! let mut amu = AtomManagementUnit::new(AmuConfig {
//!     aam: AamConfig { phys_bytes: 1 << 20, ..Default::default() },
//!     ..Default::default()
//! });
//! let mmu = IdentityMmu::new();
//! lib.atom_map(&mut amu, &mmu, tile, VirtAddr::new(0x4000), 64 << 10)?;
//! lib.atom_activate(&mut amu, &mmu, tile)?;
//! assert_eq!(amu.active_atom_at(PhysAddr::new(0x5000)), Some(tile));
//! # Ok(())
//! # }
//! ```
//!
//! Or run a whole experiment (see `examples/` for more):
//!
//! ```
//! use xmem::sim::{KernelRun, SystemKind};
//! use xmem::workloads::polybench::{KernelParams, PolybenchKernel};
//!
//! let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
//! let report = KernelRun::new(PolybenchKernel::Gemm, p)
//!     .l3_bytes(16 << 10)
//!     .system(SystemKind::Xmem)
//!     .run();
//! assert!(report.core.ipc() > 0.0);
//! ```
//!
//! Batches of runs go through the parallel sweep engine
//! ([`sim::harness`], also re-exported as [`harness`]): enumerate
//! [`RunSpec`](sim::harness::RunSpec)s, run them on a worker pool, and
//! get order-stable [`RunRecord`](sim::harness::RunRecord)s back:
//!
//! ```
//! use xmem::harness::Sweep;
//! use xmem::sim::{KernelRun, SystemKind};
//! use xmem::workloads::polybench::{KernelParams, PolybenchKernel};
//!
//! let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
//! let specs = [SystemKind::Baseline, SystemKind::Xmem]
//!     .into_iter()
//!     .map(|kind| KernelRun::new(PolybenchKernel::Gemm, p).system(kind).spec())
//!     .collect();
//! let records = Sweep::new(specs).run();
//! assert_eq!(records[0].label, "gemm/Baseline");
//! ```

#![warn(missing_docs)]

pub use cache_sim as cache;
pub use compress_sim as compress;
pub use cpu_sim as cpu;
pub use dram_sim as dram;
pub use os_sim as os;
pub use workloads;
pub use xmem_core as core;
pub use xmem_sim as sim;
pub use xmem_sim::harness;
pub use xmem_sim::report_sink;
