//! Cross-crate integration: the atom lifecycle through a *real* page table
//! (non-identity translation), the loader, and context switches.

use xmem::core::prelude::*;
use xmem::core::process::{ContextSwitchCost, ProcessId, XMemProcess};
use xmem::os::loader::load_segment;
use xmem::os::os::Os;
use xmem::os::placement::FramePolicy;

fn small_amu(phys: u64) -> AtomManagementUnit {
    AtomManagementUnit::new(xmem::core::amu::AmuConfig {
        aam: AamConfig {
            phys_bytes: phys,
            ..Default::default()
        },
        alb_entries: 16,
        page_size: 4096,
    })
}

/// Atoms mapped through a randomized page table resolve correctly at
/// *physical* addresses even though frames are scattered.
#[test]
fn atom_mapping_through_scattered_frames() {
    let mut os = Os::new(1 << 20, 4096, FramePolicy::Randomized { seed: 99 });
    let mut amu = small_amu(1 << 20);
    let mut lib = XMemLib::new();

    let atom = lib
        .create_atom(
            xmem::core::call_site!(),
            "table",
            AtomAttributes::builder().reuse(Reuse(77)).build(),
        )
        .expect("create");
    let va = os.malloc(24 << 10, Some(atom)).expect("malloc");
    lib.atom_map(&mut amu, os.page_table(), atom, va, 24 << 10)
        .expect("map");
    lib.atom_activate(&mut amu, os.page_table(), atom)
        .expect("activate");

    // Every byte of the VA range must resolve to the atom via its PA,
    // regardless of which frame backs it.
    for off in (0..(24 << 10)).step_by(4096) {
        let pa = os.page_table().translate(va + off).expect("allocated page");
        assert_eq!(amu.active_atom_at(pa), Some(atom), "offset {off:#x}");
    }
    // The working set the AMU infers matches the mapping.
    assert_eq!(amu.mapped_bytes(atom), 24 << 10);

    // An address outside the atom resolves to nothing.
    let other = os.malloc(4096, None).expect("malloc");
    let pa = os.page_table().translate(other).expect("mapped");
    assert_eq!(amu.active_atom_at(pa), None);
}

/// The compile→load→translate flow preserves attribute semantics
/// end to end.
#[test]
fn loader_roundtrips_attributes() {
    let mut lib = XMemLib::new();
    lib.create_atom(
        xmem::core::call_site!(),
        "hot_stream",
        AtomAttributes::builder()
            .data_type(DataType::Float64)
            .access_pattern(AccessPattern::sequential(8))
            .intensity(AccessIntensity(200))
            .reuse(Reuse(150))
            .build(),
    )
    .expect("create");

    let loaded =
        load_segment(ProcessId(1), &lib.segment(), &AttributeTranslator::new()).expect("load");
    let id = AtomId::new(0);
    let cache = loaded.cache_pat.get(id).expect("cache primitive");
    assert!(cache.pin_candidate);
    assert_eq!(cache.reuse, 150);
    let pf = loaded.pf_pat.get(id).expect("prefetch primitive");
    assert_eq!(pf.stride, Some(8));
    let placement = &loaded.placement[0].1;
    assert!(placement.high_rbl);
    assert_eq!(placement.intensity, 200);
}

/// Context switches: per-process AST images swap through the AMU, ALB and
/// PAT flushes keep lookups coherent (§4.3, §4.4(4)).
#[test]
fn context_switch_swaps_process_state() {
    let mmu = IdentityMmu::new();
    let mut amu = small_amu(1 << 20);
    let mut lib_a = XMemLib::new();
    let atom_a = lib_a
        .create_atom(xmem::core::call_site!(), "a", AtomAttributes::default())
        .expect("create");
    lib_a
        .atom_map(&mut amu, &mmu, atom_a, VirtAddr::new(0x10000), 4096)
        .expect("map");
    lib_a.atom_activate(&mut amu, &mmu, atom_a).expect("act");
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x10800)), Some(atom_a));

    // "Context switch": save process A's AST image, clear hardware state
    // (ALB flush + AAM scrub for the outgoing process), restore B's.
    let mut proc_a = XMemProcess::load(ProcessId(1), &lib_a.segment()).expect("load");
    proc_a.ast = amu.ast().clone();
    amu.clear();
    amu.flush_alb();
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x10800)), None);

    // Process B maps its own atom 0 at a different place.
    let mut lib_b = XMemLib::new();
    let atom_b = lib_b
        .create_atom(xmem::core::call_site!(), "b", AtomAttributes::default())
        .expect("create");
    lib_b
        .atom_map(&mut amu, &mmu, atom_b, VirtAddr::new(0x40000), 4096)
        .expect("map");
    lib_b.atom_activate(&mut amu, &mmu, atom_b).expect("act");
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x40000)), Some(atom_b));
    // A's old range is gone.
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x10800)), None);

    // A's saved AST still records its activation for restore.
    assert!(proc_a.ast.is_active(atom_a));
    // And the cost model stays within the paper's envelope.
    let cost = ContextSwitchCost::default();
    assert!(cost.total_ns() < 1000.0);
}

/// The many-to-one invariant survives arbitrary overlapping remaps.
#[test]
fn overlapping_remaps_keep_single_owner() {
    let mmu = IdentityMmu::new();
    let mut amu = small_amu(1 << 20);
    let mut lib = XMemLib::new();
    let a = lib
        .create_atom(xmem::core::call_site!(), "a", AtomAttributes::default())
        .expect("create");
    let b = lib
        .create_atom(xmem::core::call_site!(), "b", AtomAttributes::default())
        .expect("create");
    lib.atom_activate(&mut amu, &mmu, a).expect("act");
    lib.atom_activate(&mut amu, &mmu, b).expect("act");

    // a covers [0, 64K); b then takes the middle [16K, 48K).
    lib.atom_map(&mut amu, &mmu, a, VirtAddr::new(0), 64 << 10)
        .expect("map");
    lib.atom_map(&mut amu, &mmu, b, VirtAddr::new(16 << 10), 32 << 10)
        .expect("map");

    assert_eq!(amu.active_atom_at(PhysAddr::new(0)), Some(a));
    assert_eq!(amu.active_atom_at(PhysAddr::new(20 << 10)), Some(b));
    assert_eq!(amu.active_atom_at(PhysAddr::new(50 << 10)), Some(a));
    // Working sets reflect the split ownership.
    assert_eq!(amu.mapped_bytes(b), 32 << 10);
    assert_eq!(amu.mapped_bytes(a), 32 << 10);
}
