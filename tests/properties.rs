//! Randomized property tests for the core data structures and invariants
//! across crates.
//!
//! The build environment is offline, so instead of `proptest` these drive
//! each property from a seeded [`SplitMix64`] stream: every case is fully
//! deterministic and reproducible (the failing seed is the loop index).

use std::collections::{HashMap, HashSet};
use xmem::cache::{Cache, CacheConfig, InsertPriority, ReplacementPolicy};
use xmem::core::aam::{AamConfig, AtomAddressMap};
use xmem::core::addr::PhysAddr;
use xmem::core::alb::AtomLookasideBuffer;
use xmem::core::atom::{AtomId, StaticAtom};
use xmem::core::attrs::{
    AccessIntensity, AccessPattern, AtomAttributes, DataProps, DataType, Reuse, RwChar,
};
use xmem::core::rng::SplitMix64;
use xmem::core::segment::AtomSegment;
use xmem::cpu::batch::OpAttrs;
use xmem::cpu::{Core, CoreConfig, FixedLatency, Op};
use xmem::dram::{AddressMapping, Dram, DramConfig};

const GRAN: u64 = 512;
const PHYS: u64 = 1 << 20;

/// The AAM agrees with a trivial per-unit reference model under any
/// sequence of aligned map/unmap operations.
#[test]
fn aam_matches_reference_model() {
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0x11A0 + case);
        let mut aam = AtomAddressMap::new(AamConfig {
            phys_bytes: PHYS,
            granularity: GRAN,
            id_bits: 8,
        });
        let mut model: HashMap<u64, u8> = HashMap::new();
        let ops = rng.below(64);
        for _ in 0..ops {
            let unit = rng.below(PHYS / GRAN);
            let len_units = rng.range(1, 16);
            let start = unit * GRAN;
            let len = (len_units * GRAN).min(PHYS - start);
            if len == 0 {
                continue;
            }
            if rng.percent(50) {
                let atom = rng.below(254) as u8;
                aam.map_range(PhysAddr::new(start), len, AtomId::new(atom))
                    .unwrap();
                for u in unit..unit + len.div_ceil(GRAN) {
                    model.insert(u, atom);
                }
            } else {
                aam.unmap_range(PhysAddr::new(start), len).unwrap();
                for u in unit..unit + len.div_ceil(GRAN) {
                    model.remove(&u);
                }
            }
        }
        for unit in 0..PHYS / GRAN {
            let expect = model.get(&unit).map(|&a| AtomId::new(a));
            assert_eq!(
                aam.lookup(PhysAddr::new(unit * GRAN + GRAN / 2)),
                expect,
                "case {case}, unit {unit}"
            );
        }
    }
}

/// The ALB is a transparent cache: with any mapping state and lookup
/// sequence, ALB-mediated lookups equal direct AAM lookups.
#[test]
fn alb_is_transparent() {
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0xA1B + case);
        let mut aam = AtomAddressMap::new(AamConfig {
            phys_bytes: PHYS,
            granularity: GRAN,
            id_bits: 8,
        });
        for _ in 0..rng.range(1, 16) {
            let unit = rng.below(PHYS / GRAN);
            let start = unit * GRAN;
            let len = (rng.range(1, 8) * GRAN).min(PHYS - start);
            if len > 0 {
                aam.map_range(PhysAddr::new(start), len, AtomId::new(rng.below(254) as u8))
                    .unwrap();
            }
        }
        let mut alb = AtomLookasideBuffer::new(4, 4096);
        for _ in 0..rng.range(1, 128) {
            let pa = rng.below(PHYS);
            assert_eq!(
                alb.lookup(PhysAddr::new(pa), &aam),
                aam.lookup(PhysAddr::new(pa)),
                "case {case}, pa {pa:#x}"
            );
        }
    }
}

fn random_attrs(rng: &mut SplitMix64) -> AtomAttributes {
    let pattern = match rng.below(3) {
        0 => AccessPattern::Regular {
            stride: rng.next_u64() as i64,
        },
        1 => AccessPattern::Irregular,
        _ => AccessPattern::NonDet,
    };
    let rw = match rng.below(3) {
        0 => RwChar::ReadOnly,
        1 => RwChar::ReadWrite,
        _ => RwChar::WriteOnly,
    };
    let data_type = match rng.below(8) {
        0 => DataType::Int8,
        1 => DataType::Int16,
        2 => DataType::Int32,
        3 => DataType::Int64,
        4 => DataType::Float32,
        5 => DataType::Float64,
        6 => DataType::Char8,
        _ => DataType::Other,
    };
    AtomAttributes::builder()
        .props(DataProps::from_bits(rng.next_u64() as u32))
        .access_pattern(pattern)
        .rw(rw)
        .intensity(AccessIntensity(rng.below(256) as u8))
        .reuse(Reuse(rng.below(256) as u8))
        .data_type(data_type)
        .build()
}

/// Atom segments round-trip for arbitrary attribute combinations.
#[test]
fn segment_roundtrip() {
    for case in 0..60u64 {
        let mut rng = SplitMix64::new(0x5E6 + case);
        let mut seg = AtomSegment::new();
        let count = rng.below(20);
        for i in 0..count {
            let label: String = (0..rng.below(13))
                .map(|_| (b' ' + rng.below(95) as u8) as char)
                .collect();
            seg.push(StaticAtom::new(
                AtomId::new(i as u8),
                label,
                random_attrs(&mut rng),
            ));
        }
        let parsed = AtomSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(parsed, seg, "case {case}");
    }
}

/// A small LRU cache agrees with a reference model on hit/miss for any
/// access sequence.
#[test]
fn lru_cache_matches_reference() {
    for case in 0..30u64 {
        let mut rng = SplitMix64::new(0x10C + case);
        let config = CacheConfig {
            size_bytes: 1024, // 16 lines, 4 sets x 4 ways
            ways: 4,
            line_bytes: 64,
            latency: 1,
            policy: ReplacementPolicy::Lru,
        };
        let mut cache = Cache::new(config);
        // Reference: per-set vectors in recency order.
        let sets = config.sets() as u64;
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for _ in 0..rng.range(1, 256) {
            let addr = rng.below(4096);
            let line = addr / 64;
            let set = (line % sets) as usize;
            let hit = cache.probe(addr, false);
            let model_hit = model[set].contains(&line);
            assert_eq!(hit, model_hit, "case {case}, addr {addr}");
            if model_hit {
                model[set].retain(|&l| l != line);
                model[set].push(line);
            } else {
                cache.fill(addr, false, InsertPriority::Normal);
                if model[set].len() == config.ways {
                    model[set].remove(0);
                }
                model[set].push(line);
            }
        }
    }
}

/// Core timing is monotone in memory latency and never beats the
/// front-end bound.
#[test]
fn core_latency_monotonicity() {
    for case in 0..30u64 {
        let mut rng = SplitMix64::new(0xC02E + case);
        let ops: Vec<Op> = (0..rng.range(1, 128))
            .map(|_| match rng.below(3) {
                0 => Op::Compute(rng.range(1, 64) as u32),
                1 => Op::load(rng.below(1 << 20)),
                _ => Op::store(rng.below(1 << 20)),
            })
            .collect();
        let lat_a = rng.range(1, 100);
        let lat_b = rng.range(100, 400);
        let mut core = Core::new(CoreConfig::westmere_like());
        let fast = core.run(ops.clone(), &mut FixedLatency { latency: lat_a });
        let slow = core.run(ops.clone(), &mut FixedLatency { latency: lat_b });
        assert!(slow.cycles >= fast.cycles, "case {case}");
        let instructions: u64 = ops.iter().map(|o| o.instructions()).sum();
        assert!(fast.cycles >= instructions / 4, "case {case}");
        assert_eq!(fast.instructions, instructions, "case {case}");
    }
}

/// Every DRAM read access costs at least a row hit; row statistics add up.
#[test]
fn dram_latency_bounds() {
    for case in 0..30u64 {
        let mut rng = SplitMix64::new(0xD4A + case);
        let cfg = DramConfig::ddr3_1066(3.6).with_capacity(1 << 24);
        let mut dram = Dram::new(cfg, AddressMapping::scheme3());
        let count = rng.range(1, 200);
        let mut t = 0;
        for _ in 0..count {
            let a = rng.below(1 << 24);
            let lat = dram.serve(a, OpAttrs::read(), t);
            assert!(
                lat >= cfg.hit_latency(),
                "case {case}: lat {lat} < hit {}",
                cfg.hit_latency()
            );
            t += lat / 2;
        }
        let s = dram.stats();
        assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, count);
        assert_eq!(s.reads, count);
        assert_eq!(s.demand_reads, count);
    }
}

/// All nine address mappings decode distinct addresses to distinct
/// locations (injectivity over a random sample).
#[test]
fn mappings_are_injective() {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0x1117 + case);
        let lines: HashSet<u64> = (0..rng.range(2, 64)).map(|_| rng.below(1 << 18)).collect();
        let cfg = DramConfig::ddr3_1066(3.6).with_capacity(1 << 30);
        for mapping in AddressMapping::all_schemes() {
            let mut seen = HashMap::new();
            for &line in &lines {
                let loc = mapping.decode(line * 64, &cfg);
                let key = (loc.channel, loc.rank, loc.bank, loc.row, loc.col);
                if let Some(prev) = seen.insert(key, line) {
                    panic!("case {case}, {}: {prev} and {line} collide", mapping.name());
                }
            }
        }
    }
}

// ───────────────────── compression & approximation ──────────────────────

use xmem::compress::{
    bdi_decode, bdi_encode, fpc_decode, fpc_encode, max_relative_error, store, zero_rle_decode,
    zero_rle_encode, TruncationLevel,
};

/// Zero-RLE and FPC round-trip arbitrary lines; BDI round-trips whenever
/// it accepts a line.
#[test]
fn compression_roundtrips() {
    for case in 0..60u64 {
        let mut rng = SplitMix64::new(0xC0DE + case);
        let mut line = [0u8; 64];
        // Mix of truly random lines and structured (compressible) lines.
        match case % 3 {
            0 => line.iter_mut().for_each(|b| *b = rng.next_u64() as u8),
            1 => {
                for chunk in line.chunks_mut(8) {
                    let base = 0x1000_0000u64 + rng.below(1 << 16);
                    chunk.copy_from_slice(&base.to_le_bytes());
                }
            }
            _ => {
                for b in line.iter_mut() {
                    *b = if rng.percent(70) {
                        0
                    } else {
                        rng.next_u64() as u8
                    };
                }
            }
        }
        let (enc, size) = zero_rle_encode(&line);
        assert_eq!(zero_rle_decode(&enc), line, "case {case}");
        assert!(size.0 <= 65);

        let (enc, size) = fpc_encode(&line);
        assert_eq!(fpc_decode(&enc), line, "case {case}");
        assert!(size.0 <= 65);

        if let Some((enc, size)) = bdi_encode(&line) {
            assert_eq!(bdi_decode(&enc), line, "case {case}");
            assert!(size.0 < 64, "BDI only accepts when it shrinks");
        }
    }
}

/// Truncated storage always respects the analytic error bound and shrinks
/// by exactly the promised amount.
#[test]
fn approximation_error_bound() {
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0xAB0 + case);
        let values: Vec<f64> = (0..rng.range(1, 64))
            .map(|_| (rng.unit_f64() - 0.5) * 2e12)
            .collect();
        let lvl = TruncationLevel(rng.below(7) as u8);
        let (approx, bytes) = store(&values, lvl);
        assert_eq!(bytes, values.len() * lvl.stored_bytes(), "case {case}");
        let err = max_relative_error(&values, &approx);
        assert!(
            err <= lvl.relative_error_bound() * (1.0 + 1e-12),
            "case {case}: err {err} > bound {}",
            lvl.relative_error_bound()
        );
    }
}

/// The latency histogram's percentile is monotone in q and brackets the
/// recorded samples.
#[test]
fn histogram_percentiles_monotone() {
    use xmem::cpu::LatencyHistogram;
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0x415 + case);
        let samples: Vec<u64> = (0..rng.range(1, 200))
            .map(|_| rng.range(1, 1_000_000))
            .collect();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p10 = h.percentile(0.1);
        let p50 = h.percentile(0.5);
        let p100 = h.percentile(1.0);
        assert!(p10 <= p50 && p50 <= p100, "case {case}");
        let max = *samples.iter().max().expect("non-empty");
        // p100's bucket upper bound is at most 2x the true max.
        assert!(p100 >= max, "case {case}");
        assert!(p100 < max.saturating_mul(2).max(2), "case {case}");
    }
}

/// 2D atom maps agree with an exhaustive per-address reference model.
#[test]
fn map_2d_matches_reference() {
    use xmem::core::addr::VirtAddr;
    use xmem::core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
    use xmem::core::isa::XmemInst;

    let mut done = 0u64;
    let mut case = 0u64;
    while done < 25 {
        let mut rng = SplitMix64::new(0x2D + case);
        case += 1;
        let gran = 512u64;
        let base = rng.below(64) * gran;
        let size_x = rng.range(1, 200);
        let size_y = rng.range(1, 6);
        let len_x = rng.range(1, 8) * gran;
        // Keep the block inside physical memory.
        if base + size_y * len_x + size_x >= (1 << 20) {
            continue;
        }
        done += 1;

        let mut amu = AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: 1 << 20,
                granularity: gran,
                id_bits: 8,
            },
            alb_entries: 8,
            page_size: 4096,
        });
        let mmu = IdentityMmu::new();
        let atom = AtomId::new(1);
        amu.execute(
            &XmemInst::Map2d {
                atom,
                base: VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            },
            &mmu,
        )
        .expect("map2d");
        amu.execute(&XmemInst::Activate(atom), &mmu)
            .expect("activate");

        // Reference: a unit is mapped iff some row's [start, start+size_x)
        // overlaps it.
        for unit in 0..(1u64 << 20) / gran {
            let unit_start = unit * gran;
            let covered = (0..size_y).any(|y| {
                let row_start = base + y * len_x;
                let row_end = row_start + size_x;
                row_start < unit_start + gran && unit_start < row_end
            });
            let got = amu.active_atom_at(PhysAddr::new(unit_start + gran / 2));
            assert_eq!(
                got.is_some(),
                covered,
                "case {case}, unit {unit} (pa {unit_start:#x})"
            );
        }
    }
}
