//! Property-based tests (proptest) for the core data structures and
//! invariants across crates.

use proptest::prelude::*;
use std::collections::HashMap;
use xmem::cache::{Cache, CacheConfig, InsertPriority, ReplacementPolicy};
use xmem::core::aam::{AamConfig, AtomAddressMap};
use xmem::core::addr::PhysAddr;
use xmem::core::alb::AtomLookasideBuffer;
use xmem::core::atom::{AtomId, StaticAtom};
use xmem::core::attrs::{
    AccessIntensity, AccessPattern, AtomAttributes, DataProps, DataType, Reuse, RwChar,
};
use xmem::core::segment::AtomSegment;
use xmem::cpu::{Core, CoreConfig, FixedLatency, Op};
use xmem::dram::{AddressMapping, Dram, DramConfig};

const GRAN: u64 = 512;
const PHYS: u64 = 1 << 20;

/// One AAM operation for the model-based test.
#[derive(Debug, Clone)]
enum AamOp {
    Map { unit: u64, len_units: u64, atom: u8 },
    Unmap { unit: u64, len_units: u64 },
}

fn aam_ops() -> impl Strategy<Value = Vec<AamOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..PHYS / GRAN, 1..16u64, 0..254u8).prop_map(|(unit, len, atom)| AamOp::Map {
                unit,
                len_units: len,
                atom,
            }),
            (0..PHYS / GRAN, 1..16u64).prop_map(|(unit, len)| AamOp::Unmap {
                unit,
                len_units: len,
            }),
        ],
        0..64,
    )
}

proptest! {
    /// The AAM agrees with a trivial per-unit reference model under any
    /// sequence of aligned map/unmap operations.
    #[test]
    fn aam_matches_reference_model(ops in aam_ops()) {
        let mut aam = AtomAddressMap::new(AamConfig {
            phys_bytes: PHYS,
            granularity: GRAN,
            id_bits: 8,
        });
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match *op {
                AamOp::Map { unit, len_units, atom } => {
                    let start = unit * GRAN;
                    let len = (len_units * GRAN).min(PHYS - start);
                    if len == 0 { continue; }
                    aam.map_range(PhysAddr::new(start), len, AtomId::new(atom)).unwrap();
                    for u in unit..unit + len.div_ceil(GRAN) {
                        model.insert(u, atom);
                    }
                }
                AamOp::Unmap { unit, len_units } => {
                    let start = unit * GRAN;
                    let len = (len_units * GRAN).min(PHYS - start);
                    if len == 0 { continue; }
                    aam.unmap_range(PhysAddr::new(start), len).unwrap();
                    for u in unit..unit + len.div_ceil(GRAN) {
                        model.remove(&u);
                    }
                }
            }
        }
        for unit in 0..PHYS / GRAN {
            let expect = model.get(&unit).map(|&a| AtomId::new(a));
            prop_assert_eq!(aam.lookup(PhysAddr::new(unit * GRAN + GRAN / 2)), expect);
        }
    }

    /// The ALB is a transparent cache: with any mapping state and lookup
    /// sequence, ALB-mediated lookups equal direct AAM lookups.
    #[test]
    fn alb_is_transparent(
        maps in prop::collection::vec((0..PHYS / GRAN, 1..8u64, 0..254u8), 1..16),
        probes in prop::collection::vec(0..PHYS, 1..128),
    ) {
        let mut aam = AtomAddressMap::new(AamConfig {
            phys_bytes: PHYS,
            granularity: GRAN,
            id_bits: 8,
        });
        for (unit, len, atom) in &maps {
            let start = unit * GRAN;
            let len = (len * GRAN).min(PHYS - start);
            if len > 0 {
                aam.map_range(PhysAddr::new(start), len, AtomId::new(*atom)).unwrap();
            }
        }
        let mut alb = AtomLookasideBuffer::new(4, 4096);
        for &pa in &probes {
            prop_assert_eq!(
                alb.lookup(PhysAddr::new(pa), &aam),
                aam.lookup(PhysAddr::new(pa))
            );
        }
    }

    /// Atom segments roundtrip for arbitrary attribute combinations.
    #[test]
    fn segment_roundtrip(
        atoms in prop::collection::vec(
            (
                any::<u32>(),                 // props bits
                0..3u8,                       // pattern tag
                any::<i64>(),                 // stride
                0..3u8,                       // rw tag
                any::<u8>(),                  // intensity
                any::<u8>(),                  // reuse
                0..8u8,                       // data type tag
                ".{0,12}",                    // label
            ),
            0..20,
        )
    ) {
        let mut seg = AtomSegment::new();
        for (i, (props, pat, stride, rw, intensity, reuse, dt, label)) in
            atoms.iter().enumerate()
        {
            let pattern = match pat {
                0 => AccessPattern::Regular { stride: *stride },
                1 => AccessPattern::Irregular,
                _ => AccessPattern::NonDet,
            };
            let rw = match rw {
                0 => RwChar::ReadOnly,
                1 => RwChar::ReadWrite,
                _ => RwChar::WriteOnly,
            };
            let data_type = match dt {
                0 => DataType::Int8,
                1 => DataType::Int16,
                2 => DataType::Int32,
                3 => DataType::Int64,
                4 => DataType::Float32,
                5 => DataType::Float64,
                6 => DataType::Char8,
                _ => DataType::Other,
            };
            seg.push(StaticAtom::new(
                AtomId::new(i as u8),
                label.clone(),
                AtomAttributes::builder()
                    .props(DataProps::from_bits(*props))
                    .access_pattern(pattern)
                    .rw(rw)
                    .intensity(AccessIntensity(*intensity))
                    .reuse(Reuse(*reuse))
                    .data_type(data_type)
                    .build(),
            ));
        }
        let parsed = AtomSegment::from_bytes(&seg.to_bytes()).unwrap();
        prop_assert_eq!(parsed, seg);
    }

    /// A small LRU cache agrees with a reference model on hit/miss for any
    /// access sequence.
    #[test]
    fn lru_cache_matches_reference(addrs in prop::collection::vec(0u64..4096, 1..256)) {
        let config = CacheConfig {
            size_bytes: 1024, // 16 lines, 4 sets x 4 ways
            ways: 4,
            line_bytes: 64,
            latency: 1,
            policy: ReplacementPolicy::Lru,
        };
        let mut cache = Cache::new(config);
        // Reference: per-set vectors in recency order.
        let sets = config.sets() as u64;
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for &addr in &addrs {
            let line = addr / 64;
            let set = (line % sets) as usize;
            let hit = cache.probe(addr, false);
            let model_hit = model[set].contains(&line);
            prop_assert_eq!(hit, model_hit, "addr {}", addr);
            if model_hit {
                model[set].retain(|&l| l != line);
                model[set].push(line);
            } else {
                cache.fill(addr, false, InsertPriority::Normal);
                if model[set].len() == config.ways {
                    model[set].remove(0);
                }
                model[set].push(line);
            }
        }
    }

    /// Core timing is monotone in memory latency and never beats the
    /// front-end bound.
    #[test]
    fn core_latency_monotonicity(
        ops in prop::collection::vec(
            prop_oneof![
                (1u32..64).prop_map(Op::Compute),
                (0u64..1 << 20).prop_map(Op::load),
                (0u64..1 << 20).prop_map(Op::store),
            ],
            1..128,
        ),
        lat_a in 1u64..100,
        lat_b in 100u64..400,
    ) {
        let mut core = Core::new(CoreConfig::westmere_like());
        let fast = core.run(ops.clone(), &mut FixedLatency { latency: lat_a });
        let slow = core.run(ops.clone(), &mut FixedLatency { latency: lat_b });
        prop_assert!(slow.cycles >= fast.cycles);
        let instructions: u64 = ops.iter().map(|o| o.instructions()).sum();
        prop_assert!(fast.cycles >= instructions / 4);
        prop_assert_eq!(fast.instructions, instructions);
    }

    /// Every DRAM read access costs at least a row hit and at most one
    /// conflict beyond accumulated queueing; row statistics add up.
    #[test]
    fn dram_latency_bounds(addrs in prop::collection::vec(0u64..(1 << 24), 1..200)) {
        let cfg = DramConfig::ddr3_1066(3.6).with_capacity(1 << 24);
        let mut dram = Dram::new(cfg, AddressMapping::scheme3());
        let mut t = 0;
        for &a in &addrs {
            let lat = dram.access(a, false, t);
            prop_assert!(lat >= cfg.hit_latency(), "lat {} < hit {}", lat, cfg.hit_latency());
            t += lat / 2;
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, addrs.len() as u64);
        prop_assert_eq!(s.reads, addrs.len() as u64);
        prop_assert_eq!(s.demand_reads, addrs.len() as u64);
    }

    /// All nine address mappings decode distinct addresses to distinct
    /// locations (injectivity over a random sample).
    #[test]
    fn mappings_are_injective(lines in prop::collection::hash_set(0u64..(1 << 18), 2..64)) {
        let cfg = DramConfig::ddr3_1066(3.6).with_capacity(1 << 30);
        for mapping in AddressMapping::all_schemes() {
            let mut seen = HashMap::new();
            for &line in &lines {
                let loc = mapping.decode(line * 64, &cfg);
                let key = (loc.channel, loc.rank, loc.bank, loc.row, loc.col);
                if let Some(prev) = seen.insert(key, line) {
                    prop_assert!(false, "{}: {} and {} collide", mapping.name(), prev, line);
                }
            }
        }
    }
}

// ───────────────────── compression & approximation ──────────────────────

use xmem::compress::{
    bdi_decode, bdi_encode, fpc_decode, fpc_encode, max_relative_error, store,
    zero_rle_decode, zero_rle_encode, TruncationLevel,
};

proptest! {
    /// Zero-RLE and FPC round-trip arbitrary lines; BDI round-trips
    /// whenever it accepts a line.
    #[test]
    fn compression_roundtrips(bytes in prop::collection::vec(any::<u8>(), 64)) {
        let line: [u8; 64] = bytes.try_into().expect("64 bytes");
        let (enc, size) = zero_rle_encode(&line);
        prop_assert_eq!(zero_rle_decode(&enc), line);
        prop_assert!(size.0 <= 65);

        let (enc, size) = fpc_encode(&line);
        prop_assert_eq!(fpc_decode(&enc), line);
        prop_assert!(size.0 <= 65);

        if let Some((enc, size)) = bdi_encode(&line) {
            prop_assert_eq!(bdi_decode(&enc), line);
            prop_assert!(size.0 < 64, "BDI only accepts when it shrinks");
        }
    }

    /// Truncated storage always respects the analytic error bound and
    /// shrinks by exactly the promised amount.
    #[test]
    fn approximation_error_bound(
        values in prop::collection::vec(-1e12f64..1e12, 1..64),
        level in 0u8..=6,
    ) {
        let lvl = TruncationLevel(level);
        let (approx, bytes) = store(&values, lvl);
        prop_assert_eq!(bytes, values.len() * lvl.stored_bytes());
        let err = max_relative_error(&values, &approx);
        prop_assert!(
            err <= lvl.relative_error_bound() * (1.0 + 1e-12),
            "err {} > bound {}",
            err,
            lvl.relative_error_bound()
        );
    }

    /// The latency histogram's percentile is monotone in q and brackets
    /// the recorded samples.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(1u64..1_000_000, 1..200)) {
        use xmem::cpu::LatencyHistogram;
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p10 = h.percentile(0.1);
        let p50 = h.percentile(0.5);
        let p100 = h.percentile(1.0);
        prop_assert!(p10 <= p50 && p50 <= p100);
        let max = *samples.iter().max().expect("non-empty");
        // p100's bucket upper bound is at most 2x the true max.
        prop_assert!(p100 >= max);
        prop_assert!(p100 < max.saturating_mul(2).max(2));
    }

    /// 2D atom maps agree with an exhaustive per-address reference model.
    #[test]
    fn map_2d_matches_reference(
        base_unit in 0u64..64,
        size_x in 1u64..200,
        size_y in 1u64..6,
        pitch_units in 1u64..8,
    ) {
        use xmem::core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
        use xmem::core::isa::XmemInst;
        use xmem::core::addr::VirtAddr;

        let gran = 512u64;
        let base = base_unit * gran;
        let len_x = pitch_units * gran;
        // Keep the block inside physical memory.
        prop_assume!(base + size_y * len_x + size_x < (1 << 20));

        let mut amu = AtomManagementUnit::new(AmuConfig {
            aam: xmem::core::aam::AamConfig {
                phys_bytes: 1 << 20,
                granularity: gran,
                id_bits: 8,
            },
            alb_entries: 8,
            page_size: 4096,
        });
        let mmu = IdentityMmu::new();
        let atom = AtomId::new(1);
        amu.execute(
            &XmemInst::Map2d {
                atom,
                base: VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            },
            &mmu,
        )
        .expect("map2d");
        amu.execute(&XmemInst::Activate(atom), &mmu).expect("activate");

        // Reference: a unit is mapped iff some row's [start, start+size_x)
        // overlaps it.
        for unit in 0..(1u64 << 20) / gran {
            let unit_start = unit * gran;
            let covered = (0..size_y).any(|y| {
                let row_start = base + y * len_x;
                let row_end = row_start + size_x;
                row_start < unit_start + gran && unit_start < row_end
            });
            let got = amu.active_atom_at(PhysAddr::new(unit_start + gran / 2));
            prop_assert_eq!(
                got.is_some(),
                covered,
                "unit {} (pa {:#x})",
                unit,
                unit_start
            );
        }
    }
}
