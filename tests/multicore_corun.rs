//! Integration tests for the multi-core machine: contention, fairness, and
//! XMem's cross-core coordination.

use xmem::sim::{run_corun, MultiCoreConfig, SystemKind};
use xmem::workloads::hog::{random_hog, stream_hog};
use xmem::workloads::polybench::{KernelParams, PolybenchKernel};
use xmem::workloads::sink::{LogSink, TraceEvent, TraceSink};

fn record(f: impl Fn(&mut dyn TraceSink)) -> Vec<TraceEvent> {
    let mut log = LogSink::new();
    f(&mut log);
    log.into_events()
}

fn kernel_log(kernel: PolybenchKernel, n: usize, tile: u64) -> Vec<TraceEvent> {
    record(|s| {
        kernel.generate(
            &KernelParams {
                n,
                tile_bytes: tile,
                steps: 2,
                reuse: 200,
            },
            s,
        )
    })
}

/// Each core completes exactly its own program regardless of scheduling
/// interleave (work conservation).
#[test]
fn per_core_work_is_preserved() {
    let logs = vec![
        kernel_log(PolybenchKernel::Gemm, 24, 2 << 10),
        record(|s| stream_hog(s, 64 << 10, 5_000, 4)),
        record(|s| random_hog(s, 64 << 10, 3_000, 4)),
    ];
    let cfg = MultiCoreConfig::scaled_corun(3, 32 << 10, SystemKind::Baseline);
    let report = run_corun(&cfg, &logs);

    // Instruction counts match what each log contains.
    for (i, log) in logs.iter().enumerate() {
        let expected: u64 = log
            .iter()
            .map(|e| match e {
                TraceEvent::Op(op) => op.instructions(),
                _ => 0,
            })
            .sum();
        assert_eq!(
            report.cores[i].instructions, expected,
            "core {i} executed the wrong instruction count"
        );
    }
}

/// Symmetric workloads on symmetric cores finish in (nearly) symmetric time.
#[test]
fn symmetric_corun_is_fair() {
    let log = record(|s| stream_hog(s, 128 << 10, 20_000, 8));
    let cfg = MultiCoreConfig::scaled_corun(2, 32 << 10, SystemKind::Baseline);
    let report = run_corun(&cfg, &[log.clone(), log]);
    let (a, b) = (report.cycles(0) as f64, report.cycles(1) as f64);
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.1, "unfair split: {a} vs {b}");
}

/// More co-runners → more shared-resource pressure → monotonically more
/// cycles for the victim.
#[test]
fn contention_is_monotone_in_corunners() {
    let kernel = kernel_log(PolybenchKernel::Syrk, 32, 8 << 10);
    let hog = record(|s| stream_hog(s, 128 << 10, 15_000, 8));
    let mut last = 0u64;
    for hogs in 0..=2usize {
        let mut logs = vec![kernel.clone()];
        for _ in 0..hogs {
            logs.push(hog.clone());
        }
        let cfg = MultiCoreConfig::scaled_corun(1 + hogs, 32 << 10, SystemKind::Baseline);
        let report = run_corun(&cfg, &logs);
        assert!(
            report.cycles(0) >= last,
            "{hogs} hogs: {} < previous {last}",
            report.cycles(0)
        );
        last = report.cycles(0);
    }
}

/// The full-size Table 3 multi-core configuration runs.
#[test]
fn full_size_multicore_runs() {
    let logs = vec![
        kernel_log(PolybenchKernel::Mvt, 32, 4 << 10),
        record(|s| stream_hog(s, 256 << 10, 5_000, 8)),
    ];
    let cfg = MultiCoreConfig::westmere_like(2);
    let report = run_corun(&cfg, &logs);
    assert!(report.cycles(0) > 0 && report.cycles(1) > 0);
    assert!(report.l3.accesses > 0);
}
