//! End-to-end invariants of the full system: the properties §2.1 of the
//! paper promises must hold across every configuration.

use xmem::sim::{
    run_placement, run_workload, KernelRun, RunReport, SystemConfig, SystemKind, Uc2System,
};
use xmem::workloads::placement::PlacementWorkload;
use xmem::workloads::polybench::{KernelParams, PolybenchKernel};

fn run_on(kernel: PolybenchKernel, p: KernelParams, l3: u64, kind: SystemKind) -> RunReport {
    KernelRun::new(kernel, p).l3_bytes(l3).system(kind).run()
}

fn small_params(tile: u64) -> KernelParams {
    KernelParams {
        n: 32,
        tile_bytes: tile,
        steps: 3,
        reuse: 200,
    }
}

/// XMem is hint-based (§2.1(i)): it must never change *what* the program
/// executes — instruction and access counts are identical with and without
/// it, for every kernel.
#[test]
fn hints_do_not_change_program_work() {
    for kernel in PolybenchKernel::all() {
        let p = small_params(4 << 10);
        let base = run_on(kernel, p, 16 << 10, SystemKind::Baseline);
        let pref = run_on(kernel, p, 16 << 10, SystemKind::XmemPref);
        let xmem = run_on(kernel, p, 16 << 10, SystemKind::Xmem);
        assert_eq!(
            base.core.instructions,
            xmem.core.instructions,
            "{}: instruction count changed",
            kernel.name()
        );
        assert_eq!(base.core.loads, xmem.core.loads, "{}", kernel.name());
        assert_eq!(base.core.stores, pref.core.stores, "{}", kernel.name());
        // Only the XMem systems execute XMem instructions.
        assert_eq!(base.xmem_instructions, 0, "{}", kernel.name());
        assert!(xmem.xmem_instructions > 0, "{}", kernel.name());
    }
}

/// Every kernel, every system: deterministic repetition.
#[test]
fn full_system_determinism() {
    for kernel in [PolybenchKernel::Gemm, PolybenchKernel::Jacobi2d] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            let p = small_params(8 << 10);
            let a = run_on(kernel, p, 8 << 10, kind);
            let b = run_on(kernel, p, 8 << 10, kind);
            assert_eq!(a.core, b.core, "{} {:?}", kernel.name(), kind);
            assert_eq!(a.dram, b.dram, "{} {:?}", kernel.name(), kind);
            assert_eq!(a.l3, b.l3, "{} {:?}", kernel.name(), kind);
        }
    }
}

/// The headline use-case-1 behaviour: when the tile exceeds the cache,
/// XMem outperforms the baseline (pinning + guided prefetch vs thrash).
#[test]
fn xmem_mitigates_thrashing() {
    let p = KernelParams {
        n: 64,
        tile_bytes: 32 << 10, // 32 KB tile...
        steps: 3,
        reuse: 200,
    };
    let l3 = 16 << 10; // ...on a 16 KB cache
    for kernel in [PolybenchKernel::Gemm, PolybenchKernel::Syrk] {
        let base = run_on(kernel, p, l3, SystemKind::Baseline);
        let xmem = run_on(kernel, p, l3, SystemKind::Xmem);
        assert!(
            xmem.cycles() < base.cycles(),
            "{}: xmem {} >= baseline {}",
            kernel.name(),
            xmem.cycles(),
            base.cycles()
        );
    }
}

/// When the tile fits comfortably, XMem must not hurt (the supplemental-
/// hints requirement): allow a small tolerance for policy noise.
#[test]
fn xmem_harmless_when_tile_fits() {
    let p = small_params(2 << 10);
    for kernel in PolybenchKernel::all() {
        let base = run_on(kernel, p, 32 << 10, SystemKind::Baseline);
        let xmem = run_on(kernel, p, 32 << 10, SystemKind::Xmem);
        assert!(
            (xmem.cycles() as f64) < base.cycles() as f64 * 1.15,
            "{}: xmem {} vs baseline {}",
            kernel.name(),
            xmem.cycles(),
            base.cycles()
        );
    }
}

/// Instruction overhead stays within the paper's bound (§4.4(2): ≤0.2%,
/// we allow 0.5% at our reduced problem sizes).
#[test]
fn instruction_overhead_bounded() {
    for kernel in PolybenchKernel::all() {
        let p = small_params(4 << 10);
        let r = run_on(kernel, p, 16 << 10, SystemKind::Xmem);
        assert!(
            r.instruction_overhead < 0.005,
            "{}: {:.4}%",
            kernel.name(),
            r.instruction_overhead * 100.0
        );
    }
}

/// Use case 2 invariants on a sample of workloads: the ideal-RBL system is
/// an upper bound, and XMem placement does not lose to the baseline.
#[test]
fn placement_ordering_holds() {
    for name in ["milc", "mcf", "srad"] {
        let mut w = PlacementWorkload::by_name(name).expect("workload exists");
        w.accesses = 25_000;
        let base = run_placement(&w, Uc2System::Baseline);
        let xmem = run_placement(&w, Uc2System::Xmem);
        let ideal = run_placement(&w, Uc2System::IdealRbl);
        assert!(
            ideal.cycles() <= base.cycles() * 101 / 100,
            "{name}: ideal {} vs base {}",
            ideal.cycles(),
            base.cycles()
        );
        assert!(
            xmem.cycles() <= base.cycles() * 104 / 100,
            "{name}: xmem {} vs base {}",
            xmem.cycles(),
            base.cycles()
        );
        assert!(ideal.dram.row_hit_rate() > 0.99, "{name}");
    }
}

/// The full-size Table 3 configuration runs (sanity for the unscaled path).
#[test]
fn full_size_westmere_config_runs() {
    let cfg = SystemConfig::westmere_like();
    let p = small_params(16 << 10);
    let r = run_workload(&cfg, |s| PolybenchKernel::Mvt.generate(&p, s));
    assert!(r.core.cycles > 0);
    assert!(r.core.ipc() > 0.1);
}
