//! Integration of the OS placement policy with the DRAM model: the §6.2
//! algorithm's end-to-end effect on bank assignment and row locality.

use xmem::core::amu::Mmu;
use xmem::core::atom::AtomId;
use xmem::core::attrs::{AccessIntensity, AccessPattern, AtomAttributes};
use xmem::core::translate::AttributeTranslator;
use xmem::cpu::batch::OpAttrs;
use xmem::dram::{AddressMapping, Dram, DramConfig};
use xmem::os::os::Os;
use xmem::os::placement::FramePolicy;

fn dram_cfg() -> DramConfig {
    DramConfig::ddr3_1066(3.6).with_capacity(32 << 20)
}

fn prim(pattern: AccessPattern, intensity: u8) -> xmem::core::translate::PlacementPrimitive {
    AttributeTranslator::new().for_placement(
        &AtomAttributes::builder()
            .access_pattern(pattern)
            .intensity(AccessIntensity(intensity))
            .build(),
    )
}

/// A hot stream allocated through the XMem policy ends up with all its
/// pages in its reserved banks, and a full VA walk of the structure is
/// almost entirely row hits.
#[test]
fn isolated_stream_gets_row_locality() {
    let stream = AtomId::new(0);
    let noise = AtomId::new(1);
    let mapping = AddressMapping::scheme5();
    let cfg = dram_cfg();
    let mut os = Os::new(
        32 << 20,
        4096,
        FramePolicy::Xmem {
            atoms: vec![
                (stream, prim(AccessPattern::sequential(8), 250)),
                (noise, prim(AccessPattern::NonDet, 200)),
            ],
            mapping,
            dram: cfg,
        },
    );
    let stream_va = os.malloc(2 << 20, Some(stream)).expect("malloc");
    let _noise_va = os.malloc(2 << 20, Some(noise)).expect("malloc");

    let reserved = os.frames().reserved_banks(stream);
    assert!(!reserved.is_empty());

    // Walk the stream's VA space line by line through the DRAM model.
    let mut dram = Dram::new(cfg, mapping);
    let mut t = 0;
    for off in (0..(2u64 << 20)).step_by(64) {
        let pa = os.page_table().translate(stream_va + off).expect("mapped");
        let loc = mapping.decode(pa.raw(), &cfg);
        assert!(
            reserved.contains(&loc.global_bank(&cfg)),
            "stream page escaped its banks at offset {off:#x}"
        );
        t += dram.serve(pa.raw(), OpAttrs::read(), t);
    }
    assert!(
        dram.stats().row_hit_rate() > 0.9,
        "row hit rate {:.3}",
        dram.stats().row_hit_rate()
    );
}

/// Interference test: a random structure hammering DRAM concurrently does
/// not close the isolated stream's rows (the point of §6.2), while under a
/// shared randomized layout it does.
#[test]
fn isolation_shields_stream_from_interference() {
    let cfg = dram_cfg();
    let mapping = AddressMapping::scheme5();

    // Helper: interleave a line-walk of `stream_pages` with random accesses
    // into `noise_pages`, return the stream's share of row hits.
    let run = |stream_frames: &[u64], noise_frames: &[u64]| -> f64 {
        let mut dram = Dram::new(cfg, mapping);
        let mut t = 0;
        let mut hits_before = 0;
        let mut stream_accesses = 0u64;
        let mut stream_hits = 0u64;
        let mut rng = 0x12345u64;
        for i in 0..20_000u64 {
            if i % 2 == 0 {
                // stream walks sequentially
                let line = (i / 2) % (stream_frames.len() as u64 * 64);
                let frame = stream_frames[(line / 64) as usize];
                let pa = frame * 4096 + (line % 64) * 64;
                let before = dram.stats().row_hits;
                t += dram.serve(pa, OpAttrs::read(), t);
                stream_hits += dram.stats().row_hits - before;
                stream_accesses += 1;
                hits_before = dram.stats().row_hits;
            } else {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let frame = noise_frames[(rng >> 33) as usize % noise_frames.len()];
                let pa = frame * 4096 + ((rng >> 20) % 64) * 64;
                t += dram.serve(pa, OpAttrs::read(), t);
                let _ = hits_before;
            }
        }
        stream_hits as f64 / stream_accesses as f64
    };

    // Isolated: stream in banks 0's frames, noise in other banks.
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); cfg.total_banks()];
    for f in 0..(32u64 << 20) / 4096 {
        let bank = mapping.decode(f * 4096, &cfg).global_bank(&cfg);
        per_bank[bank].push(f);
    }
    let isolated_rate = run(&per_bank[0][..64], &per_bank[4].clone()[..256]);

    // Shared: noise frames drawn from the SAME bank as the stream.
    let shared_rate = run(&per_bank[0][..64], &per_bank[0][64..320]);

    assert!(
        isolated_rate > shared_rate + 0.2,
        "isolated {isolated_rate:.3} vs shared {shared_rate:.3}"
    );
    assert!(isolated_rate > 0.9, "isolated {isolated_rate:.3}");
}

/// Anonymous (non-atom) allocations never land in reserved banks while
/// shared banks have frames.
#[test]
fn anonymous_data_avoids_reserved_banks() {
    let hot = AtomId::new(0);
    let mapping = AddressMapping::scheme5();
    let cfg = dram_cfg();
    let mut os = Os::new(
        32 << 20,
        4096,
        FramePolicy::Xmem {
            atoms: vec![(hot, prim(AccessPattern::sequential(8), 255))],
            mapping,
            dram: cfg,
        },
    );
    let reserved = os.frames().reserved_banks(hot);
    assert!(!reserved.is_empty());
    let va = os.malloc(4 << 20, None).expect("malloc");
    for off in (0..(4u64 << 20)).step_by(4096) {
        let pa = os.page_table().translate(va + off).expect("mapped");
        let bank = mapping.decode(pa.raw(), &cfg).global_bank(&cfg);
        assert!(
            !reserved.contains(&bank),
            "anon page in reserved bank {bank}"
        );
    }
}
