//! Use case 1 in miniature: a tiled matrix multiply whose tile exceeds the
//! available cache (§5 of the paper).
//!
//! The same kernel binary runs on three systems — the DRRIP+stride Baseline,
//! XMem-Pref (guided prefetching only), and full XMem (pinning + guided
//! prefetch) — and the example prints how each copes with the oversized
//! tile. This is the scenario behind Figs 4–6: software tuned for a cache
//! it doesn't actually get.
//!
//! ```text
//! cargo run --release --example tiled_matmul
//! ```

use xmem::sim::{KernelRun, SystemKind};
use xmem::workloads::polybench::{KernelParams, PolybenchKernel};

fn main() {
    // A 96×96 double matrix (72 KB) with a 64 KB tile, on a 32 KB L3: the
    // tile the software assumed would fit… doesn't.
    let params = KernelParams {
        n: 96,
        tile_bytes: 64 << 10,
        steps: 8,
        reuse: 200,
    };
    let l3 = 32 << 10;

    println!("tiled gemm, tile = 64KB, available L3 = 32KB\n");
    let gemm = KernelRun::new(PolybenchKernel::Gemm, params).l3_bytes(l3);
    let baseline = gemm.run();
    let mut rows = Vec::new();
    for kind in [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem] {
        let r = gemm.system(kind).run();
        rows.push((format!("{kind}"), r));
    }
    println!(
        "{:<10} {:>12} {:>8} {:>10} {:>10} {:>12}",
        "system", "cycles", "speedup", "L3 hit%", "DRAM rds", "XMem insts"
    );
    for (name, r) in &rows {
        println!(
            "{:<10} {:>12} {:>8.2} {:>9.1}% {:>10} {:>12}",
            name,
            r.cycles(),
            r.speedup_over(&baseline),
            r.l3.hit_rate() * 100.0,
            r.dram.reads,
            r.xmem_instructions,
        );
    }
    let xmem = &rows[2].1;
    println!(
        "\nXMem pinned part of the tile and prefetched the rest: \
         {} guided prefetches, {:.1}% instruction overhead, ALB hit rate {:.1}%",
        xmem.xmem_prefetch.issued,
        xmem.instruction_overhead * 100.0,
        xmem.alb.hit_rate() * 100.0,
    );
}
