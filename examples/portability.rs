//! Performance portability (the Fig 5 scenario): a binary tuned for one
//! cache size runs with less cache than it expected — because of co-running
//! applications or an opaque virtualized environment.
//!
//! The baseline system degrades badly; XMem, knowing the tile's reuse and
//! extent, keeps what fits pinned and prefetches the remainder.
//!
//! ```text
//! cargo run --release --example portability
//! ```

use xmem::sim::{KernelRun, SystemKind};
use xmem::workloads::polybench::{KernelParams, PolybenchKernel};

fn main() {
    // Tuned for a 64 KB L3: a 32 KB tile is the sweet spot there.
    let tuned = KernelParams {
        n: 96,
        tile_bytes: 32 << 10,
        steps: 8,
        reuse: 200,
    };
    let kernel = PolybenchKernel::Syrk;
    let syrk = KernelRun::new(kernel, tuned);
    let reference = syrk.l3_bytes(64 << 10).run();

    println!("syrk tuned for 64KB L3; running with less cache:\n");
    println!(
        "{:>8} {:>16} {:>12}",
        "L3", "Baseline slowdn", "XMem slowdn"
    );
    for l3 in [64u64 << 10, 32 << 10, 16 << 10] {
        let base = syrk.l3_bytes(l3).run();
        let xmem = syrk.l3_bytes(l3).system(SystemKind::Xmem).run();
        println!(
            "{:>6}KB {:>15.2}x {:>11.2}x",
            l3 >> 10,
            base.normalized_time(&reference),
            xmem.normalized_time(&reference),
        );
    }
    println!(
        "\nThe XMem binary is the same code — the hints are architecture-\n\
         agnostic, so the *system* adapts instead of the programmer retuning."
    );
}
