//! Multi-core co-running: the scenario that motivates XMem's portability
//! story (§5.1 — cache space changes under co-running applications).
//!
//! A tiled kernel shares the machine with two streaming "hog" applications.
//! On the baseline the hogs wash the kernel's tile out of the shared L3;
//! with XMem the tile is pinned (and the hogs honestly declare zero reuse).
//!
//! ```text
//! cargo run --release --example corun
//! ```

use xmem::sim::{run_corun, MultiCoreConfig, SystemKind};
use xmem::workloads::hog::stream_hog;
use xmem::workloads::polybench::{KernelParams, PolybenchKernel};
use xmem::workloads::sink::{LogSink, TraceEvent};

fn main() {
    let kernel_log: Vec<TraceEvent> = {
        let mut log = LogSink::new();
        PolybenchKernel::Syrk.generate(
            &KernelParams {
                n: 64,
                tile_bytes: 16 << 10,
                steps: 4,
                reuse: 200,
            },
            &mut log,
        );
        log.into_events()
    };
    let hog_log: Vec<TraceEvent> = {
        let mut log = LogSink::new();
        stream_hog(&mut log, 256 << 10, 40_000, 16);
        log.into_events()
    };

    // Alone on the machine.
    let solo = run_corun(
        &MultiCoreConfig::scaled_corun(1, 32 << 10, SystemKind::Baseline),
        std::slice::from_ref(&kernel_log),
    );
    println!("syrk alone:                 {:>9} cycles", solo.cycles(0));

    // With two hogs, baseline vs XMem.
    let logs = vec![kernel_log, hog_log.clone(), hog_log];
    for kind in [SystemKind::Baseline, SystemKind::Xmem] {
        let cfg = MultiCoreConfig::scaled_corun(3, 32 << 10, kind);
        let r = run_corun(&cfg, &logs);
        println!(
            "syrk + 2 hogs ({:>8}):   {:>9} cycles ({:.2}x slower than alone)",
            format!("{kind}"),
            r.cycles(0),
            r.cycles(0) as f64 / solo.cycles(0) as f64
        );
    }
    println!(
        "\nThe pinning algorithm runs over the active atoms of *all* cores\n\
         (§5.2(2)), so the kernel's expressed working set survives the hogs."
    );
}
