//! The compile → load → translate pipeline (§3.5.2 of the paper).
//!
//! A "program" creates its atoms; the compiler summarizes them into the
//! binary's *atom segment*; at load time the OS reads the segment into the
//! Global Attribute Table and invokes the hardware attribute translator to
//! fill each component's Private Attribute Table. The example also shows
//! the versioning story: a segment from a *newer* architecture generation
//! is safely ignored (hints only).
//!
//! ```text
//! cargo run --example atom_segment
//! ```

use xmem::core::prelude::*;
use xmem::core::process::ProcessId;
use xmem::core::segment::SEGMENT_VERSION;
use xmem::os::loader::load_process;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── "compile time": the program's atoms ─────────────────────────────
    let mut lib = XMemLib::new();
    lib.create_atom(
        xmem::core::call_site!(),
        "vertices",
        AtomAttributes::builder()
            .data_type(DataType::Float32)
            .access_pattern(AccessPattern::sequential(4))
            .intensity(AccessIntensity(180))
            .reuse(Reuse(64))
            .build(),
    )?;
    lib.create_atom(
        xmem::core::call_site!(),
        "edges",
        AtomAttributes::builder()
            .data_type(DataType::Int32)
            .props(DataProps::INDEX | DataProps::SPARSE)
            .access_pattern(AccessPattern::Irregular)
            .rw(RwChar::ReadOnly)
            .intensity(AccessIntensity(255))
            .build(),
    )?;

    let segment = lib.segment();
    let binary_blob = segment.to_bytes();
    println!(
        "compiler summarized {} atoms into a {}-byte atom segment (version {})",
        segment.atoms().len(),
        binary_blob.len(),
        SEGMENT_VERSION
    );

    // ── load time: OS reads the segment, translator fills the PATs ──────
    let loaded = load_process(ProcessId(1), &binary_blob, &AttributeTranslator::new())?;
    println!("\nGAT loaded with {} atoms:", loaded.process.gat.len());
    for atom in loaded.process.gat.iter() {
        println!(
            "  {}: pattern {}, rw {}, intensity {}",
            atom,
            atom.attrs().access_pattern(),
            atom.attrs().rw(),
            atom.attrs().intensity()
        );
    }
    println!("\nper-component primitives after translation:");
    for atom in loaded.process.gat.iter() {
        println!(
            "  {}: cache {:?} | prefetcher {:?}",
            atom.id(),
            loaded.cache_pat.get(atom.id()).expect("translated"),
            loaded.pf_pat.get(atom.id()).expect("translated"),
        );
    }
    for (id, placement) in &loaded.placement {
        println!("  {id}: placement {placement:?}");
    }

    // ── forward compatibility ────────────────────────────────────────────
    // A binary built for a future XMem generation: this system ignores it.
    let mut future = binary_blob.clone();
    future[8..12].copy_from_slice(&(SEGMENT_VERSION + 7).to_le_bytes());
    match load_process(ProcessId(2), &future, &AttributeTranslator::new()) {
        Err(XMemError::UnsupportedSegmentVersion { found, supported }) => println!(
            "\nfuture segment (v{found}) ignored by this v{supported} system — \
             the program still runs, just without hints"
        ),
        other => panic!("expected version rejection, got {other:?}"),
    }
    Ok(())
}
