//! Use case 2 in miniature: XMem-guided OS page placement in DRAM (§6 of
//! the paper) — a software-only use of XMem.
//!
//! A workload mixing a hot sequential stream with strided and random
//! structures runs under three systems: the strengthened baseline (best
//! static mapping + randomized VA→PA), XMem placement (isolate the
//! high-row-buffer-locality structures in their own banks, spread the
//! rest), and an ideal perfect-row-locality DRAM.
//!
//! ```text
//! cargo run --release --example dram_placement
//! ```

use xmem::sim::{run_placement, Uc2System};
use xmem::workloads::placement::PlacementWorkload;

fn main() {
    let mut workload = PlacementWorkload::by_name("milc").expect("milc exists");
    workload.accesses = 120_000;
    println!(
        "workload '{}': {} data structures, {:.1} MB footprint\n",
        workload.name,
        workload.structs.len(),
        workload.footprint_bytes() as f64 / (1 << 20) as f64
    );
    for s in &workload.structs {
        println!(
            "  {:<10} {:>5} KiB  {:?} (weight {})",
            s.name, s.kib, s.kind, s.weight
        );
    }
    println!();

    let baseline = run_placement(&workload, Uc2System::Baseline);
    println!(
        "{:<10} {:>12} {:>9} {:>10} {:>12}",
        "system", "cycles", "speedup", "row-hit%", "read lat"
    );
    for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
        let r = run_placement(&workload, sys);
        println!(
            "{:<10} {:>12} {:>9.3} {:>9.1}% {:>11.0}c",
            format!("{sys}"),
            r.cycles(),
            r.speedup_over(&baseline),
            r.dram.row_hit_rate() * 100.0,
            r.dram.avg_demand_read_latency(),
        );
    }
    println!(
        "\nThe OS used the atoms' access-pattern and intensity attributes to\n\
         isolate the streaming structure in reserved banks and spread the\n\
         irregular ones — no hardware changes, no profiling, no migration."
    );
}
