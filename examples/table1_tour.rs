//! A tour of the Table 1 optimization classes beyond the two headline use
//! cases: compression, hybrid memories, NUMA, DRAM caches, approximation —
//! each driven by the same atom attributes through the same translator.
//!
//! ```text
//! cargo run --release --example table1_tour
//! ```

use xmem::cache::dram_cache::{DramCache, DramCacheConfig};
use xmem::compress::approx::{level_for, store, TruncationLevel};
use xmem::compress::{datagen, mean_ratio};
use xmem::core::atom::AtomId;
use xmem::core::attrs::{AtomAttributes, DataProps, DataType, RwChar};
use xmem::core::translate::AttributeTranslator;
use xmem::os::hybrid::{HybridConfig, HybridMemory, HybridPolicy};
use xmem::os::numa::{NumaConfig, NumaSystem};

fn main() {
    let translator = AttributeTranslator::new();

    // ── compression: the data type picks the algorithm ──────────────────
    let sparse_attrs = AtomAttributes::builder().props(DataProps::SPARSE).build();
    let algo = translator.for_compression(&sparse_attrs).algo;
    let ratio = mean_ratio(algo, &datagen::sparse(64, 7));
    println!("compression: SPARSE atom -> {algo:?} -> {ratio:.1}x ratio");

    // ── approximation: tolerance declared, truncation applied ───────────
    let approx_attrs = AtomAttributes::builder()
        .data_type(DataType::Float64)
        .props(DataProps::APPROXIMABLE)
        .build();
    let values: Vec<f64> = (1..500).map(|i| i as f64 * 0.37).collect();
    let level = level_for(&approx_attrs, TruncationLevel(3));
    let (_, bytes) = store(&values, level);
    println!(
        "approximation: APPROXIMABLE f64 atom stored at {:.0}% size",
        bytes as f64 / (values.len() * 8) as f64 * 100.0
    );

    // ── hybrid memory: read-write semantics place the tiers ─────────────
    let hot_log = AtomId::new(0);
    let ro_table = AtomId::new(1);
    let mk = |ro: bool, intensity: u8| {
        translator.for_placement(
            &AtomAttributes::builder()
                .rw(if ro {
                    RwChar::ReadOnly
                } else {
                    RwChar::ReadWrite
                })
                .intensity(xmem::core::attrs::AccessIntensity(intensity))
                .build(),
        )
    };
    let mem = HybridMemory::new(
        HybridConfig::default(),
        &HybridPolicy::Xmem {
            atoms: vec![
                (hot_log, mk(false, 250), 4 << 20),
                (ro_table, mk(true, 200), 32 << 20),
            ],
        },
    );
    println!(
        "hybrid memory: RW log -> {:?}, RO table -> {:?}",
        mem.tier_of(hot_log).expect("placed"),
        mem.tier_of(ro_table).expect("placed"),
    );

    // ── NUMA: read-only data replicates ─────────────────────────────────
    let mut numa = NumaSystem::new(NumaConfig::default());
    numa.place_with_semantics(
        ro_table,
        &AtomAttributes::builder().rw(RwChar::ReadOnly).build(),
        None,
    );
    println!(
        "numa: READ_ONLY atom placed as {:?}",
        numa.placement_of(ro_table).expect("placed")
    );

    // ── DRAM cache: working-set size gates insertion ─────────────────────
    let mut dc = DramCache::new(DramCacheConfig::default());
    let small = dc.serve(0, Some(64 << 10));
    let huge = dc.serve(1 << 30, Some(256 << 20));
    println!(
        "dram cache: 64KB-WS access cached (latency {small}), 256MB-WS access bypassed (latency {huge})"
    );
    println!("\nOne abstraction, one translator — five different optimizations.");
}
