//! Quickstart: expressing program semantics with XMem.
//!
//! This walks the full life of an atom (Figure 2 of the paper): CREATE with
//! static attributes, MAP to a data range, ACTIVATE, query from "hardware",
//! REMAP as the program moves to its next phase, and DEACTIVATE.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xmem::core::prelude::*;

fn main() -> Result<(), XMemError> {
    // ── CREATE ────────────────────────────────────────────────────────────
    // The application declares what its data *means*: a hash-join build
    // table partition — hot, sequentially swept, heavily reused.
    let mut lib = XMemLib::new();
    let partition = lib.create_atom(
        xmem::core::call_site!(),
        "hash_build_partition",
        AtomAttributes::builder()
            .data_type(DataType::Int64)
            .access_pattern(AccessPattern::sequential(8))
            .rw(RwChar::ReadWrite)
            .intensity(AccessIntensity(220))
            .reuse(Reuse(200))
            .build(),
    )?;
    println!("created {partition} (attributes are immutable from here on)");

    // ── the machine ──────────────────────────────────────────────────────
    // One AMU manages the AAM/AST/ALB for the whole system. The MMU here is
    // an identity mapping; in the full simulator it is the OS page table.
    let mut amu = AtomManagementUnit::new(AmuConfig {
        aam: AamConfig {
            phys_bytes: 16 << 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let mmu = IdentityMmu::new();

    // ── MAP + ACTIVATE ───────────────────────────────────────────────────
    let first = VirtAddr::new(0x10_0000);
    lib.atom_map(&mut amu, &mmu, partition, first, 256 << 10)?;
    lib.atom_activate(&mut amu, &mmu, partition)?;

    // ── hardware queries (ATOM_LOOKUP) ───────────────────────────────────
    // Any component — cache, prefetcher, memory controller — can now ask
    // what an address means and receive actionable primitives.
    let pa = PhysAddr::new(0x10_8000);
    assert_eq!(amu.active_atom_at(pa), Some(partition));
    let attrs = lib.atom(partition).expect("created above").attrs().clone();
    let translator = AttributeTranslator::new();
    println!(
        "lookup {pa} -> {partition}: cache sees {:?}, prefetcher sees {:?}",
        translator.for_cache(&attrs),
        translator.for_prefetcher(&attrs),
    );
    println!(
        "working set the system infers for {partition}: {} KB",
        amu.mapped_bytes(partition) >> 10
    );

    // ── phase change: REMAP ──────────────────────────────────────────────
    // The program moves to the next partition: unmap the old range, map the
    // new one to the *same* atom (attributes stay valid, §3.2).
    lib.atom_unmap(&mut amu, &mmu, first, 256 << 10)?;
    let second = VirtAddr::new(0x20_0000);
    lib.atom_map(&mut amu, &mmu, partition, second, 256 << 10)?;
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x10_8000)), None);
    assert_eq!(
        amu.active_atom_at(PhysAddr::new(0x20_4000)),
        Some(partition)
    );
    println!("remapped {partition} to the next partition at {second}");

    // ── DEACTIVATE ───────────────────────────────────────────────────────
    lib.atom_deactivate(&mut amu, &mmu, partition)?;
    assert_eq!(amu.active_atom_at(PhysAddr::new(0x20_4000)), None);
    println!(
        "deactivated; the system saw {} XMem instructions total ({} lookups, {:.1}% ALB hits)",
        lib.counter().xmem_instructions(),
        amu.alb_stats().lookups(),
        amu.alb_stats().hit_rate() * 100.0,
    );
    Ok(())
}
