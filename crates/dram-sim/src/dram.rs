//! The banked DRAM timing model.
//!
//! Each bank tracks its open row and the time it becomes ready; each channel
//! tracks when its data bus frees up. An access arriving at time `t` pays:
//!
//! * **row hit** (`tCL` + burst) if the bank's open row matches,
//! * **row miss** (`tRCD + tCL` + burst) if the bank is precharged,
//! * **row conflict** (`tRP + tRCD + tCL` + burst) if another row is open,
//!
//! plus any queueing behind the bank's previous access and the channel bus.
//! Requests that arrive while a bank or bus is busy naturally queue — this
//! is how bank conflicts and limited bandwidth appear in end-to-end latency.
//!
//! Scheduling note: requests are processed in arrival order with an open-row
//! policy, which captures the first-order effect of FR-FCFS (row hits are
//! cheap and banks pipeline). The standalone [`crate::frfcfs`] module
//! implements the full reordering scheduler for batch studies and ablation.

use crate::config::{DramConfig, RowPolicy};
use crate::mapping::AddressMapping;
use cpu_sim::batch::{MemoryPath, OpAttrs};
use cpu_sim::stats::LatencyHistogram;

/// Sentinel for "no row open" in the open-row lane. Row numbers are small
/// (row index within a bank), so the all-ones pattern can never collide
/// with a real row.
const NO_ROW: u64 = u64::MAX;

/// Classification of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Same row already open.
    Hit,
    /// Bank precharged, row had to be activated.
    Miss,
    /// Different row open, precharge + activate.
    Conflict,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Log2 histogram of demand-read latencies (p50/p99 for Fig 8-style
    /// reporting).
    pub demand_read_hist: LatencyHistogram,
    /// Read accesses served (demand + prefetch).
    pub reads: u64,
    /// Of which: demand reads (on the core's critical path).
    pub demand_reads: u64,
    /// Sum of demand-read latencies in cycles.
    pub total_demand_read_latency: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (bank was precharged).
    pub row_misses: u64,
    /// Row conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Sum of read latencies in cycles (arrival → data returned).
    pub total_read_latency: u64,
    /// Sum of write latencies in cycles.
    pub total_write_latency: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that hit in a row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean read latency in cycles, over all reads.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Mean latency of demand reads only (what the core waits on; prefetch
    /// reads are off the critical path and issued in bursts).
    pub fn avg_demand_read_latency(&self) -> f64 {
        if self.demand_reads == 0 {
            0.0
        } else {
            self.total_demand_read_latency as f64 / self.demand_reads as f64
        }
    }

    /// Mean write latency in cycles.
    pub fn avg_write_latency(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.total_write_latency as f64 / self.writes as f64
        }
    }

    /// Exports counters and derived metrics for the report sinks.
    pub fn kv(&self) -> cpu_sim::kv::KvPairs {
        vec![
            ("reads", self.reads.into()),
            ("demand_reads", self.demand_reads.into()),
            ("writes", self.writes.into()),
            ("row_hits", self.row_hits.into()),
            ("row_misses", self.row_misses.into()),
            ("row_conflicts", self.row_conflicts.into()),
            // Raw latency totals alongside the derived averages, so a
            // serialized report reconstructs to the exact counter values.
            ("total_read_latency", self.total_read_latency.into()),
            (
                "total_demand_read_latency",
                self.total_demand_read_latency.into(),
            ),
            ("total_write_latency", self.total_write_latency.into()),
            ("row_hit_rate", self.row_hit_rate().into()),
            ("avg_read_latency", self.avg_read_latency().into()),
            (
                "avg_demand_read_latency",
                self.avg_demand_read_latency().into(),
            ),
            ("avg_write_latency", self.avg_write_latency().into()),
        ]
    }
}

/// The DRAM device model.
///
/// # Examples
///
/// ```
/// use dram_sim::{AddressMapping, Dram, DramConfig};
///
/// use cpu_sim::batch::OpAttrs;
///
/// let cfg = DramConfig::ddr3_1066(3.6);
/// let mut dram = Dram::new(cfg, AddressMapping::scheme5());
/// // Two lines in the same row: the second is a row hit.
/// let first = dram.serve(0, OpAttrs::read(), 0);
/// let second = dram.serve(64, OpAttrs::read(), first);
/// assert!(second < first);
/// assert_eq!(dram.stats().row_hits, 1);
/// ```
///
/// Bank state is stored struct-of-arrays (one lane per field, indexed by
/// global bank): the hot loop touches only the lanes it needs, and the
/// telemetry scans (`busy_banks`) stream one contiguous lane.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    mapping: AddressMapping,
    /// Open row per global bank ([`NO_ROW`] when precharged).
    open_rows: Vec<u64>,
    /// Cycle at which each bank can next start a command.
    ready_at: Vec<u64>,
    /// Earliest time each bank's open row may be precharged (tRAS).
    ras_until: Vec<u64>,
    bus_free: Vec<u64>,
    stats: DramStats,
    /// Total cycles banks have been held busy by reads (activation,
    /// precharge, burst slots). Kept outside [`DramStats`] so the report
    /// schema and its exact-reconstruction contract are untouched; exposed
    /// for telemetry via [`Dram::busy_bank_cycles`].
    busy_bank_cycles: u64,
    /// When `true`, every access is treated as a row hit with no queueing —
    /// the "Ideal" upper bound of Fig 7 (perfect row-buffer locality).
    ideal_rbl: bool,
}

impl Dram {
    /// Creates a DRAM with all banks precharged.
    pub fn new(config: DramConfig, mapping: AddressMapping) -> Self {
        Dram {
            open_rows: vec![NO_ROW; config.total_banks()],
            ready_at: vec![0; config.total_banks()],
            ras_until: vec![0; config.total_banks()],
            bus_free: vec![0; config.channels],
            stats: DramStats::default(),
            busy_bank_cycles: 0,
            ideal_rbl: false,
            config,
            mapping,
        }
    }

    /// Creates the Fig 7 "Ideal" device: perfect row-buffer locality (every
    /// access costs a row hit; the channel bus still serializes transfers).
    pub fn new_ideal_rbl(config: DramConfig, mapping: AddressMapping) -> Self {
        let mut d = Self::new(config, mapping);
        d.ideal_rbl = true;
        d
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (device state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Total cycles banks have been occupied serving reads, summed over
    /// all banks. Divide a delta of this by `elapsed_cycles *
    /// config().total_banks()` for an average busy fraction.
    pub fn busy_bank_cycles(&self) -> u64 {
        self.busy_bank_cycles
    }

    /// Number of banks still busy (`ready_at` in the future) at `now`.
    pub fn busy_banks(&self, now: u64) -> usize {
        self.ready_at.iter().filter(|&&r| r > now).count()
    }

    /// An instantaneous proxy for FR-FCFS queue depth at `now`: busy banks
    /// plus the whole burst slots still queued on each channel bus.
    pub fn queued_requests(&self, now: u64) -> u64 {
        let bus_cycles = self.config.bus_cycles.max(1);
        let bus_backlog: u64 = self
            .bus_free
            .iter()
            .map(|&free| free.saturating_sub(now) / bus_cycles)
            .sum();
        self.busy_banks(now) as u64 + bus_backlog
    }

    /// The row currently open in global bank `bank` (`None` when the bank
    /// is precharged). Exposing the timing model's own bank state lets a
    /// scheduler's first-ready predicate never drift from it.
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        let row = self.open_rows[bank];
        (row != NO_ROW).then_some(row)
    }

    /// Whether an access to `addr` would be a row-buffer hit right now.
    /// Ideal-RBL devices hit by definition; writes never open rows, so a
    /// written row does not make later reads "first ready".
    pub fn row_hit(&self, addr: u64) -> bool {
        if self.ideal_rbl {
            return true;
        }
        let loc = self.mapping.decode(addr, &self.config);
        self.open_rows[loc.global_bank(&self.config)] == loc.row
    }

    /// Serves one access arriving at cycle `now`; returns its latency.
    /// (The inherent mirror of [`MemoryPath::serve`], so callers holding a
    /// concrete `Dram` need no trait import.)
    ///
    /// Reads walk the full bank state machine. Writes model a controller
    /// with write buffering and opportunistic drain (as FR-FCFS controllers
    /// do): they occupy the channel bus and pay nominal write latency, but
    /// do not perturb the banks' open rows — row-buffer statistics are
    /// therefore read-only statistics.
    pub fn serve(&mut self, addr: u64, attrs: OpAttrs, now: u64) -> u64 {
        self.serve_inner(addr, attrs.write, false, now)
    }

    /// Serves a prefetch read: identical timing to a demand read, but
    /// accounted separately (it occupies banks and bus without being on the
    /// core's critical path).
    pub fn serve_prefetch(&mut self, addr: u64, now: u64) -> u64 {
        self.serve_inner(addr, false, true, now)
    }

    /// State-only warmup probe for a read of `addr`: updates the bank's
    /// open-row state exactly as a detailed read would, but records no
    /// statistics and advances no timing lanes (bank readiness, tRAS, bus).
    ///
    /// Used by the functional fast-forward phase of sampled execution so a
    /// detailed window opens against warm row buffers. Writes need no warm
    /// counterpart (they are buffered and never open rows), and ideal-RBL
    /// devices carry no row state to warm.
    pub fn warm_access(&mut self, addr: u64) {
        if self.ideal_rbl {
            return;
        }
        let loc = self.mapping.decode(addr, &self.config);
        let bank_idx = loc.global_bank(&self.config);
        self.open_rows[bank_idx] = match self.config.row_policy {
            RowPolicy::Open => loc.row,
            RowPolicy::Closed => NO_ROW,
        };
    }

    fn serve_inner(&mut self, addr: u64, is_write: bool, is_prefetch: bool, now: u64) -> u64 {
        let loc = self.mapping.decode(addr, &self.config);
        if is_write && !self.ideal_rbl {
            let bus = &mut self.bus_free[loc.channel];
            let data_start = (now + self.config.t_cl).max(*bus);
            *bus = data_start + self.config.bus_cycles;
            let latency = data_start + self.config.bus_cycles - now;
            self.stats.writes += 1;
            self.stats.total_write_latency += latency;
            return latency;
        }
        let latency = if self.ideal_rbl {
            // CAS overlaps with earlier transfers; only the data burst
            // occupies the bus.
            let bus = &mut self.bus_free[loc.channel];
            let data_start = (now + self.config.t_cl).max(*bus);
            *bus = data_start + self.config.bus_cycles;
            self.stats.row_hits += 1;
            data_start + self.config.bus_cycles - now
        } else {
            let bank_idx = loc.global_bank(&self.config);
            let start = now.max(self.ready_at[bank_idx]);
            let open_row = self.open_rows[bank_idx];
            let (outcome, cmd_cycles, ras_wait) = if open_row == loc.row {
                (RowOutcome::Hit, self.config.t_cl, 0)
            } else if open_row == NO_ROW {
                (RowOutcome::Miss, self.config.t_rcd + self.config.t_cl, 0)
            } else {
                // Must respect tRAS of the currently open row before
                // precharging it.
                let wait = self.ras_until[bank_idx].saturating_sub(start);
                (
                    RowOutcome::Conflict,
                    self.config.t_rp + self.config.t_rcd + self.config.t_cl,
                    wait,
                )
            };
            match outcome {
                RowOutcome::Hit => self.stats.row_hits += 1,
                RowOutcome::Miss => self.stats.row_misses += 1,
                RowOutcome::Conflict => self.stats.row_conflicts += 1,
            }
            let cas_done = start + ras_wait + cmd_cycles;
            let bus = &mut self.bus_free[loc.channel];
            let data_start = cas_done.max(*bus);
            let done = data_start + self.config.bus_cycles;
            *bus = done;
            // Bank occupancy: CAS commands pipeline, so consecutive row hits
            // stream at burst rate (the bank is ready again after one burst
            // slot); a precharge/activate occupies the bank until the row is
            // open. The *latency* of this access still includes the full
            // command chain above.
            let mut ready = start
                + ras_wait
                + match outcome {
                    RowOutcome::Hit => self.config.bus_cycles,
                    RowOutcome::Miss => self.config.t_rcd,
                    RowOutcome::Conflict => self.config.t_rp + self.config.t_rcd,
                };
            if outcome != RowOutcome::Hit {
                // Row was (re)activated: tRAS runs from activation.
                self.ras_until[bank_idx] = start + ras_wait + self.config.t_ras;
            }
            self.open_rows[bank_idx] = match self.config.row_policy {
                RowPolicy::Open => loc.row,
                RowPolicy::Closed => {
                    // Auto-precharge after the access.
                    ready = ready.max(done) + self.config.t_rp;
                    NO_ROW
                }
            };
            self.ready_at[bank_idx] = ready;
            self.busy_bank_cycles += ready - start;
            done - now
        };

        if is_write {
            self.stats.writes += 1;
            self.stats.total_write_latency += latency;
        } else {
            self.stats.reads += 1;
            self.stats.total_read_latency += latency;
            if !is_prefetch {
                self.stats.demand_reads += 1;
                self.stats.total_demand_read_latency += latency;
                self.stats.demand_read_hist.record(latency);
            }
        }
        latency
    }
}

/// The batched memory-path contract: per-op timing identical to the
/// inherent [`Dram::serve`].
impl MemoryPath for Dram {
    #[inline]
    fn serve(&mut self, addr: u64, attrs: OpAttrs, now: u64) -> u64 {
        Dram::serve(self, addr, attrs, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(mapping: AddressMapping) -> Dram {
        Dram::new(DramConfig::ddr3_1066(3.6), mapping)
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram(AddressMapping::scheme5());
        let lat = d.serve(0, OpAttrs::read(), 0);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(lat, d.config().miss_latency());
    }

    #[test]
    fn sequential_stream_hits_rows_under_scheme5() {
        let mut d = dram(AddressMapping::scheme5());
        let mut t = 0;
        for line in 0..128u64 {
            t += d.serve(line * 64, OpAttrs::read(), t);
        }
        // One miss per 8 KB row (128 lines per row → 1 miss in 128 lines).
        assert!(d.stats().row_hit_rate() > 0.95, "{:?}", d.stats());
    }

    #[test]
    fn open_row_inspection_matches_timing() {
        let mut d = dram(AddressMapping::scheme5());
        assert!(!d.row_hit(0), "banks start precharged");
        d.serve(0, OpAttrs::read(), 0);
        assert!(d.row_hit(64), "same row is open");
        let loc = AddressMapping::scheme5().decode(0, d.config());
        assert_eq!(d.open_row(loc.global_bank(d.config())), Some(loc.row));
        assert!(
            !d.row_hit(d.config().row_bytes),
            "other row of the same bank"
        );
        // Writes are buffered and never open rows.
        let mut d = dram(AddressMapping::scheme5());
        d.serve(0, OpAttrs::write(), 0);
        assert!(!d.row_hit(64));
        // Ideal-RBL devices hit by definition.
        let ideal = Dram::new_ideal_rbl(DramConfig::ddr3_1066(3.6), AddressMapping::scheme5());
        assert!(ideal.row_hit(1 << 30));
    }

    #[test]
    fn alternating_rows_conflict() {
        let mut d = dram(AddressMapping::scheme5());
        let row_bytes = d.config().row_bytes;
        let mut t = 0;
        for i in 0..32u64 {
            // Ping-pong between row 0 and row 1 of the same bank.
            let addr = (i % 2) * row_bytes;
            t += d.serve(addr, OpAttrs::read(), t);
        }
        assert!(d.stats().row_conflicts >= 30, "{:?}", d.stats());
    }

    #[test]
    fn conflicts_cost_more_than_hits() {
        let cfg = DramConfig::ddr3_1066(3.6);
        let mut hitter = Dram::new(cfg, AddressMapping::scheme5());
        let mut t = 0;
        for line in 0..64u64 {
            t += hitter.serve(line * 64, OpAttrs::read(), t);
        }
        let mut conflicter = Dram::new(cfg, AddressMapping::scheme5());
        let mut t2 = 0;
        for i in 0..64u64 {
            t2 += conflicter.serve((i % 2) * cfg.row_bytes, OpAttrs::read(), t2);
        }
        assert!(conflicter.stats().avg_read_latency() > 1.5 * hitter.stats().avg_read_latency());
    }

    #[test]
    fn banks_overlap_under_parallel_arrivals() {
        // 8 requests to 8 different banks all arriving at t=0 finish far
        // sooner than 8 requests to one bank.
        let cfg = DramConfig::ddr3_1066(3.6);
        let m = AddressMapping::scheme7(); // line-interleaved banks
        let mut spread = Dram::new(cfg, m);
        let spread_latency: u64 = (0..8u64)
            .map(|i| spread.serve(i * 64, OpAttrs::read(), 0))
            .sum();

        let mut serial = Dram::new(cfg, AddressMapping::scheme5());
        let serial_latency: u64 = (0..8u64)
            .map(|i| serial.serve(i * cfg.row_bytes, OpAttrs::read(), 0))
            .sum();
        assert!(spread_latency < serial_latency);
    }

    #[test]
    fn bus_serializes_transfers() {
        // Many simultaneous row hits on one channel still queue on the bus.
        let cfg = DramConfig::ddr3_1066(3.6);
        let mut d = Dram::new(cfg, AddressMapping::scheme5());
        // Warm the row.
        let mut t = d.serve(0, OpAttrs::read(), 0);
        let base = d.serve(64, OpAttrs::read(), t);
        t += base;
        // Two hits issued at the same instant: the second waits for the bus.
        let a = d.serve(128, OpAttrs::read(), t);
        let b = d.serve(192, OpAttrs::read(), t);
        assert!(b >= a + cfg.bus_cycles - 1);
    }

    #[test]
    fn ideal_rbl_always_hits() {
        let cfg = DramConfig::ddr3_1066(3.6);
        let mut d = Dram::new_ideal_rbl(cfg, AddressMapping::scheme1());
        let mut t = 0;
        for i in 0..64u64 {
            t += d.serve(i * 1_000_003, OpAttrs::read(), t); // scattered addresses
        }
        assert_eq!(d.stats().row_hits, 64);
        assert_eq!(d.stats().row_conflicts, 0);
    }

    #[test]
    fn closed_policy_never_hits() {
        let cfg = DramConfig {
            row_policy: RowPolicy::Closed,
            ..DramConfig::ddr3_1066(3.6)
        };
        let mut d = Dram::new(cfg, AddressMapping::scheme5());
        let mut t = 0;
        for line in 0..16u64 {
            t += d.serve(line * 64, OpAttrs::read(), t);
        }
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_misses, 16);
    }

    #[test]
    fn warm_access_opens_rows_without_stats_or_timing() {
        let mut d = dram(AddressMapping::scheme5());
        d.warm_access(0);
        assert!(d.row_hit(64), "warm probe opened the row");
        assert_eq!(d.stats(), DramStats::default(), "no statistics recorded");
        assert_eq!(d.busy_banks(0), 0, "no bank timing consumed");
        // A detailed read after warming is a row hit.
        d.serve(64, OpAttrs::read(), 0);
        assert_eq!(d.stats().row_hits, 1);
        // Closed-row policy: warm probes leave the bank precharged.
        let cfg = DramConfig {
            row_policy: RowPolicy::Closed,
            ..DramConfig::ddr3_1066(3.6)
        };
        let mut closed = Dram::new(cfg, AddressMapping::scheme5());
        closed.warm_access(0);
        assert!(!closed.row_hit(64));
    }

    #[test]
    fn write_stats_tracked() {
        let mut d = dram(AddressMapping::scheme1());
        d.serve(0, OpAttrs::write(), 0);
        d.serve(64, OpAttrs::read(), 0);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
        assert!(d.stats().avg_read_latency() > 0.0);
        assert!(d.stats().avg_write_latency() > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let d = dram(AddressMapping::scheme1());
        assert_eq!(d.stats().row_hit_rate(), 0.0);
        assert_eq!(d.stats().avg_read_latency(), 0.0);
        assert_eq!(d.stats().avg_write_latency(), 0.0);
    }
}
