//! DRAM timing and geometry configuration.
//!
//! Defaults reproduce Table 3 of the paper: DDR3-1066, 2 channels, 1 rank
//! per channel, 8 banks per rank, FR-FCFS scheduling with an open-row
//! policy. All latencies are expressed in *core cycles* so the DRAM model
//! plugs directly into the core timing model; the constructor converts the
//! DDR3 nanosecond parameters at the configured core frequency.

/// DRAM geometry + timing, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Bytes per DRAM row (row-buffer size).
    pub row_bytes: u64,
    /// Column (burst) granularity in bytes — one cache line.
    pub col_bytes: u64,
    /// CAS latency in core cycles (`tCL`).
    pub t_cl: u64,
    /// Row-to-column delay in core cycles (`tRCD`).
    pub t_rcd: u64,
    /// Row precharge in core cycles (`tRP`).
    pub t_rp: u64,
    /// Minimum row-open time in core cycles (`tRAS`).
    pub t_ras: u64,
    /// Data-burst occupancy of the channel bus per access, in core cycles.
    ///
    /// This is the bandwidth knob: `64 B / bus_cycles` at the core frequency
    /// is the per-channel peak bandwidth. Fig 6's 2/1/0.5 GB/s-per-core
    /// configurations are produced by scaling this value.
    pub bus_cycles: u64,
    /// Row-address width used by mappings where the row field is not the
    /// most significant (it then cannot simply absorb the remaining bits).
    /// Set with [`DramConfig::with_capacity`] so the full geometry tiles the
    /// simulated physical memory.
    pub row_bits: u32,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Keep the row open after an access (Table 3: "open-row policy").
    #[default]
    Open,
    /// Precharge immediately after each access (close-page), for ablation.
    Closed,
}

impl DramConfig {
    /// DDR3-1066 timings (tCK = 1.875 ns, CL-RCD-RP = 7-7-7, tRAS = 35 ns)
    /// converted to core cycles at `core_ghz`, with the paper's 2-channel,
    /// 1-rank, 8-bank geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = dram_sim::DramConfig::ddr3_1066(3.6);
    /// assert_eq!(cfg.channels, 2);
    /// assert_eq!(cfg.banks, 8);
    /// // 13.125 ns CAS at 3.6 GHz ≈ 47 core cycles.
    /// assert!((cfg.t_cl as i64 - 47).abs() <= 1);
    /// ```
    pub fn ddr3_1066(core_ghz: f64) -> Self {
        let ns = |t: f64| (t * core_ghz).round().max(1.0) as u64;
        DramConfig {
            channels: 2,
            ranks: 1,
            banks: 8,
            row_bytes: 8192,
            col_bytes: 64,
            t_cl: ns(13.125),
            t_rcd: ns(13.125),
            t_rp: ns(13.125),
            t_ras: ns(35.0),
            // DDR3-1066 peak ≈ 8.53 GB/s per channel: 64 B in ~7.5 ns.
            bus_cycles: ns(7.5),
            row_bits: 16,
            row_policy: RowPolicy::Open,
        }
    }

    /// Sizes `row_bits` so that channels × ranks × banks × rows × row_bytes
    /// equals (at least) `phys_bytes` — required for mappings whose row
    /// field sits below the top of the address (e.g. [`scheme5`]) to spread
    /// small simulated memories over all banks.
    ///
    /// [`scheme5`]: crate::mapping::AddressMapping::scheme5
    pub fn with_capacity(mut self, phys_bytes: u64) -> Self {
        let per_row_total =
            self.channels as u64 * self.ranks as u64 * self.banks as u64 * self.row_bytes;
        let rows = (phys_bytes / per_row_total).max(2).next_power_of_two();
        self.row_bits = rows.trailing_zeros();
        self
    }

    /// Scales the channel bus occupancy so peak per-channel bandwidth is
    /// `gbps` GB/s at `core_ghz` (Fig 6's bandwidth sweep).
    pub fn with_channel_bandwidth(mut self, gbps: f64, core_ghz: f64) -> Self {
        let ns_per_line = self.col_bytes as f64 / gbps; // GB/s == B/ns
        self.bus_cycles = (ns_per_line * core_ghz).round().max(1.0) as u64;
        self
    }

    /// Total number of banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }

    /// Latency of a row-buffer hit (CAS + burst).
    pub fn hit_latency(&self) -> u64 {
        self.t_cl + self.bus_cycles
    }

    /// Latency of an access to a closed bank (activate + CAS + burst).
    pub fn miss_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.bus_cycles
    }

    /// Latency of a row-buffer conflict (precharge + activate + CAS + burst).
    pub fn conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.bus_cycles
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1066(3.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering() {
        let c = DramConfig::default();
        assert!(c.hit_latency() < c.miss_latency());
        assert!(c.miss_latency() < c.conflict_latency());
    }

    #[test]
    fn bandwidth_scaling() {
        let base = DramConfig::ddr3_1066(3.6);
        let slow = base.with_channel_bandwidth(1.0, 3.6);
        let fast = base.with_channel_bandwidth(4.0, 3.6);
        // 64 B at 1 GB/s = 64 ns = 230 cycles at 3.6 GHz.
        assert_eq!(slow.bus_cycles, 230);
        assert!(fast.bus_cycles < slow.bus_cycles);
    }

    #[test]
    fn geometry() {
        let c = DramConfig::default();
        assert_eq!(c.total_banks(), 16);
    }
}
