//! Physical-address → DRAM-location mapping schemes.
//!
//! How physical addresses spread over channels, ranks, banks, rows, and
//! columns determines both row-buffer locality and bank-level parallelism —
//! the two quantities use case 2 of the paper optimizes. DRAMSim2 ships
//! seven orderings; the paper's strengthened baseline additionally considers
//! the permutation-based (bank-XOR) mappings of Zhang et al. \[106\] and the
//! minimalist-open-page style mapping \[107\]. We implement the same space:
//! seven field orderings plus an optional bank-XOR permutation on any of
//! them.
//!
//! A mapping is an ordering of the five fields from least-significant to
//! most-significant address bits (above the cache-line offset). The row
//! field always absorbs the remaining high bits when it is the most
//! significant field; otherwise it uses a fixed width.

use crate::config::DramConfig;
use xmem_core::addr::addr_to_index;

/// One of the five DRAM coordinate fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Channel select.
    Channel,
    /// Rank select.
    Rank,
    /// Bank select.
    Bank,
    /// Row select.
    Row,
    /// Column (cache-line within the row) select.
    Column,
}

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line) index within the row.
    pub col: u64,
}

impl DramLocation {
    /// Flattened bank index across the whole system.
    pub fn global_bank(&self, cfg: &DramConfig) -> usize {
        (self.channel * cfg.ranks + self.rank) * cfg.banks + self.bank
    }
}

/// An address-mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    /// Field order from LSB to MSB (above the line offset).
    order_lsb_to_msb: [Field; 5],
    /// XOR the bank index with the low row bits (permutation-based
    /// interleaving, Zhang et al.).
    bank_xor: bool,
    /// Short name for reports.
    name: &'static str,
}

impl AddressMapping {
    /// All nine mappings evaluated for the strengthened baseline of §6.3
    /// (seven orderings + two permutation-based variants).
    pub fn all_schemes() -> Vec<AddressMapping> {
        vec![
            Self::scheme1(),
            Self::scheme2(),
            Self::scheme3(),
            Self::scheme4(),
            Self::scheme5(),
            Self::scheme6(),
            Self::scheme7(),
            Self::scheme1().with_bank_xor("scheme1+xor"),
            Self::scheme2().with_bank_xor("scheme2+xor"),
        ]
    }

    /// `row:rank:bank:col:chan` — lines interleave across channels first,
    /// then columns: maximizes channel parallelism for sequential streams.
    pub fn scheme1() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Channel,
                Field::Column,
                Field::Bank,
                Field::Rank,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:rank:bank:col:chan",
        }
    }

    /// `row:rank:bank:chan:col` — a row's worth of lines stays in one
    /// channel; channels interleave at row granularity.
    pub fn scheme2() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Column,
                Field::Channel,
                Field::Bank,
                Field::Rank,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:rank:bank:col*:chan*",
        }
    }

    /// `row:col:rank:bank:chan` — banks interleave just above channels:
    /// sequential streams sweep all banks before moving within a row.
    pub fn scheme3() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Channel,
                Field::Bank,
                Field::Rank,
                Field::Column,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:col:rank:bank:chan",
        }
    }

    /// `row:bank:rank:col:chan` — like scheme1 but ranks swap with banks.
    pub fn scheme4() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Channel,
                Field::Column,
                Field::Rank,
                Field::Bank,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:bank:rank:col:chan",
        }
    }

    /// `chan:rank:bank:row:col` — fully bank-partitioned: consecutive
    /// addresses fill a whole bank row by row before moving on. This is the
    /// mapping that gives a single sequential stream perfect row locality
    /// (and no parallelism).
    pub fn scheme5() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Column,
                Field::Row,
                Field::Bank,
                Field::Rank,
                Field::Channel,
            ],
            bank_xor: false,
            name: "chan:rank:bank:row:col",
        }
    }

    /// `row:col:bank:rank:chan` — rank interleave below bank.
    pub fn scheme6() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Channel,
                Field::Rank,
                Field::Bank,
                Field::Column,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:col:bank:rank:chan",
        }
    }

    /// `row:chan:col:rank:bank` — banks at the very bottom: consecutive
    /// lines hit different banks (maximal bank rotation).
    pub fn scheme7() -> AddressMapping {
        AddressMapping {
            order_lsb_to_msb: [
                Field::Bank,
                Field::Rank,
                Field::Column,
                Field::Channel,
                Field::Row,
            ],
            bank_xor: false,
            name: "row:chan:col:rank:bank",
        }
    }

    /// Returns a copy with permutation-based bank interleaving enabled
    /// (bank index XOR low row bits), renamed to `name`.
    pub fn with_bank_xor(mut self, name: &'static str) -> AddressMapping {
        self.bank_xor = true;
        self.name = name;
        self
    }

    /// The scheme's short name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Decodes a physical address into a DRAM location under `cfg`.
    pub fn decode(&self, addr: u64, cfg: &DramConfig) -> DramLocation {
        let line_bits = cfg.col_bytes.trailing_zeros();
        let mut rest = addr >> line_bits;

        let chan_bits = log2(cfg.channels as u64);
        let rank_bits = log2(cfg.ranks as u64);
        let bank_bits = log2(cfg.banks as u64);
        let col_bits = log2(cfg.row_bytes / cfg.col_bytes);

        let mut loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
            col: 0,
        };

        for (i, field) in self.order_lsb_to_msb.iter().enumerate() {
            let is_last = i == 4;
            match field {
                Field::Channel => {
                    loc.channel = addr_to_index(take(&mut rest, chan_bits));
                }
                Field::Rank => {
                    loc.rank = addr_to_index(take(&mut rest, rank_bits));
                }
                Field::Bank => {
                    loc.bank = addr_to_index(take(&mut rest, bank_bits));
                }
                Field::Column => {
                    loc.col = take(&mut rest, col_bits);
                }
                Field::Row => {
                    loc.row = if is_last {
                        std::mem::take(&mut rest)
                    } else {
                        take(&mut rest, cfg.row_bits)
                    };
                }
            }
        }

        if self.bank_xor && cfg.banks > 1 {
            let mask = (cfg.banks - 1) as u64;
            loc.bank = addr_to_index(loc.bank as u64 ^ (loc.row & mask));
        }
        loc
    }
}

#[inline]
fn log2(n: u64) -> u32 {
    debug_assert!(n.is_power_of_two(), "DRAM geometry must be powers of two");
    n.trailing_zeros()
}

#[inline]
fn take(rest: &mut u64, bits: u32) -> u64 {
    let v = *rest & ((1u64 << bits) - 1);
    *rest >>= bits;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn scheme1_interleaves_channels_per_line() {
        let m = AddressMapping::scheme1();
        let c = cfg();
        let a = m.decode(0, &c);
        let b = m.decode(64, &c);
        assert_ne!(a.channel, b.channel);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn scheme5_keeps_stream_in_one_bank() {
        let m = AddressMapping::scheme5();
        let c = cfg();
        // A full row of consecutive lines: same channel, same bank, same row.
        let first = m.decode(0, &c);
        for line in 1..(c.row_bytes / c.col_bytes) {
            let loc = m.decode(line * c.col_bytes, &c);
            assert_eq!(loc.channel, first.channel);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.col, line);
        }
        // The next line starts the next row of the same bank.
        let next = m.decode(c.row_bytes, &c);
        assert_eq!(next.bank, first.bank);
        assert_eq!(next.row, first.row + 1);
    }

    #[test]
    fn scheme7_rotates_banks_per_line() {
        let m = AddressMapping::scheme7();
        let c = cfg();
        let banks: Vec<usize> = (0..8).map(|i| m.decode(i * 64, &c).bank).collect();
        let unique: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(unique.len(), 8, "all 8 banks touched: {banks:?}");
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        // Distinct addresses must decode to distinct locations.
        let c = cfg();
        for m in AddressMapping::all_schemes() {
            let mut seen = std::collections::HashSet::new();
            for i in 0..4096u64 {
                let loc = m.decode(i * c.col_bytes, &c);
                assert!(
                    seen.insert((loc.channel, loc.rank, loc.bank, loc.row, loc.col)),
                    "collision under {} at line {i}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn bank_xor_differs_from_base_somewhere() {
        let c = cfg();
        let base = AddressMapping::scheme1();
        let xored = AddressMapping::scheme1().with_bank_xor("x");
        let differs = (0..1024u64).any(|i| {
            let addr = i * 64 * 8191; // scrambles low row bits
            let a = base.decode(addr, &c);
            let b = xored.decode(addr, &c);
            a.bank != b.bank
        });
        assert!(differs);
    }

    #[test]
    fn global_bank_is_dense() {
        let c = cfg();
        let m = AddressMapping::scheme3();
        let max = (0..65536u64)
            .map(|i| m.decode(i * 64, &c).global_bank(&c))
            .max()
            .unwrap();
        assert!(max < c.total_banks());
    }

    #[test]
    fn all_schemes_have_distinct_names() {
        let names: std::collections::HashSet<_> = AddressMapping::all_schemes()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(names.len(), 9);
    }
}
