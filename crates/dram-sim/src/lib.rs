//! # dram-sim — a banked DRAM timing model
//!
//! The DRAM substrate for the XMem reproduction, modeled after DRAMSim2 as
//! used in the paper's evaluation (Table 3): DDR3-1066 timing, 2 channels ×
//! 1 rank × 8 banks, open-row policy, FR-FCFS scheduling, and a family of
//! physical address mappings (the seven DRAMSim2 orderings plus
//! permutation-based bank interleaving).
//!
//! * [`DramConfig`] — geometry + timing (defaults per Table 3).
//! * [`AddressMapping`] — PA → (channel, rank, bank, row, column).
//! * [`Dram`] — the per-access timing model (row hits/misses/conflicts,
//!   bank queueing, channel bus bandwidth).
//! * [`frfcfs`] — a standalone reordering FR-FCFS scheduler for batch
//!   studies and ablation against FCFS.
//!
//! ```
//! use cpu_sim::batch::OpAttrs;
//! use dram_sim::{AddressMapping, Dram, DramConfig};
//!
//! let mut dram = Dram::new(DramConfig::ddr3_1066(3.6), AddressMapping::scheme5());
//! let mut t = 0;
//! for line in 0..256u64 {
//!     t += dram.serve(line * 64, OpAttrs::read(), t);
//! }
//! assert!(dram.stats().row_hit_rate() > 0.9); // sequential = row friendly
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod dram;
pub mod frfcfs;
pub mod mapping;

pub use crate::config::{DramConfig, RowPolicy};
pub use crate::dram::{Dram, DramStats, RowOutcome};
pub use crate::mapping::{AddressMapping, DramLocation, Field};
