//! A queue-based FR-FCFS memory scheduler (Rixner et al. \[84\]).
//!
//! The in-system [`crate::Dram`] model serves requests in arrival order;
//! this module implements the *reordering* scheduler for standalone studies:
//! among all queued requests, First-Ready (a row-buffer hit in some bank
//! whose bank is ready) beats First-Come; ties break by age. An FCFS mode
//! is provided for ablation — the gap between the two on mixed streams is
//! the classic motivation for FR-FCFS.
//!
//! Reordering is *bounded*: once the oldest pending request has waited
//! [`DEFAULT_MAX_AGE_CONFLICTS`] row-conflict latencies, it is served next
//! even when younger row hits are available, so a stream of hits to one
//! row can never starve an older request to another row indefinitely.
//! [`Discipline::FrFcfsCapped`] makes the threshold explicit (with
//! `u64::MAX` reproducing the unbounded scheduler for ablation).

use crate::config::DramConfig;
use crate::dram::{Dram, DramStats};
use crate::mapping::AddressMapping;
use cpu_sim::batch::OpAttrs;

/// The default bounded-reorder threshold of [`Discipline::FrFcfs`],
/// expressed in row-conflict latencies: the oldest pending request is
/// served unconditionally once it has waited this many worst-case
/// accesses. Large enough that ordinary hit batching is untouched, small
/// enough that no request waits more than a few microseconds.
pub const DEFAULT_MAX_AGE_CONFLICTS: u64 = 16;

/// Scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-Ready, First-Come-First-Served: prefer row hits, with the
    /// default bounded-reorder age cap
    /// (`DEFAULT_MAX_AGE_CONFLICTS × conflict_latency`).
    FrFcfs,
    /// FR-FCFS with an explicit age cap in cycles. `max_age: u64::MAX`
    /// reproduces the classic unbounded scheduler, which can starve an
    /// old conflicting request behind an endless stream of row hits.
    FrFcfsCapped {
        /// Maximum cycles the oldest pending request may wait while
        /// younger row hits jump the queue.
        max_age: u64,
    },
    /// Strict arrival order.
    Fcfs,
}

impl Discipline {
    /// The bounded-reorder threshold in cycles (irrelevant for FCFS,
    /// which never reorders).
    fn max_age(&self, config: &DramConfig) -> u64 {
        match self {
            Discipline::FrFcfs => DEFAULT_MAX_AGE_CONFLICTS * config.conflict_latency(),
            Discipline::FrFcfsCapped { max_age } => *max_age,
            Discipline::Fcfs => 0,
        }
    }
}

/// One memory request for batch scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in core cycles.
    pub arrival: u64,
    /// Physical address.
    pub addr: u64,
    /// Whether the request is a write.
    pub is_write: bool,
}

/// The result for one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Index of the request in the input batch.
    pub index: usize,
    /// Cycle the request's data transfer finished.
    pub finish: u64,
    /// Latency (finish − arrival).
    pub latency: u64,
}

/// Schedules a batch of requests and returns per-request completions plus
/// the device statistics.
///
/// Requests must be supplied in arrival order. The scheduler repeatedly
/// picks, among requests that have arrived by the current time, a row-hit
/// request if one exists (FR-FCFS) or the oldest (FCFS), advancing time to
/// the next arrival when the queue is empty.
///
/// # Examples
///
/// ```
/// use dram_sim::frfcfs::{schedule, Discipline, Request};
/// use dram_sim::{AddressMapping, DramConfig};
///
/// let cfg = DramConfig::ddr3_1066(3.6);
/// // Interleaved rows: FR-FCFS groups the row hits, FCFS ping-pongs.
/// let reqs: Vec<Request> = (0..16)
///     .map(|i| Request { arrival: 0, addr: (i % 2) * cfg.row_bytes + (i / 2) * 64, is_write: false })
///     .collect();
/// let (fr, _) = schedule(&reqs, cfg, AddressMapping::scheme5(), Discipline::FrFcfs);
/// let (fc, _) = schedule(&reqs, cfg, AddressMapping::scheme5(), Discipline::Fcfs);
/// let fr_total: u64 = fr.iter().map(|c| c.latency).sum();
/// let fc_total: u64 = fc.iter().map(|c| c.latency).sum();
/// assert!(fr_total < fc_total);
/// ```
pub fn schedule(
    requests: &[Request],
    config: DramConfig,
    mapping: AddressMapping,
    discipline: Discipline,
) -> (Vec<Completion>, DramStats) {
    // "First-ready" candidates are identified from the Dram model's own
    // bank state (`Dram::row_hit`), so the predicate can never drift from
    // the timing it delegates to — writes, for example, never open rows.
    let mut dram = Dram::new(config, mapping);
    let max_age = discipline.max_age(&config);
    let mut pending: Vec<(usize, Request)> = Vec::new();
    let mut completions = Vec::with_capacity(requests.len());
    let mut next_arrival = 0usize;
    let mut now = 0u64;

    while next_arrival < requests.len() || !pending.is_empty() {
        // Admit everything that has arrived.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            pending.push((next_arrival, requests[next_arrival]));
            next_arrival += 1;
        }
        if pending.is_empty() {
            now = requests[next_arrival].arrival;
            continue;
        }

        let pick = match discipline {
            Discipline::Fcfs => 0,
            Discipline::FrFcfs | Discipline::FrFcfsCapped { .. } => {
                // Bounded reorder: pending is in arrival order, so [0] is
                // the oldest request; once it has aged past the cap it is
                // served next even when younger row hits are available.
                if now.saturating_sub(pending[0].1.arrival) >= max_age {
                    0
                } else {
                    pending
                        .iter()
                        .position(|(_, r)| dram.row_hit(r.addr))
                        .unwrap_or(0)
                }
            }
        };
        let (index, req) = pending.remove(pick);

        let start = now.max(req.arrival);
        let lat = dram.serve(
            req.addr,
            OpAttrs {
                write: req.is_write,
                ..OpAttrs::read()
            },
            start,
        );
        let finish = start + lat;
        completions.push(Completion {
            index,
            finish,
            latency: finish - req.arrival,
        });
        // Advance coarse scheduler time: the next decision happens when this
        // command's bank work is underway. Using the CAS portion (not the
        // full latency) lets other banks proceed in parallel.
        now = start + config.t_cl.min(lat);
    }

    completions.sort_by_key(|c| c.index);
    (completions, dram.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr3_1066(3.6)
    }

    fn mapping() -> AddressMapping {
        AddressMapping::scheme5()
    }

    #[test]
    fn all_requests_complete_once() {
        let reqs: Vec<Request> = (0..32)
            .map(|i| Request {
                arrival: i * 10,
                addr: i * 64,
                is_write: i % 4 == 0,
            })
            .collect();
        let (completions, stats) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        assert_eq!(completions.len(), 32);
        assert_eq!(stats.accesses(), 32);
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.finish >= reqs[i].arrival);
        }
    }

    #[test]
    fn frfcfs_beats_fcfs_on_interleaved_rows() {
        let c = cfg();
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request {
                arrival: 0,
                addr: (i % 2) * c.row_bytes * 4 + (i / 2) * 64,
                is_write: false,
            })
            .collect();
        let (_, fr) = schedule(&reqs, c, mapping(), Discipline::FrFcfs);
        let (_, fc) = schedule(&reqs, c, mapping(), Discipline::Fcfs);
        assert!(
            fr.row_hit_rate() > fc.row_hit_rate(),
            "fr {:?} vs fc {:?}",
            fr.row_hit_rate(),
            fc.row_hit_rate()
        );
    }

    /// The anti-starvation satellite: with unbounded reordering (the old
    /// behavior, `max_age: u64::MAX`) an endless stream of row hits defers
    /// an older conflicting request for the whole batch; the default
    /// bounded cap serves the victim once it has aged out.
    #[test]
    fn bounded_reorder_prevents_starvation() {
        let c = cfg();
        let mut reqs = vec![
            // Opens row 0 of the bank.
            Request {
                arrival: 0,
                addr: 0,
                is_write: false,
            },
            // The victim: row 1 of the same bank, right behind.
            Request {
                arrival: 1,
                addr: c.row_bytes,
                is_write: false,
            },
        ];
        // A long stream of row-0 hits arriving one per cycle — far faster
        // than the device drains them, so hits are always available.
        reqs.extend((0..400u64).map(|i| Request {
            arrival: 2 + i,
            addr: 64 * (1 + (i % 100)),
            is_write: false,
        }));
        let (capped, _) = schedule(&reqs, c, mapping(), Discipline::FrFcfs);
        let (uncapped, _) = schedule(
            &reqs,
            c,
            mapping(),
            Discipline::FrFcfsCapped { max_age: u64::MAX },
        );
        let cap = DEFAULT_MAX_AGE_CONFLICTS * c.conflict_latency();
        assert!(
            uncapped[1].latency > 2 * capped[1].latency,
            "uncapped scheduler must starve the victim: uncapped {} vs capped {}",
            uncapped[1].latency,
            capped[1].latency
        );
        // Once aged out the victim is served promptly: within the cap plus
        // a few conflicts' worth of in-flight service slack.
        assert!(
            capped[1].latency <= cap + 3 * c.conflict_latency(),
            "victim waited {} cycles past cap {cap}",
            capped[1].latency
        );
    }

    /// The bank-state satellite: writes are buffered by the controller and
    /// never open rows, so a write must not make a same-row read "first
    /// ready". The scheduler's old shadow row table drifted exactly here.
    #[test]
    fn writes_do_not_make_reads_first_ready() {
        let c = cfg();
        let reqs = vec![
            Request {
                arrival: 0,
                addr: c.row_bytes,
                is_write: true,
            },
            Request {
                arrival: 0,
                addr: 0,
                is_write: false,
            },
            Request {
                arrival: 0,
                addr: c.row_bytes + 64,
                is_write: false,
            },
        ];
        let (done, _) = schedule(&reqs, c, mapping(), Discipline::FrFcfs);
        // Neither read hits after the write (all banks stay precharged),
        // so they are served in arrival order.
        assert!(
            done[1].finish < done[2].finish,
            "read to the written row jumped the queue: {done:?}"
        );
    }

    #[test]
    fn identical_on_pure_stream() {
        // A single sequential stream has no reordering opportunity.
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request {
                arrival: i,
                addr: i * 64,
                is_write: false,
            })
            .collect();
        let (_, fr) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        let (_, fc) = schedule(&reqs, cfg(), mapping(), Discipline::Fcfs);
        assert_eq!(fr.row_hits, fc.row_hits);
    }

    #[test]
    fn empty_batch() {
        let (completions, stats) = schedule(&[], cfg(), mapping(), Discipline::FrFcfs);
        assert!(completions.is_empty());
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn respects_arrival_gaps() {
        let reqs = vec![
            Request {
                arrival: 0,
                addr: 0,
                is_write: false,
            },
            Request {
                arrival: 100_000,
                addr: 64,
                is_write: false,
            },
        ];
        let (completions, _) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        assert!(completions[1].finish >= 100_000);
        // The late request was a row hit (row left open), so cheap.
        assert!(completions[1].latency <= cfg().hit_latency());
    }
}
