//! A queue-based FR-FCFS memory scheduler (Rixner et al. \[84\]).
//!
//! The in-system [`crate::Dram`] model serves requests in arrival order;
//! this module implements the *reordering* scheduler for standalone studies:
//! among all queued requests, First-Ready (a row-buffer hit in some bank
//! whose bank is ready) beats First-Come; ties break by age. An FCFS mode
//! is provided for ablation — the gap between the two on mixed streams is
//! the classic motivation for FR-FCFS.

use crate::config::DramConfig;
use crate::dram::{Dram, DramStats};
use crate::mapping::AddressMapping;

/// Scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-Ready, First-Come-First-Served: prefer row hits.
    FrFcfs,
    /// Strict arrival order.
    Fcfs,
}

/// One memory request for batch scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in core cycles.
    pub arrival: u64,
    /// Physical address.
    pub addr: u64,
    /// Whether the request is a write.
    pub is_write: bool,
}

/// The result for one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Index of the request in the input batch.
    pub index: usize,
    /// Cycle the request's data transfer finished.
    pub finish: u64,
    /// Latency (finish − arrival).
    pub latency: u64,
}

/// Schedules a batch of requests and returns per-request completions plus
/// the device statistics.
///
/// Requests must be supplied in arrival order. The scheduler repeatedly
/// picks, among requests that have arrived by the current time, a row-hit
/// request if one exists (FR-FCFS) or the oldest (FCFS), advancing time to
/// the next arrival when the queue is empty.
///
/// # Examples
///
/// ```
/// use dram_sim::frfcfs::{schedule, Discipline, Request};
/// use dram_sim::{AddressMapping, DramConfig};
///
/// let cfg = DramConfig::ddr3_1066(3.6);
/// // Interleaved rows: FR-FCFS groups the row hits, FCFS ping-pongs.
/// let reqs: Vec<Request> = (0..16)
///     .map(|i| Request { arrival: 0, addr: (i % 2) * cfg.row_bytes + (i / 2) * 64, is_write: false })
///     .collect();
/// let (fr, _) = schedule(&reqs, cfg, AddressMapping::scheme5(), Discipline::FrFcfs);
/// let (fc, _) = schedule(&reqs, cfg, AddressMapping::scheme5(), Discipline::Fcfs);
/// let fr_total: u64 = fr.iter().map(|c| c.latency).sum();
/// let fc_total: u64 = fc.iter().map(|c| c.latency).sum();
/// assert!(fr_total < fc_total);
/// ```
pub fn schedule(
    requests: &[Request],
    config: DramConfig,
    mapping: AddressMapping,
    discipline: Discipline,
) -> (Vec<Completion>, DramStats) {
    // Track open rows ourselves to identify "first-ready" candidates, and
    // delegate the actual timing to the Dram model.
    let mut dram = Dram::new(config, mapping);
    let mut open_rows: Vec<Option<u64>> = vec![None; config.total_banks()];
    let mut pending: Vec<(usize, Request)> = Vec::new();
    let mut completions = Vec::with_capacity(requests.len());
    let mut next_arrival = 0usize;
    let mut now = 0u64;

    while next_arrival < requests.len() || !pending.is_empty() {
        // Admit everything that has arrived.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            pending.push((next_arrival, requests[next_arrival]));
            next_arrival += 1;
        }
        if pending.is_empty() {
            now = requests[next_arrival].arrival;
            continue;
        }

        let pick = match discipline {
            Discipline::Fcfs => 0,
            Discipline::FrFcfs => pending
                .iter()
                .position(|(_, r)| {
                    let loc = mapping.decode(r.addr, &config);
                    open_rows[loc.global_bank(&config)] == Some(loc.row)
                })
                .unwrap_or(0),
        };
        let (index, req) = pending.remove(pick);
        let loc = mapping.decode(req.addr, &config);
        open_rows[loc.global_bank(&config)] = Some(loc.row);

        let start = now.max(req.arrival);
        let lat = dram.access(req.addr, req.is_write, start);
        let finish = start + lat;
        completions.push(Completion {
            index,
            finish,
            latency: finish - req.arrival,
        });
        // Advance coarse scheduler time: the next decision happens when this
        // command's bank work is underway. Using the CAS portion (not the
        // full latency) lets other banks proceed in parallel.
        now = start + config.t_cl.min(lat);
    }

    completions.sort_by_key(|c| c.index);
    (completions, dram.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr3_1066(3.6)
    }

    fn mapping() -> AddressMapping {
        AddressMapping::scheme5()
    }

    #[test]
    fn all_requests_complete_once() {
        let reqs: Vec<Request> = (0..32)
            .map(|i| Request {
                arrival: i * 10,
                addr: i * 64,
                is_write: i % 4 == 0,
            })
            .collect();
        let (completions, stats) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        assert_eq!(completions.len(), 32);
        assert_eq!(stats.accesses(), 32);
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.finish >= reqs[i].arrival);
        }
    }

    #[test]
    fn frfcfs_beats_fcfs_on_interleaved_rows() {
        let c = cfg();
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request {
                arrival: 0,
                addr: (i % 2) * c.row_bytes * 4 + (i / 2) * 64,
                is_write: false,
            })
            .collect();
        let (_, fr) = schedule(&reqs, c, mapping(), Discipline::FrFcfs);
        let (_, fc) = schedule(&reqs, c, mapping(), Discipline::Fcfs);
        assert!(
            fr.row_hit_rate() > fc.row_hit_rate(),
            "fr {:?} vs fc {:?}",
            fr.row_hit_rate(),
            fc.row_hit_rate()
        );
    }

    #[test]
    fn identical_on_pure_stream() {
        // A single sequential stream has no reordering opportunity.
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request {
                arrival: i,
                addr: i * 64,
                is_write: false,
            })
            .collect();
        let (_, fr) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        let (_, fc) = schedule(&reqs, cfg(), mapping(), Discipline::Fcfs);
        assert_eq!(fr.row_hits, fc.row_hits);
    }

    #[test]
    fn empty_batch() {
        let (completions, stats) = schedule(&[], cfg(), mapping(), Discipline::FrFcfs);
        assert!(completions.is_empty());
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn respects_arrival_gaps() {
        let reqs = vec![
            Request {
                arrival: 0,
                addr: 0,
                is_write: false,
            },
            Request {
                arrival: 100_000,
                addr: 64,
                is_write: false,
            },
        ];
        let (completions, _) = schedule(&reqs, cfg(), mapping(), Discipline::FrFcfs);
        assert!(completions[1].finish >= 100_000);
        // The late request was a row hit (row left open), so cheap.
        assert!(completions[1].latency <= cfg().hit_latency());
    }
}
