//! The OS façade: an address space plus the atom-aware memory allocator.
//!
//! §4.1.2: "we augment the memory allocation APIs (e.g., malloc) to take
//! Atom ID as a parameter. The memory allocator, in turn, passes the Atom ID
//! to the OS via augmented system calls that request virtual pages [...]
//! This interface enables the OS to manipulate the virtual-to-physical
//! address mapping without extra system call overheads."
//!
//! [`Os::malloc`] is that augmented allocator: it reserves a virtual range
//! and eagerly backs it with physical frames chosen by the configured
//! [`FramePolicy`] — which, under [`FramePolicy::Xmem`], implements the §6.2
//! placement algorithm.

use crate::placement::{FrameAllocator, FramePolicy};
use crate::vm::PageTable;
use xmem_core::addr::VirtAddr;
use xmem_core::atom::AtomId;

/// Errors from the OS allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsError {
    /// Physical memory is exhausted.
    OutOfMemory,
    /// The virtual address is not mapped.
    NotMapped,
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::OutOfMemory => f.write_str("out of physical memory"),
            OsError::NotMapped => f.write_str("virtual address is not mapped"),
        }
    }
}

impl std::error::Error for OsError {}

/// One simulated address space with an atom-aware allocator.
///
/// # Examples
///
/// ```
/// use os_sim::os::Os;
/// use os_sim::placement::FramePolicy;
/// use xmem_core::amu::Mmu;
///
/// let mut os = Os::new(16 << 20, 4096, FramePolicy::Sequential);
/// let va = os.malloc(10_000, None)?;
/// assert!(os.page_table().translate(va).is_some());
/// # Ok::<(), os_sim::os::OsError>(())
/// ```
#[derive(Debug)]
pub struct Os {
    page_table: PageTable,
    frames: FrameAllocator,
    /// Next unassigned virtual address (simple bump allocation, page
    /// aligned, starting above the null guard page).
    next_va: u64,
}

impl Os {
    /// Creates an address space over `phys_bytes` of physical memory.
    pub fn new(phys_bytes: u64, page_size: u64, policy: FramePolicy) -> Self {
        Os {
            page_table: PageTable::new(page_size),
            frames: FrameAllocator::new(phys_bytes, page_size, policy),
            next_va: page_size,
        }
    }

    /// The address space's page table (implements
    /// [`Mmu`](xmem_core::amu::Mmu) for the AMU).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The frame allocator (e.g. to inspect bank reservations).
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// The augmented `malloc(size, atomID)` of §4.1.2: returns a fresh
    /// page-aligned virtual range of at least `size` bytes, eagerly backed
    /// by frames placed according to `atom`'s semantics.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::OutOfMemory`] when physical frames run out.
    pub fn malloc(&mut self, size: u64, atom: Option<AtomId>) -> Result<VirtAddr, OsError> {
        let page = self.frames.page_size();
        let pages = size.div_ceil(page).max(1);
        let base = self.next_va;
        for i in 0..pages {
            let vpn = (base / page) + i;
            let pfn = self.frames.alloc(atom).ok_or(OsError::OutOfMemory)?;
            self.page_table.map_page(vpn, pfn);
        }
        self.next_va = base + pages * page;
        Ok(VirtAddr::new(base))
    }

    /// Migrates the page containing `va` to a freshly allocated frame
    /// placed according to `atom`'s semantics (how a NUMA/hybrid placement
    /// daemon rebalances a hot page), returning the new frame number. The
    /// virtual address stays the same; the physical backing changes, so
    /// any translation caches above the page table must be invalidated by
    /// the caller (the machine does this). The old frame is not recycled —
    /// the allocator is bump-style, matching the eager no-free model of
    /// [`Os::malloc`].
    ///
    /// # Errors
    ///
    /// [`OsError::NotMapped`] when `va` has never been allocated;
    /// [`OsError::OutOfMemory`] when no frame is available.
    pub fn migrate_page(&mut self, va: VirtAddr, atom: Option<AtomId>) -> Result<u64, OsError> {
        let page = self.frames.page_size();
        let vpn = va.raw() / page;
        if self.page_table.frame_of(vpn).is_none() {
            return Err(OsError::NotMapped);
        }
        let pfn = self.frames.alloc(atom).ok_or(OsError::OutOfMemory)?;
        self.page_table.map_page(vpn, pfn);
        Ok(pfn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::amu::Mmu;

    #[test]
    fn malloc_maps_all_pages() {
        let mut os = Os::new(1 << 20, 4096, FramePolicy::Sequential);
        let va = os.malloc(3 * 4096 + 1, None).unwrap();
        // 4 pages mapped, all translatable.
        for i in 0..4u64 {
            assert!(os.page_table().translate(va + i * 4096).is_some());
        }
        assert_eq!(os.page_table().mapped_pages(), 4);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut os = Os::new(1 << 20, 4096, FramePolicy::Sequential);
        let a = os.malloc(8192, None).unwrap();
        let b = os.malloc(4096, None).unwrap();
        assert!(b.raw() >= a.raw() + 8192);
    }

    #[test]
    fn zero_size_gets_one_page() {
        let mut os = Os::new(1 << 20, 4096, FramePolicy::Sequential);
        let va = os.malloc(0, None).unwrap();
        assert!(os.page_table().translate(va).is_some());
    }

    #[test]
    fn out_of_memory_reported() {
        let mut os = Os::new(4 * 4096, 4096, FramePolicy::Sequential);
        assert!(os.malloc(4 * 4096, None).is_ok());
        assert_eq!(os.malloc(4096, None).unwrap_err(), OsError::OutOfMemory);
    }

    #[test]
    fn migrate_page_rebinds_the_virtual_page() {
        let mut os = Os::new(1 << 20, 4096, FramePolicy::Sequential);
        let va = os.malloc(2 * 4096, None).unwrap();
        let old_pa = os.page_table().translate(va + 8).unwrap().raw();
        let new_pfn = os.migrate_page(va, None).unwrap();
        let new_pa = os.page_table().translate(va + 8).unwrap().raw();
        assert_ne!(new_pa, old_pa, "migration must change the backing");
        assert_eq!(new_pa, new_pfn * 4096 + 8, "offset within page preserved");
        // The neighbouring page is untouched.
        let neighbour = os.page_table().translate(va + 4096).unwrap().raw();
        assert_ne!(neighbour / 4096, new_pfn);
        // Unmapped VAs are rejected, not silently mapped.
        assert_eq!(
            os.migrate_page(VirtAddr::new(0x7000_0000), None)
                .unwrap_err(),
            OsError::NotMapped
        );
    }

    #[test]
    fn randomized_backing_differs_from_sequential() {
        let mut seq = Os::new(1 << 20, 4096, FramePolicy::Sequential);
        let mut rnd = Os::new(1 << 20, 4096, FramePolicy::Randomized { seed: 3 });
        let va_s = seq.malloc(64 * 4096, None).unwrap();
        let va_r = rnd.malloc(64 * 4096, None).unwrap();
        let frames_s: Vec<u64> = (0..64)
            .map(|i| seq.page_table().translate(va_s + i * 4096).unwrap().raw() / 4096)
            .collect();
        let frames_r: Vec<u64> = (0..64)
            .map(|i| rnd.page_table().translate(va_r + i * 4096).unwrap().raw() / 4096)
            .collect();
        assert_ne!(frames_s, frames_r);
    }
}
