//! Program loading: atom segment → GAT → translated PATs (§3.5.2).
//!
//! "When the program is loaded into memory for execution by the OS, the OS
//! also reads the atom segment and saves the attributes for each atom in the
//! GLOBAL ATTRIBUTE TABLE (GAT) [...]. The OS also invokes a hardware
//! translator that converts the higher-level attributes saved in the GAT to
//! sets of specific hardware primitives relevant to each hardware component,
//! and saves them in a per-component PRIVATE ATTRIBUTE TABLE (PAT)."

use xmem_core::atom::AtomId;
use xmem_core::error::Result;
use xmem_core::pat::Pat;
use xmem_core::process::{ProcessId, XMemProcess};
use xmem_core::segment::AtomSegment;
use xmem_core::translate::{
    AttributeTranslator, CachePrimitive, PlacementPrimitive, PrefetcherPrimitive,
};

/// A loaded program: the OS-side process state plus every component's PAT.
#[derive(Debug)]
pub struct LoadedProcess {
    /// The process' GAT + AST image.
    pub process: XMemProcess,
    /// The cache's private attribute table.
    pub cache_pat: Pat<CachePrimitive>,
    /// The prefetcher's private attribute table.
    pub pf_pat: Pat<PrefetcherPrimitive>,
    /// Per-atom placement primitives for the OS allocator.
    pub placement: Vec<(AtomId, PlacementPrimitive)>,
}

/// Loads an atom segment, filling the GAT and running the attribute
/// translator for each component.
///
/// # Errors
///
/// Propagates segment parsing and GAT errors. A program with *no* atom
/// segment should simply not call this — XMem is strictly additive.
///
/// # Examples
///
/// ```
/// use os_sim::loader::load_process;
/// use xmem_core::process::ProcessId;
/// use xmem_core::segment::AtomSegment;
/// use xmem_core::translate::AttributeTranslator;
///
/// let loaded = load_process(
///     ProcessId(1),
///     &AtomSegment::new().to_bytes(),
///     &AttributeTranslator::new(),
/// )?;
/// assert!(loaded.cache_pat.is_empty());
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
pub fn load_process(
    pid: ProcessId,
    segment_bytes: &[u8],
    translator: &AttributeTranslator,
) -> Result<LoadedProcess> {
    let segment = AtomSegment::from_bytes(segment_bytes)?;
    load_segment(pid, &segment, translator)
}

/// Like [`load_process`] but from an already parsed segment.
///
/// # Errors
///
/// Propagates GAT insertion failures.
pub fn load_segment(
    pid: ProcessId,
    segment: &AtomSegment,
    translator: &AttributeTranslator,
) -> Result<LoadedProcess> {
    let process = XMemProcess::load(pid, segment)?;
    let mut cache_pat = Pat::new();
    cache_pat.fill_from_gat(&process.gat, |a| translator.for_cache(a));
    let mut pf_pat = Pat::new();
    pf_pat.fill_from_gat(&process.gat, |a| translator.for_prefetcher(a));
    let placement = process
        .gat
        .iter()
        .map(|atom| (atom.id(), translator.for_placement(atom.attrs())))
        .collect();
    Ok(LoadedProcess {
        process,
        cache_pat,
        pf_pat,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::atom::StaticAtom;
    use xmem_core::attrs::{AccessPattern, AtomAttributes, Reuse};

    fn segment() -> AtomSegment {
        let mut seg = AtomSegment::new();
        seg.push(StaticAtom::new(
            AtomId::new(0),
            "stream",
            AtomAttributes::builder()
                .access_pattern(AccessPattern::sequential(8))
                .reuse(Reuse(100))
                .build(),
        ));
        seg.push(StaticAtom::new(
            AtomId::new(1),
            "graph",
            AtomAttributes::builder()
                .access_pattern(AccessPattern::Irregular)
                .build(),
        ));
        seg
    }

    #[test]
    fn load_fills_all_tables() {
        let loaded = load_process(
            ProcessId(7),
            &segment().to_bytes(),
            &AttributeTranslator::new(),
        )
        .unwrap();
        assert_eq!(loaded.process.pid, ProcessId(7));
        assert_eq!(loaded.process.gat.len(), 2);
        assert_eq!(loaded.cache_pat.len(), 2);
        assert_eq!(loaded.pf_pat.len(), 2);
        assert_eq!(loaded.placement.len(), 2);

        // The streaming atom translated to a strided prefetch primitive and
        // a pin candidate; the graph atom to neither.
        assert_eq!(loaded.pf_pat.get(AtomId::new(0)).unwrap().stride, Some(8));
        assert!(loaded.cache_pat.get(AtomId::new(0)).unwrap().pin_candidate);
        assert_eq!(loaded.pf_pat.get(AtomId::new(1)).unwrap().stride, None);
        assert!(loaded.placement[0].1.high_rbl);
        assert!(!loaded.placement[1].1.high_rbl);
    }

    #[test]
    fn malformed_segment_is_error() {
        assert!(load_process(ProcessId(0), b"junk", &AttributeTranslator::new()).is_err());
    }
}
