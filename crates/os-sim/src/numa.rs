//! NUMA data placement — Table 1's "Data placement: NUMA systems" use case.
//!
//! "Reduces the need for profiling or data migration (i) to co-locate data
//! with threads that access it and (ii) to identify Read-Only data, thereby
//! enabling techniques such as replication."
//!
//! The model: a multi-socket machine where local accesses are fast and
//! remote ones pay an interconnect penalty. The XMem policy uses two
//! attributes the baseline lacks:
//!
//! * `PRIVATE`/`SHARED` data properties + the owning thread → co-locate
//!   private data with its accessor;
//! * `READ_ONLY` → replicate on every socket (always local).
//!
//! The baseline is first-touch on socket 0 (the classic pathology when a
//! main thread initializes everything before workers spawn).

use cpu_sim::batch::OpAttrs;
use xmem_core::atom::AtomId;
use xmem_core::attrs::{AtomAttributes, DataProps, RwChar};

/// NUMA machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct NumaConfig {
    /// Number of sockets.
    pub sockets: usize,
    /// Local access latency in cycles.
    pub local_latency: u64,
    /// Remote access latency in cycles.
    pub remote_latency: u64,
}

impl Default for NumaConfig {
    fn default() -> Self {
        NumaConfig {
            sockets: 4,
            local_latency: 200,
            remote_latency: 420,
        }
    }
}

/// Where an atom's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumaPlacement {
    /// One copy on the given socket.
    OnSocket(usize),
    /// Replicated on every socket (read-only data).
    Replicated,
    /// Interleaved across sockets (shared read-write data — spreads the
    /// interconnect load).
    Interleaved,
}

/// The NUMA placement engine.
#[derive(Debug)]
pub struct NumaSystem {
    config: NumaConfig,
    placements: Vec<Option<NumaPlacement>>,
    /// Total latency + access count for reporting.
    total_latency: u64,
    accesses: u64,
    remote_accesses: u64,
}

impl NumaSystem {
    /// Creates the system with nothing placed.
    pub fn new(config: NumaConfig) -> Self {
        NumaSystem {
            config,
            placements: vec![None; 256],
            total_latency: 0,
            accesses: 0,
            remote_accesses: 0,
        }
    }

    /// First-touch baseline: data lands on the socket of the thread that
    /// touches (here: allocates) it first.
    pub fn place_first_touch(&mut self, atom: AtomId, socket: usize) {
        self.placements[atom.index()] = Some(NumaPlacement::OnSocket(socket));
    }

    /// XMem-guided placement from the atom's attributes and (for private
    /// data) the socket of the thread the data belongs to.
    pub fn place_with_semantics(
        &mut self,
        atom: AtomId,
        attrs: &AtomAttributes,
        owner_socket: Option<usize>,
    ) {
        let placement = if attrs.rw() == RwChar::ReadOnly {
            NumaPlacement::Replicated
        } else if attrs.props().contains(DataProps::PRIVATE) {
            NumaPlacement::OnSocket(owner_socket.unwrap_or(0))
        } else if attrs.props().contains(DataProps::SHARED) {
            NumaPlacement::Interleaved
        } else {
            NumaPlacement::OnSocket(owner_socket.unwrap_or(0))
        };
        self.placements[atom.index()] = Some(placement);
    }

    /// The placement decided for `atom`.
    pub fn placement_of(&self, atom: AtomId) -> Option<NumaPlacement> {
        self.placements[atom.index()]
    }

    /// One access to `atom`'s data; returns and accumulates the latency.
    /// The originating socket and the interleave salt (which decorrelates
    /// `Interleaved` accesses) arrive as typed [`OpAttrs`], the same
    /// attribute word the batched memory path carries per op.
    ///
    /// # Panics
    ///
    /// Panics if the atom was never placed.
    pub fn serve(&mut self, atom: AtomId, attrs: OpAttrs) -> u64 {
        let placement = self.placements[atom.index()]
            // simlint: allow(unwrap, reason = "documented `# Panics` API contract; workload bug, not a recoverable error")
            .expect("access before placement");
        let socket = attrs.socket as usize;
        let local = match placement {
            NumaPlacement::Replicated => true,
            NumaPlacement::OnSocket(s) => s == socket,
            NumaPlacement::Interleaved => {
                (attrs.salt % self.config.sockets as u64) as usize == socket
            }
        };
        let lat = if local {
            self.config.local_latency
        } else {
            self.remote_accesses += 1;
            self.config.remote_latency
        };
        self.total_latency += lat;
        self.accesses += 1;
        lat
    }

    /// Mean access latency so far.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that went remote.
    pub fn remote_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(rw: RwChar, props: DataProps) -> AtomAttributes {
        AtomAttributes::builder().rw(rw).props(props).build()
    }

    #[test]
    fn read_only_data_is_replicated() {
        let mut numa = NumaSystem::new(NumaConfig::default());
        let a = AtomId::new(0);
        numa.place_with_semantics(a, &attrs(RwChar::ReadOnly, DataProps::EMPTY), None);
        assert_eq!(numa.placement_of(a), Some(NumaPlacement::Replicated));
        // Every socket reads it locally.
        for s in 0..4u8 {
            assert_eq!(
                numa.serve(a, OpAttrs::read().on_socket(s)),
                numa.config.local_latency
            );
        }
        assert_eq!(numa.remote_fraction(), 0.0);
    }

    #[test]
    fn private_data_colocates_with_owner() {
        let mut numa = NumaSystem::new(NumaConfig::default());
        let a = AtomId::new(1);
        numa.place_with_semantics(a, &attrs(RwChar::ReadWrite, DataProps::PRIVATE), Some(2));
        assert_eq!(numa.placement_of(a), Some(NumaPlacement::OnSocket(2)));
        assert_eq!(numa.serve(a, OpAttrs::read().on_socket(2)), 200);
        assert_eq!(numa.serve(a, OpAttrs::read().on_socket(0)), 420);
    }

    #[test]
    fn semantics_beat_first_touch_on_worker_pools() {
        // The classic scenario: the main thread (socket 0) allocates each
        // worker's private buffer; workers on sockets 0..3 then hammer
        // their own buffers, plus a shared read-only table.
        let cfg = NumaConfig::default();
        let table = AtomId::new(10);
        let worker_buf = |w: u8| AtomId::new(w);

        let mut first_touch = NumaSystem::new(cfg);
        let mut xmem = NumaSystem::new(cfg);
        first_touch.place_first_touch(table, 0);
        xmem.place_with_semantics(table, &attrs(RwChar::ReadOnly, DataProps::EMPTY), None);
        for w in 0..4u8 {
            first_touch.place_first_touch(worker_buf(w), 0); // main thread touched it
            xmem.place_with_semantics(
                worker_buf(w),
                &attrs(RwChar::ReadWrite, DataProps::PRIVATE),
                Some(w as usize),
            );
        }

        for i in 0..40_000u64 {
            let w = (i % 4) as u8;
            let at = OpAttrs::read().on_socket(w).with_salt(i);
            if i % 3 == 0 {
                first_touch.serve(table, at);
                xmem.serve(table, at);
            } else {
                first_touch.serve(worker_buf(w), at);
                xmem.serve(worker_buf(w), at);
            }
        }
        assert!(xmem.remote_fraction() < 0.01, "{}", xmem.remote_fraction());
        assert!(
            first_touch.remote_fraction() > 0.5,
            "{}",
            first_touch.remote_fraction()
        );
        assert!(xmem.avg_latency() < first_touch.avg_latency() * 0.8);
    }

    #[test]
    fn shared_rw_data_interleaves() {
        let mut numa = NumaSystem::new(NumaConfig::default());
        let a = AtomId::new(3);
        numa.place_with_semantics(a, &attrs(RwChar::ReadWrite, DataProps::SHARED), None);
        assert_eq!(numa.placement_of(a), Some(NumaPlacement::Interleaved));
        // Across many salted accesses, each socket sees ~1/4 local.
        let mut local = 0;
        for salt in 0..4000u64 {
            if numa.serve(a, OpAttrs::read().on_socket(1).with_salt(salt))
                == numa.config.local_latency
            {
                local += 1;
            }
        }
        assert!((800..1200).contains(&local), "local {local}");
    }
}
