//! # os-sim — virtual memory, frame placement, and program loading
//!
//! The OS substrate for the XMem reproduction:
//!
//! * [`vm::PageTable`] — VA→PA translation (implements
//!   [`xmem_core::amu::Mmu`] so the AMU can resolve `ATOM_MAP` ranges).
//! * [`placement::FrameAllocator`] — physical frame policies: sequential,
//!   randomized (the strengthened baseline of §6.3), and the XMem
//!   bank-aware placement algorithm of §6.2.
//! * [`loader`] — atom segment → GAT → per-component PATs, as the OS does
//!   at program load time (§3.5.2).
//! * [`os::Os`] — an address space with the augmented `malloc(size, atom)`
//!   of §4.1.2.
//!
//! ```
//! use os_sim::os::Os;
//! use os_sim::placement::FramePolicy;
//!
//! let mut os = Os::new(16 << 20, 4096, FramePolicy::Randomized { seed: 42 });
//! let va = os.malloc(1 << 16, None).unwrap();
//! assert_eq!(va.raw() % 4096, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hybrid;
pub mod loader;
pub mod numa;
pub mod os;
pub mod placement;
pub mod tlb;
pub mod virt;
pub mod vm;

pub use crate::hybrid::{HybridConfig, HybridMemory, HybridPolicy, HybridStats, Tier};
pub use crate::loader::{load_process, load_segment, LoadedProcess};
pub use crate::numa::{NumaConfig, NumaPlacement, NumaSystem};
pub use crate::os::{Os, OsError};
pub use crate::placement::{FrameAllocator, FramePolicy};
pub use crate::tlb::{Tlb, TlbConfig, TlbStats};
pub use crate::virt::{NestedPageTable, VirtualMachine, VmId};
pub use crate::vm::PageTable;
