//! Virtualized environments (§4.3 of the paper).
//!
//! "XMem is designed to seamlessly function in these virtualized
//! environments": the AAM is indexed by *host* physical address, so it is
//! globally shared across VMs; the AST/PATs are per-process and reload on
//! context switches; the MAP operator communicates with the MMU to resolve
//! the host physical address. This module supplies the missing translation
//! machinery: a two-level (guest → host) page table that the AMU can use as
//! its [`Mmu`], and a [`VirtualMachine`] wrapper bundling a guest address
//! space with its slice of host memory.

use crate::vm::PageTable;
use std::collections::BTreeMap;
use xmem_core::addr::{PhysAddr, VirtAddr};
use xmem_core::amu::Mmu;

/// Identifies a virtual machine on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

/// A two-level translation: guest virtual → guest physical (guest page
/// table) → host physical (the hypervisor's table for this VM).
///
/// Implements [`Mmu`], so `ATOM_MAP` executed inside a guest lands in the
/// globally-shared, host-PA-indexed AAM — exactly the §4.3 design.
///
/// # Examples
///
/// ```
/// use os_sim::virt::NestedPageTable;
/// use xmem_core::addr::VirtAddr;
/// use xmem_core::amu::Mmu;
///
/// let mut nested = NestedPageTable::new(4096);
/// nested.map_guest_page(0, 5);  // guest VA page 0 -> guest PA frame 5
/// nested.map_host_page(5, 42);  // guest frame 5   -> host frame 42
/// let host_pa = nested.translate(VirtAddr::new(0x123)).unwrap();
/// assert_eq!(host_pa.raw(), 42 * 4096 + 0x123);
/// ```
#[derive(Debug, Clone)]
pub struct NestedPageTable {
    guest: PageTable,
    /// Guest-physical frame → host-physical frame (the EPT/NPT analogue).
    host: BTreeMap<u64, u64>,
    page_size: u64,
}

impl NestedPageTable {
    /// Creates an empty two-level table.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        NestedPageTable {
            guest: PageTable::new(page_size),
            host: BTreeMap::new(),
            page_size,
        }
    }

    /// Maps guest virtual page `vpn` to guest physical frame `gpfn`.
    pub fn map_guest_page(&mut self, vpn: u64, gpfn: u64) {
        self.guest.map_page(vpn, gpfn);
    }

    /// Maps guest physical frame `gpfn` to host physical frame `hpfn`.
    pub fn map_host_page(&mut self, gpfn: u64, hpfn: u64) {
        self.host.insert(gpfn, hpfn);
    }

    /// The guest-level table (what the guest OS manipulates).
    pub fn guest(&self) -> &PageTable {
        &self.guest
    }

    /// Translates a guest physical address to a host physical address.
    pub fn guest_pa_to_host(&self, gpa: u64) -> Option<u64> {
        let gpfn = gpa / self.page_size;
        let offset = gpa % self.page_size;
        self.host
            .get(&gpfn)
            .map(|hpfn| hpfn * self.page_size + offset)
    }
}

impl Mmu for NestedPageTable {
    fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let gpa = self.guest.translate(va)?;
        self.guest_pa_to_host(gpa.raw()).map(PhysAddr::new)
    }

    fn page_size(&self) -> u64 {
        self.page_size
    }
}

/// A guest VM: its nested translation plus the range of host frames the
/// hypervisor granted it.
#[derive(Debug)]
pub struct VirtualMachine {
    /// The VM's identifier (used to distinguish addresses from different
    /// VMs at shared hardware components, per §4.3).
    pub id: VmId,
    /// Guest → host translation.
    pub pages: NestedPageTable,
    next_guest_frame: u64,
    host_frames: Vec<u64>,
    next_host: usize,
    next_va: u64,
}

impl VirtualMachine {
    /// Creates a VM owning the given host frames.
    pub fn new(id: VmId, page_size: u64, host_frames: Vec<u64>) -> Self {
        VirtualMachine {
            id,
            pages: NestedPageTable::new(page_size),
            next_guest_frame: 0,
            host_frames,
            next_host: 0,
            next_va: page_size,
        }
    }

    /// Guest-side allocation: reserves a guest VA range and backs it with
    /// guest frames, which the hypervisor in turn backs with host frames.
    ///
    /// Returns the guest VA, or `None` if the VM's host memory grant is
    /// exhausted.
    pub fn galloc(&mut self, bytes: u64) -> Option<VirtAddr> {
        let page = self.pages.page_size;
        let pages = bytes.div_ceil(page).max(1);
        let base = self.next_va;
        for i in 0..pages {
            let hpfn = *self.host_frames.get(self.next_host)?;
            self.next_host += 1;
            let gpfn = self.next_guest_frame;
            self.next_guest_frame += 1;
            self.pages.map_guest_page(base / page + i, gpfn);
            self.pages.map_host_page(gpfn, hpfn);
        }
        self.next_va = base + pages * page;
        Some(VirtAddr::new(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::aam::AamConfig;
    use xmem_core::amu::{AmuConfig, AtomManagementUnit};
    use xmem_core::attrs::AtomAttributes;
    use xmem_core::xmemlib::{CallSite, XMemLib};

    fn amu() -> AtomManagementUnit {
        AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: 4 << 20,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn nested_translation_composes() {
        let mut n = NestedPageTable::new(4096);
        n.map_guest_page(3, 7);
        n.map_host_page(7, 100);
        assert_eq!(
            n.translate(VirtAddr::new(3 * 4096 + 9)).unwrap().raw(),
            100 * 4096 + 9
        );
        // Missing either level fails the walk.
        assert!(n.translate(VirtAddr::new(0)).is_none());
        n.map_guest_page(0, 8); // guest frame 8 has no host backing
        assert!(n.translate(VirtAddr::new(0)).is_none());
    }

    #[test]
    fn atoms_work_from_inside_a_guest() {
        // §4.3: "The MAP/UNMAP operator communicates directly with the MMU
        // to map the host physical address to the corresponding atom ID."
        let mut vm = VirtualMachine::new(VmId(1), 4096, (100..164).collect());
        let mut amu = amu();
        let mut lib = XMemLib::new();
        let atom = lib
            .create_atom(
                CallSite {
                    file: "guest",
                    line: 1,
                },
                "guest_data",
                AtomAttributes::default(),
            )
            .unwrap();
        let gva = vm.galloc(16 << 10).unwrap();
        lib.atom_map(&mut amu, &vm.pages, atom, gva, 16 << 10)
            .unwrap();
        lib.atom_activate(&mut amu, &vm.pages, atom).unwrap();

        // The AAM is host-PA indexed: querying through the nested walk
        // resolves the atom for every guest page.
        for off in (0..(16u64 << 10)).step_by(4096) {
            let host_pa = vm.pages.translate(gva + off).unwrap();
            assert_eq!(amu.active_atom_at(host_pa), Some(atom));
        }
    }

    #[test]
    fn two_vms_share_the_global_aam_without_collisions() {
        // Same guest VAs in two VMs; different host frames; one global AAM.
        let mut vm1 = VirtualMachine::new(VmId(1), 4096, (0..32).collect());
        let mut vm2 = VirtualMachine::new(VmId(2), 4096, (512..544).collect());
        let mut amu = amu();
        let mut lib1 = XMemLib::new();
        let mut lib2 = XMemLib::new();
        let a1 = lib1
            .create_atom(
                CallSite {
                    file: "g1",
                    line: 1,
                },
                "a",
                AtomAttributes::default(),
            )
            .unwrap();
        // Give VM2's atom a distinct global ID (process-level tracking).
        let _ = lib2
            .create_atom(
                CallSite {
                    file: "g2",
                    line: 0,
                },
                "pad",
                AtomAttributes::default(),
            )
            .unwrap();
        let a2 = lib2
            .create_atom(
                CallSite {
                    file: "g2",
                    line: 1,
                },
                "b",
                AtomAttributes::default(),
            )
            .unwrap();
        assert_ne!(a1, a2);

        let va1 = vm1.galloc(8192).unwrap();
        let va2 = vm2.galloc(8192).unwrap();
        assert_eq!(va1, va2, "guest VAs intentionally collide");

        lib1.atom_map(&mut amu, &vm1.pages, a1, va1, 8192).unwrap();
        lib1.atom_activate(&mut amu, &vm1.pages, a1).unwrap();
        lib2.atom_map(&mut amu, &vm2.pages, a2, va2, 8192).unwrap();
        lib2.atom_activate(&mut amu, &vm2.pages, a2).unwrap();

        let host1 = vm1.pages.translate(va1).unwrap();
        let host2 = vm2.pages.translate(va2).unwrap();
        assert_ne!(host1, host2);
        assert_eq!(amu.active_atom_at(host1), Some(a1));
        assert_eq!(amu.active_atom_at(host2), Some(a2));
    }

    #[test]
    fn galloc_exhaustion() {
        let mut vm = VirtualMachine::new(VmId(3), 4096, vec![1, 2]);
        assert!(vm.galloc(8192).is_some());
        assert!(vm.galloc(4096).is_none());
    }
}
