//! Data placement in hybrid (DRAM + NVM) memories — Table 1's
//! "Data placement: hybrid memories" use case.
//!
//! "Avoids the need for profiling/migration of data in hybrid memories to
//! (i) effectively manage the asymmetric read-write properties in NVM
//! (e.g., placing Read-Only data in the NVM), (ii) make tradeoffs between
//! data structure 'hotness' and size to allocate fast/high bandwidth
//! memory."
//!
//! The model: a small fast DRAM tier and a large NVM tier with asymmetric
//! (and higher) read/write latencies. The OS decides, per data structure,
//! which tier its pages go to:
//!
//! * [`HybridPolicy::FirstFit`] — semantics-blind: fill DRAM in allocation
//!   order, overflow to NVM (what an OS without XMem does on first touch);
//! * [`HybridPolicy::Xmem`] — semantics-driven: rank structures by the
//!   damage NVM would do them (write intensity first, then hotness) and
//!   give DRAM to the most NVM-averse; read-only/cold data goes to NVM.

use cpu_sim::batch::OpAttrs;
use xmem_core::atom::AtomId;
use xmem_core::translate::PlacementPrimitive;

/// Which tier a page lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Fast, small, write-friendly.
    Dram,
    /// Slow, large, write-averse (endurance + latency).
    Nvm,
}

/// Latency parameters of the two tiers, in core cycles.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// DRAM capacity in bytes.
    pub dram_bytes: u64,
    /// NVM capacity in bytes.
    pub nvm_bytes: u64,
    /// Page size.
    pub page_size: u64,
    /// DRAM read latency.
    pub dram_read: u64,
    /// DRAM write latency.
    pub dram_write: u64,
    /// NVM read latency (typically ~2-4x DRAM).
    pub nvm_read: u64,
    /// NVM write latency (typically ~5-10x DRAM).
    pub nvm_write: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        // PCM-like asymmetry over a DDR3-like baseline (core cycles @3.6GHz).
        HybridConfig {
            dram_bytes: 8 << 20,
            nvm_bytes: 64 << 20,
            page_size: 4096,
            dram_read: 180,
            dram_write: 180,
            nvm_read: 450,
            nvm_write: 1400,
        }
    }
}

/// Placement policy for the hybrid system.
#[derive(Debug, Clone)]
pub enum HybridPolicy {
    /// DRAM until full, then NVM, in allocation order.
    FirstFit,
    /// XMem-guided: DRAM goes to the structures NVM would hurt most.
    Xmem {
        /// Placement primitives + structure sizes, from the loaded atoms.
        atoms: Vec<(AtomId, PlacementPrimitive, u64)>,
    },
}

/// Statistics of a hybrid-memory run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Reads served by DRAM.
    pub dram_reads: u64,
    /// Writes served by DRAM.
    pub dram_writes: u64,
    /// Reads served by NVM.
    pub nvm_reads: u64,
    /// Writes served by NVM (the endurance-critical number).
    pub nvm_writes: u64,
    /// Total latency over all accesses.
    pub total_latency: u64,
}

impl HybridStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes + self.nvm_reads + self.nvm_writes
    }

    /// Mean access latency.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses() as f64
        }
    }
}

/// The two-tier memory with per-structure placement.
#[derive(Debug)]
pub struct HybridMemory {
    config: HybridConfig,
    /// Tier granted to each atom.
    tier_of_atom: Vec<Option<Tier>>,
    dram_left: u64,
    nvm_left: u64,
    stats: HybridStats,
}

impl HybridMemory {
    /// Creates the memory and resolves the policy into per-atom tiers.
    ///
    /// With [`HybridPolicy::Xmem`], structures are sorted by NVM-aversion —
    /// writes are the dominant penalty, then access intensity — and DRAM is
    /// granted greedily in that order (the paper's hotness/size tradeoff:
    /// a structure only gets DRAM if it fits in what remains).
    pub fn new(config: HybridConfig, policy: &HybridPolicy) -> Self {
        let mut mem = HybridMemory {
            config,
            tier_of_atom: vec![None; 256],
            dram_left: config.dram_bytes,
            nvm_left: config.nvm_bytes,
            stats: HybridStats::default(),
        };
        if let HybridPolicy::Xmem { atoms } = policy {
            let mut ranked: Vec<&(AtomId, PlacementPrimitive, u64)> = atoms.iter().collect();
            ranked.sort_by_key(|(_, p, _)| {
                // Higher score = more NVM-averse = DRAM first.
                let write_pressure = if p.read_only { 0u32 } else { 256 };
                std::cmp::Reverse(write_pressure + p.intensity as u32)
            });
            for (atom, _p, bytes) in ranked {
                let tier = if *bytes <= mem.dram_left {
                    mem.dram_left -= bytes;
                    Tier::Dram
                } else {
                    mem.nvm_left = mem.nvm_left.saturating_sub(*bytes);
                    Tier::Nvm
                };
                mem.tier_of_atom[atom.index()] = Some(tier);
            }
        }
        mem
    }

    /// Allocates `bytes` for `atom` under first-fit semantics when the atom
    /// has no pre-resolved tier (the baseline path). Returns the tier used.
    pub fn alloc_first_fit(&mut self, atom: AtomId, bytes: u64) -> Tier {
        if let Some(t) = self.tier_of_atom[atom.index()] {
            return t;
        }
        let tier = if bytes <= self.dram_left {
            self.dram_left -= bytes;
            Tier::Dram
        } else {
            self.nvm_left = self.nvm_left.saturating_sub(bytes);
            Tier::Nvm
        };
        self.tier_of_atom[atom.index()] = Some(tier);
        tier
    }

    /// The tier an atom's data lives in (after allocation).
    pub fn tier_of(&self, atom: AtomId) -> Option<Tier> {
        self.tier_of_atom[atom.index()]
    }

    /// Serves one access to `atom`'s data, returning its latency. The
    /// read/write direction arrives as typed [`OpAttrs`] — the same
    /// attribute word the batched memory path carries per op.
    ///
    /// # Panics
    ///
    /// Panics if the atom was never allocated.
    pub fn serve(&mut self, atom: AtomId, attrs: OpAttrs) -> u64 {
        let tier = self.tier_of_atom[atom.index()]
            // simlint: allow(unwrap, reason = "documented `# Panics` API contract; workload bug, not a recoverable error")
            .expect("access before allocation");
        let lat = match (tier, attrs.write) {
            (Tier::Dram, false) => {
                self.stats.dram_reads += 1;
                self.config.dram_read
            }
            (Tier::Dram, true) => {
                self.stats.dram_writes += 1;
                self.config.dram_write
            }
            (Tier::Nvm, false) => {
                self.stats.nvm_reads += 1;
                self.config.nvm_read
            }
            (Tier::Nvm, true) => {
                self.stats.nvm_writes += 1;
                self.config.nvm_write
            }
        };
        self.stats.total_latency += lat;
        lat
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::attrs::{AccessIntensity, AccessPattern, AtomAttributes, RwChar};
    use xmem_core::translate::AttributeTranslator;

    fn prim(read_only: bool, intensity: u8) -> PlacementPrimitive {
        AttributeTranslator::new().for_placement(
            &AtomAttributes::builder()
                .access_pattern(AccessPattern::sequential(8))
                .rw(if read_only {
                    RwChar::ReadOnly
                } else {
                    RwChar::ReadWrite
                })
                .intensity(AccessIntensity(intensity))
                .build(),
        )
    }

    #[test]
    fn xmem_places_hot_rw_in_dram_and_ro_in_nvm() {
        let hot_rw = AtomId::new(0);
        let big_ro = AtomId::new(1);
        let policy = HybridPolicy::Xmem {
            atoms: vec![
                (hot_rw, prim(false, 200), 4 << 20),
                (big_ro, prim(true, 220), 32 << 20),
            ],
        };
        let mem = HybridMemory::new(HybridConfig::default(), &policy);
        assert_eq!(mem.tier_of(hot_rw), Some(Tier::Dram));
        assert_eq!(mem.tier_of(big_ro), Some(Tier::Nvm));
    }

    #[test]
    fn first_fit_gives_dram_to_whoever_comes_first() {
        let first = AtomId::new(0);
        let second = AtomId::new(1);
        let mut mem = HybridMemory::new(HybridConfig::default(), &HybridPolicy::FirstFit);
        assert_eq!(mem.alloc_first_fit(first, 7 << 20), Tier::Dram);
        assert_eq!(mem.alloc_first_fit(second, 4 << 20), Tier::Nvm);
    }

    #[test]
    fn xmem_beats_first_fit_on_the_paper_scenario() {
        // Allocation order favors the wrong structure: a big read-only
        // table is allocated first, then the hot read-write log.
        let ro_table = AtomId::new(0);
        let rw_log = AtomId::new(1);
        let (ro_bytes, rw_bytes) = (6 << 20, 4 << 20);

        let mut naive = HybridMemory::new(HybridConfig::default(), &HybridPolicy::FirstFit);
        naive.alloc_first_fit(ro_table, ro_bytes);
        naive.alloc_first_fit(rw_log, rw_bytes);

        let xmem_policy = HybridPolicy::Xmem {
            atoms: vec![
                (ro_table, prim(true, 150), ro_bytes),
                (rw_log, prim(false, 200), rw_bytes),
            ],
        };
        let mut xmem = HybridMemory::new(HybridConfig::default(), &xmem_policy);

        // Same access stream through both: the log is written hot, the
        // table is read.
        for i in 0..10_000u64 {
            let write = i % 2 == 0;
            if write {
                naive.serve(rw_log, OpAttrs::write());
                xmem.serve(rw_log, OpAttrs::write());
            } else {
                naive.serve(ro_table, OpAttrs::read());
                xmem.serve(ro_table, OpAttrs::read());
            }
        }
        assert!(xmem.stats().avg_latency() < naive.stats().avg_latency());
        assert_eq!(xmem.stats().nvm_writes, 0, "no writes hit NVM under XMem");
        assert!(naive.stats().nvm_writes > 0, "naive writes the NVM log");
    }

    #[test]
    fn stats_accounting() {
        let a = AtomId::new(0);
        let mut mem = HybridMemory::new(HybridConfig::default(), &HybridPolicy::FirstFit);
        mem.alloc_first_fit(a, 1 << 20);
        mem.serve(a, OpAttrs::read());
        mem.serve(a, OpAttrs::write());
        let s = mem.stats();
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.dram_reads, 1);
        assert_eq!(s.dram_writes, 1);
        assert!(s.avg_latency() > 0.0);
    }
}
