//! Virtual memory: a simple single-level page table.
//!
//! The OS substrate controls the virtual→physical mapping — the lever the
//! XMem placement use case (§6) pulls to steer data structures to specific
//! DRAM banks and channels. The table implements
//! [`xmem_core::amu::Mmu`] so the AMU can translate `ATOM_MAP` ranges.

use xmem_core::addr::{PhysAddr, VirtAddr};
use xmem_core::amu::Mmu;
use xmem_core::flatmap::FlatMap;

/// A flat VPN→PFN page table for one address space.
///
/// Translation sits on the per-access hot path (every load/store
/// translates), so the backing store is a [`FlatMap`]: binary-search
/// lookups over contiguous keys, with the same ascending-VPN iteration
/// order as the `BTreeMap` it replaced (the determinism invariant).
/// Allocation maps pages in mostly ascending VPN order, so inserts are
/// amortized appends.
///
/// # Examples
///
/// ```
/// use os_sim::vm::PageTable;
/// use xmem_core::addr::VirtAddr;
/// use xmem_core::amu::Mmu;
///
/// let mut pt = PageTable::new(4096);
/// pt.map_page(1, 42);
/// let pa = pt.translate(VirtAddr::new(4096 + 123)).unwrap();
/// assert_eq!(pa.raw(), 42 * 4096 + 123);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    map: FlatMap<u64, u64>,
}

impl PageTable {
    /// Creates an empty table with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageTable {
            page_size,
            map: FlatMap::new(),
        }
    }

    /// Maps virtual page `vpn` to physical frame `pfn` (replacing any
    /// previous mapping).
    pub fn map_page(&mut self, vpn: u64, pfn: u64) {
        self.map.insert(vpn, pfn);
    }

    /// Removes the mapping for `vpn`, returning the frame it held.
    pub fn unmap_page(&mut self, vpn: u64) -> Option<u64> {
        self.map.remove(&vpn)
    }

    /// The frame backing `vpn`, if mapped.
    pub fn frame_of(&self, vpn: u64) -> Option<u64> {
        self.map.get(&vpn).copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

impl Mmu for PageTable {
    fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let vpn = va.page_index(self.page_size);
        let offset = va.page_offset(self.page_size);
        self.map
            .get(&vpn)
            .map(|pfn| PhysAddr::new(pfn * self.page_size + offset))
    }

    fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_roundtrip() {
        let mut pt = PageTable::new(4096);
        pt.map_page(0, 7);
        pt.map_page(5, 0);
        assert_eq!(
            pt.translate(VirtAddr::new(10)).unwrap().raw(),
            7 * 4096 + 10
        );
        assert_eq!(
            pt.translate(VirtAddr::new(5 * 4096 + 4095)).unwrap().raw(),
            4095
        );
        assert_eq!(pt.translate(VirtAddr::new(4096)), None);
    }

    #[test]
    fn remap_replaces() {
        let mut pt = PageTable::new(4096);
        pt.map_page(1, 10);
        pt.map_page(1, 20);
        assert_eq!(pt.frame_of(1), Some(20));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn unmap() {
        let mut pt = PageTable::new(4096);
        pt.map_page(2, 3);
        assert_eq!(pt.unmap_page(2), Some(3));
        assert_eq!(pt.unmap_page(2), None);
        assert_eq!(pt.translate(VirtAddr::new(2 * 4096)), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_page_size_rejected() {
        let _ = PageTable::new(3000);
    }
}
