//! Physical frame allocation policies, including the XMem-guided DRAM
//! placement algorithm of §6.2.
//!
//! Three policies reproduce the systems of the paper's second use case:
//!
//! * [`FramePolicy::Sequential`] — naive first-free allocation (for tests
//!   and ablation).
//! * [`FramePolicy::Randomized`] — randomized VA→PA mapping, part of the
//!   *strengthened baseline* of §6.3 ("shown to perform better than the
//!   Buddy algorithm").
//! * [`FramePolicy::Xmem`] — the §6.2 algorithm: given the placement
//!   primitives of the program's atoms and the DRAM geometry, it (i)
//!   *isolates* data structures with high row-buffer locality and high
//!   access intensity in reserved banks and (ii) *spreads* all other data
//!   across the remaining banks to maximize memory-level parallelism.

use dram_sim::{AddressMapping, DramConfig};
use xmem_core::atom::AtomId;
use xmem_core::rng::SplitMix64;
use xmem_core::translate::PlacementPrimitive;

/// A frame allocator over a fixed pool of physical frames.
#[derive(Debug)]
pub struct FrameAllocator {
    page_size: u64,
    policy: PolicyState,
}

/// Frame-allocation policy selector.
#[derive(Debug, Clone)]
pub enum FramePolicy {
    /// First-free, in increasing frame order.
    Sequential,
    /// Uniformly random free frame (seeded for determinism).
    Randomized {
        /// RNG seed.
        seed: u64,
    },
    /// The XMem placement algorithm (§6.2); requires the atoms' placement
    /// primitives and the DRAM mapping in force.
    Xmem {
        /// Per-atom placement primitives from the loaded program.
        atoms: Vec<(AtomId, PlacementPrimitive)>,
        /// The memory controller's address mapping.
        mapping: AddressMapping,
        /// The DRAM geometry.
        dram: DramConfig,
    },
}

#[derive(Debug)]
enum PolicyState {
    Sequential { free: Vec<u64>, next: usize },
    Randomized { free: Vec<u64>, rng: SplitMix64 },
    Xmem(XmemPlacement),
}

impl FrameAllocator {
    /// Creates an allocator over `phys_bytes / page_size` frames.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero frames).
    pub fn new(phys_bytes: u64, page_size: u64, policy: FramePolicy) -> Self {
        let frames = phys_bytes / page_size;
        assert!(frames > 0, "no physical frames");
        let state = match policy {
            FramePolicy::Sequential => PolicyState::Sequential {
                free: (0..frames).collect(),
                next: 0,
            },
            FramePolicy::Randomized { seed } => PolicyState::Randomized {
                free: (0..frames).collect(),
                rng: SplitMix64::new(seed),
            },
            FramePolicy::Xmem {
                atoms,
                mapping,
                dram,
            } => PolicyState::Xmem(XmemPlacement::new(frames, page_size, atoms, mapping, dram)),
        };
        FrameAllocator {
            page_size,
            policy: state,
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Allocates one frame for data belonging to `atom` (if known).
    ///
    /// Returns `None` when physical memory is exhausted.
    pub fn alloc(&mut self, atom: Option<AtomId>) -> Option<u64> {
        match &mut self.policy {
            PolicyState::Sequential { free, next } => {
                if *next < free.len() {
                    let f = free[*next];
                    *next += 1;
                    Some(f)
                } else {
                    None
                }
            }
            PolicyState::Randomized { free, rng } => {
                if free.is_empty() {
                    None
                } else {
                    let i = rng.below(free.len() as u64) as usize;
                    Some(free.swap_remove(i))
                }
            }
            PolicyState::Xmem(x) => x.alloc(atom),
        }
    }

    /// For the XMem policy: the banks reserved for `atom`, if it was
    /// isolated. Empty for non-isolated atoms and other policies.
    pub fn reserved_banks(&self, atom: AtomId) -> Vec<usize> {
        match &self.policy {
            PolicyState::Xmem(x) => x.reserved_banks(atom),
            _ => Vec::new(),
        }
    }
}

/// The §6.2 placement algorithm.
///
/// Bank reservation: atoms are ranked by access intensity; an atom is
/// *isolated* when its primitive says `high_rbl` and its intensity is high
/// enough that dedicating banks to it does not hurt overall parallelism
/// (we require intensity ≥ half the maximum intensity among atoms, and cap
/// total reserved banks at half the machine). Each isolated atom receives
/// an equal share of the reserved banks. All remaining data — spread atoms
/// and anonymous allocations — round-robins across the unreserved banks.
#[derive(Debug)]
struct XmemPlacement {
    /// Free frames per global bank (pop from the back).
    per_bank: Vec<Vec<u64>>,
    /// banks assigned to each isolated atom.
    isolation: Vec<(AtomId, Vec<usize>)>,
    /// Banks not reserved by any atom.
    shared_banks: Vec<usize>,
    /// Round-robin cursor into `shared_banks`.
    rr: usize,
}

impl XmemPlacement {
    fn new(
        frames: u64,
        page_size: u64,
        atoms: Vec<(AtomId, PlacementPrimitive)>,
        mapping: AddressMapping,
        dram: DramConfig,
    ) -> Self {
        let total_banks = dram.total_banks();
        // Bucket frames by the bank of their base address. (The policy is
        // meaningful when the mapping keeps a frame within one bank — e.g.
        // a row-major mapping with rows ≥ page size; with line-interleaved
        // mappings the OS simply loses bank control, as in real systems.)
        let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); total_banks];
        for f in 0..frames {
            let loc = mapping.decode(f * page_size, &dram);
            per_bank[loc.global_bank(&dram)].push(f);
        }
        // Frames were pushed in increasing order; pop from the *front* for
        // consecutive rows. We reverse so `pop()` yields the lowest frame.
        for list in &mut per_bank {
            list.reverse();
        }

        // Rank atoms: isolate high-RBL atoms whose intensity is at least
        // half of the hottest atom's.
        let max_intensity = atoms.iter().map(|(_, p)| p.intensity).max().unwrap_or(0);
        let threshold = max_intensity / 2;
        let mut isolated: Vec<(AtomId, u8)> = atoms
            .iter()
            .filter(|(_, p)| p.high_rbl && p.intensity >= threshold && p.intensity > 0)
            .map(|(a, p)| (*a, p.intensity))
            .collect();
        isolated.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Size each isolated atom's reservation proportional to its access
        // intensity (§6.2: isolation must not reduce overall parallelism —
        // a structure carrying most of the traffic needs most of the banks),
        // always leaving a shared remainder for spread/anonymous data when
        // any exists.
        let i_total: u64 = atoms
            .iter()
            .map(|(_, p)| p.intensity as u64)
            .sum::<u64>()
            .max(1);
        let any_shared_atom = atoms
            .iter()
            .any(|(a, p)| !isolated.iter().any(|(ia, _)| ia == a) || !p.high_rbl);
        let min_shared = if any_shared_atom {
            (total_banks / 4).max(2)
        } else {
            2
        };

        // Visit banks interleaved across channels/ranks so that both the
        // reserved set and the shared remainder span all channels (keeping
        // channel-level parallelism for everyone).
        let banks_per_cr = dram.banks;
        let mut bank_order: Vec<usize> = (0..total_banks).collect();
        bank_order.sort_by_key(|&g| (g % banks_per_cr, g / banks_per_cr));

        let mut cursor = 0usize;
        let mut isolation = Vec::new();
        for (atom, intensity) in isolated {
            let available = (total_banks - min_shared).saturating_sub(cursor);
            if available == 0 {
                break;
            }
            let want = (total_banks as u64 * intensity as u64)
                .div_ceil(i_total)
                .max(1) as usize;
            let take = want.min(available);
            let banks: Vec<usize> = bank_order[cursor..cursor + take].to_vec();
            cursor += take;
            isolation.push((atom, banks));
        }
        let shared_banks: Vec<usize> = bank_order[cursor..].to_vec();

        XmemPlacement {
            per_bank,
            isolation,
            shared_banks,
            rr: 0,
        }
    }

    fn reserved_banks(&self, atom: AtomId) -> Vec<usize> {
        self.isolation
            .iter()
            .find(|(a, _)| *a == atom)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }

    fn alloc(&mut self, atom: Option<AtomId>) -> Option<u64> {
        // Isolated atom: allocate from its own banks, round-robin between
        // them (RBL within each bank, parallelism between its banks).
        if let Some(a) = atom {
            if let Some((_, banks)) = self.isolation.iter().find(|(x, _)| *x == a) {
                let banks = banks.clone();
                // Pick the reserved bank with the most free frames (keeps
                // row runs long while balancing).
                if let Some(&bank) = banks.iter().max_by_key(|&&b| self.per_bank[b].len()) {
                    if let Some(f) = self.per_bank[bank].pop() {
                        return Some(f);
                    }
                }
                // Reserved banks exhausted: fall through to shared pool.
            }
        }
        // Spread everything else across the shared banks round-robin.
        let n = self.shared_banks.len();
        for _ in 0..n.max(1) {
            if n == 0 {
                break;
            }
            let bank = self.shared_banks[self.rr % n];
            self.rr += 1;
            if let Some(f) = self.per_bank[bank].pop() {
                return Some(f);
            }
        }
        // Shared pool exhausted: steal from any bank with frames left.
        self.per_bank.iter_mut().find_map(|l| l.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::attrs::{AccessIntensity, AccessPattern, AtomAttributes};
    use xmem_core::translate::AttributeTranslator;

    fn prim(high_rbl: bool, intensity: u8) -> PlacementPrimitive {
        let t = AttributeTranslator::new();
        let pattern = if high_rbl {
            AccessPattern::sequential(8)
        } else {
            AccessPattern::NonDet
        };
        t.for_placement(
            &AtomAttributes::builder()
                .access_pattern(pattern)
                .intensity(AccessIntensity(intensity))
                .build(),
        )
    }

    fn xmem_alloc(atoms: Vec<(AtomId, PlacementPrimitive)>) -> FrameAllocator {
        FrameAllocator::new(
            64 << 20,
            4096,
            FramePolicy::Xmem {
                atoms,
                mapping: AddressMapping::scheme5(),
                dram: DramConfig::ddr3_1066(3.6).with_capacity(64 << 20),
            },
        )
    }

    #[test]
    fn sequential_allocates_in_order() {
        let mut a = FrameAllocator::new(16 * 4096, 4096, FramePolicy::Sequential);
        assert_eq!(a.alloc(None), Some(0));
        assert_eq!(a.alloc(None), Some(1));
        for _ in 2..16 {
            assert!(a.alloc(None).is_some());
        }
        assert_eq!(a.alloc(None), None);
    }

    #[test]
    fn randomized_is_deterministic_per_seed_and_exhaustive() {
        let run = |seed| {
            let mut a = FrameAllocator::new(64 * 4096, 4096, FramePolicy::Randomized { seed });
            (0..64).map(|_| a.alloc(None).unwrap()).collect::<Vec<_>>()
        };
        let x = run(1);
        let y = run(1);
        let z = run(2);
        assert_eq!(x, y);
        assert_ne!(x, z);
        let mut sorted = x.clone();
        sorted.sort();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
        assert_ne!(x, sorted, "seed 1 should not be identity order");
    }

    #[test]
    fn xmem_isolates_high_rbl_hot_atom() {
        let hot = AtomId::new(0);
        let cold = AtomId::new(1);
        let mut a = xmem_alloc(vec![(hot, prim(true, 200)), (cold, prim(false, 100))]);
        let banks = a.reserved_banks(hot);
        assert!(!banks.is_empty(), "hot streaming atom gets banks");
        assert!(a.reserved_banks(cold).is_empty());

        // All of the hot atom's frames land in its reserved banks.
        let mapping = AddressMapping::scheme5();
        let dram = DramConfig::ddr3_1066(3.6).with_capacity(64 << 20);
        for _ in 0..32 {
            let f = a.alloc(Some(hot)).unwrap();
            let bank = mapping.decode(f * 4096, &dram).global_bank(&dram);
            assert!(
                banks.contains(&bank),
                "frame {f} in bank {bank}, not {banks:?}"
            );
        }
        // And the cold atom never lands there.
        for _ in 0..32 {
            let f = a.alloc(Some(cold)).unwrap();
            let bank = mapping.decode(f * 4096, &dram).global_bank(&dram);
            assert!(!banks.contains(&bank));
        }
    }

    #[test]
    fn xmem_spreads_irregular_atoms_across_banks() {
        let irr = AtomId::new(2);
        let mut a = xmem_alloc(vec![(irr, prim(false, 200))]);
        let mapping = AddressMapping::scheme5();
        let dram = DramConfig::ddr3_1066(3.6).with_capacity(64 << 20);
        let banks: std::collections::HashSet<usize> = (0..32)
            .map(|_| {
                let f = a.alloc(Some(irr)).unwrap();
                mapping.decode(f * 4096, &dram).global_bank(&dram)
            })
            .collect();
        assert!(banks.len() >= 8, "spread over {} banks", banks.len());
    }

    #[test]
    fn xmem_low_intensity_rbl_atom_not_isolated() {
        // High RBL but cold relative to the hottest atom: not worth a bank.
        let cold_stream = AtomId::new(0);
        let hot_random = AtomId::new(1);
        let a = xmem_alloc(vec![
            (cold_stream, prim(true, 10)),
            (hot_random, prim(false, 250)),
        ]);
        assert!(a.reserved_banks(cold_stream).is_empty());
    }

    #[test]
    fn xmem_isolated_frames_are_row_consecutive() {
        let hot = AtomId::new(0);
        let mut a = xmem_alloc(vec![(hot, prim(true, 200))]);
        let banks = a.reserved_banks(hot);
        // Consecutive allocations within one bank come in increasing frame
        // order (consecutive rows → row-buffer friendly).
        let mut per_bank: std::collections::HashMap<usize, Vec<u64>> =
            std::collections::HashMap::new();
        let mapping = AddressMapping::scheme5();
        let dram = DramConfig::ddr3_1066(3.6).with_capacity(64 << 20);
        for _ in 0..64 {
            let f = a.alloc(Some(hot)).unwrap();
            let bank = mapping.decode(f * 4096, &dram).global_bank(&dram);
            assert!(banks.contains(&bank));
            per_bank.entry(bank).or_default().push(f);
        }
        for frames in per_bank.values() {
            let mut sorted = frames.clone();
            sorted.sort();
            assert_eq!(&sorted, frames, "frames within a bank are ascending");
        }
    }

    #[test]
    fn exhaustion_falls_back_gracefully() {
        let hot = AtomId::new(0);
        // Tiny memory: 32 frames.
        let mut a = FrameAllocator::new(
            32 * 4096,
            4096,
            FramePolicy::Xmem {
                atoms: vec![(hot, prim(true, 200))],
                mapping: AddressMapping::scheme5(),
                dram: DramConfig::ddr3_1066(3.6).with_capacity(32 * 4096),
            },
        );
        let mut got = 0;
        while a.alloc(Some(hot)).is_some() {
            got += 1;
        }
        assert_eq!(got, 32, "all frames allocatable despite reservation");
    }
}
