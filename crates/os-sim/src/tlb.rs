//! A translation lookaside buffer with page-walk cost accounting.
//!
//! The AMU's ALB is explicitly modeled on the TLB ("the functionality of an
//! ALB is similar to a TLB in an MMU", §4.2(4)); this is the TLB itself,
//! available to the full-system machine so translation costs appear in the
//! timing model. Fully associative, LRU, per-process flush on context
//! switch.

use xmem_core::addr::VirtAddr;
use xmem_core::flatmap::FlatMap;

/// TLB geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size translated.
    pub page_size: u64,
    /// Cycles added by a miss (the page-table walk).
    pub walk_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            page_size: 4096,
            walk_latency: 30,
        }
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations requiring a walk.
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The TLB.
///
/// # Examples
///
/// ```
/// use os_sim::tlb::{Tlb, TlbConfig};
/// use xmem_core::addr::VirtAddr;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert_eq!(tlb.translate_cost(VirtAddr::new(0x1234)), 30); // cold miss
/// assert_eq!(tlb.translate_cost(VirtAddr::new(0x1FFF)), 0);  // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// vpn → last-used stamp, in a key-sorted [`FlatMap`]: the probe is a
    /// binary search over 64 contiguous entries instead of a tree walk,
    /// and iteration stays in ascending-vpn order, so the LRU victim scan
    /// below is deterministic even if two entries ever carried the same
    /// stamp (identical tie-break to the BTreeMap it replaced).
    entries: FlatMap<u64, u64>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: FlatMap::with_capacity(config.entries),
            clock: 0,
            stats: TlbStats::default(),
            config,
        }
    }

    /// Returns the translation cost in cycles for an access to `va`
    /// (0 on a hit, the walk latency on a miss), updating LRU state.
    pub fn translate_cost(&mut self, va: VirtAddr) -> u64 {
        self.clock += 1;
        let vpn = va.page_index(self.config.page_size);
        if let Some(stamp) = self.entries.get_mut(&vpn) {
            *stamp = self.clock;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.config.entries {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(vpn, _)| vpn)
                // simlint: allow(unwrap, reason = "guarded by the len() check above; entries is non-empty here")
                .expect("non-empty TLB");
            self.entries.remove(&victim);
        }
        self.entries.insert(vpn, self.clock);
        self.config.walk_latency
    }

    /// Flushes all entries (context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_page() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert_eq!(tlb.translate_cost(VirtAddr::new(0)), 30);
        assert_eq!(tlb.translate_cost(VirtAddr::new(4095)), 0);
        assert_eq!(tlb.translate_cost(VirtAddr::new(4096)), 30);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            ..Default::default()
        });
        tlb.translate_cost(VirtAddr::new(0)); // page 0
        tlb.translate_cost(VirtAddr::new(4096)); // page 1
        tlb.translate_cost(VirtAddr::new(0)); // touch page 0
        tlb.translate_cost(VirtAddr::new(8192)); // page 2 evicts page 1
        assert_eq!(tlb.translate_cost(VirtAddr::new(0)), 0, "page 0 resident");
        assert_eq!(
            tlb.translate_cost(VirtAddr::new(4096)),
            30,
            "page 1 evicted"
        );
    }

    #[test]
    fn flush_forgets() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.translate_cost(VirtAddr::new(0));
        tlb.flush();
        assert_eq!(tlb.translate_cost(VirtAddr::new(0)), 30);
    }

    #[test]
    fn sequential_walk_hit_rate() {
        // A 64-entry TLB walking 64 pages repeatedly: near-perfect hits
        // after the first lap.
        let mut tlb = Tlb::new(TlbConfig::default());
        for lap in 0..4 {
            for p in 0..64u64 {
                let cost = tlb.translate_cost(VirtAddr::new(p * 4096 + 8));
                if lap > 0 {
                    assert_eq!(cost, 0, "lap {lap} page {p}");
                }
            }
        }
        assert!(tlb.stats().hit_rate() > 0.74);
    }
}
