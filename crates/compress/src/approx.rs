//! Approximation in memory — Table 1's "Approximation in memory" use case.
//!
//! "Enables (i) each memory component to track how approximable data is (at
//! a fine granularity) to inform approximation techniques; (ii) data
//! placement in heterogeneous reliability memories."
//!
//! The model: atoms whose [`DataProps::APPROXIMABLE`] bit is set may have
//! their floating-point payloads stored with truncated mantissas,
//! shrinking their memory footprint in exchange for bounded relative
//! error. Atoms without the bit are always stored exactly — the XMem
//! attribute is what makes the technique *safe to apply automatically*.
//!
//! [`DataProps::APPROXIMABLE`]: xmem_core::attrs::DataProps::APPROXIMABLE

use xmem_core::attrs::{AtomAttributes, DataProps, DataType};

/// How many low mantissa bytes of each `f64` are dropped (0–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TruncationLevel(pub u8);

impl TruncationLevel {
    /// No truncation: exact storage.
    pub const EXACT: TruncationLevel = TruncationLevel(0);

    /// Bytes stored per `f64` value.
    pub fn stored_bytes(self) -> usize {
        8 - self.0.min(6) as usize
    }

    /// Worst-case relative error bound for normalized doubles: dropping
    /// `8k` mantissa bits loses at most `2^(8k-52)` of the value.
    pub fn relative_error_bound(self) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            2f64.powi(8 * self.0.min(6) as i32 - 52)
        }
    }
}

/// Decides the truncation level for an atom: approximable FP data may be
/// truncated to `requested`; everything else is stored exactly.
pub fn level_for(attrs: &AtomAttributes, requested: TruncationLevel) -> TruncationLevel {
    let fp = matches!(
        attrs.data_type(),
        Some(DataType::Float32) | Some(DataType::Float64)
    );
    if fp && attrs.props().contains(DataProps::APPROXIMABLE) {
        requested
    } else {
        TruncationLevel::EXACT
    }
}

/// Stores a slice of doubles at the given truncation level, returning the
/// (approximated values, bytes occupied).
pub fn store(values: &[f64], level: TruncationLevel) -> (Vec<f64>, usize) {
    let drop = level.0.min(6) as u32;
    let mask: u64 = if drop == 0 {
        u64::MAX
    } else {
        u64::MAX << (8 * drop)
    };
    let approx = values
        .iter()
        .map(|v| f64::from_bits(v.to_bits() & mask))
        .collect();
    (approx, values.len() * level.stored_bytes())
}

/// Maximum relative error between `exact` and `approx` (0 for empty input).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_relative_error(exact: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "mismatched lengths");
    exact
        .iter()
        .zip(approx)
        .map(|(e, a)| {
            if *e == 0.0 {
                a.abs()
            } else {
                ((e - a) / e).abs()
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::attrs::AtomAttributes;

    fn values() -> Vec<f64> {
        (1..100).map(|i| (i as f64) * 0.731 + 3.0).collect()
    }

    #[test]
    fn exact_level_is_lossless() {
        let v = values();
        let (a, bytes) = store(&v, TruncationLevel::EXACT);
        assert_eq!(a, v);
        assert_eq!(bytes, v.len() * 8);
    }

    #[test]
    fn truncation_error_within_bound_and_size_shrinks() {
        let v = values();
        for k in 1..=6u8 {
            let level = TruncationLevel(k);
            let (a, bytes) = store(&v, level);
            let err = max_relative_error(&v, &a);
            assert!(
                err <= level.relative_error_bound(),
                "k={k}: err {err:e} > bound {:e}",
                level.relative_error_bound()
            );
            assert_eq!(bytes, v.len() * (8 - k as usize));
        }
    }

    #[test]
    fn error_grows_monotonically_with_truncation() {
        let v = values();
        let mut last = 0.0;
        for k in 0..=6u8 {
            let (a, _) = store(&v, TruncationLevel(k));
            let err = max_relative_error(&v, &a);
            assert!(err >= last, "k={k}");
            last = err;
        }
    }

    #[test]
    fn only_approximable_fp_atoms_get_truncated() {
        let req = TruncationLevel(4);
        let approximable = AtomAttributes::builder()
            .data_type(DataType::Float64)
            .props(DataProps::APPROXIMABLE)
            .build();
        assert_eq!(level_for(&approximable, req), req);

        // FP but not approximable: exact.
        let exact_fp = AtomAttributes::builder()
            .data_type(DataType::Float64)
            .build();
        assert_eq!(level_for(&exact_fp, req), TruncationLevel::EXACT);

        // Approximable but integer (indices!): never truncated.
        let int = AtomAttributes::builder()
            .data_type(DataType::Int64)
            .props(DataProps::APPROXIMABLE)
            .build();
        assert_eq!(level_for(&int, req), TruncationLevel::EXACT);
    }

    #[test]
    fn zero_values_handled() {
        let v = vec![0.0, 1.0, -2.5];
        let (a, _) = store(&v, TruncationLevel(3));
        assert_eq!(a[0], 0.0);
        assert!(max_relative_error(&v, &a) < 1e-6);
    }
}
