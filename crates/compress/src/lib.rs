//! # compress-sim — per-atom cache-line compression
//!
//! Implements the "Cache/memory compression" use case of Table 1: working
//! cache-line compression algorithms (zero-RLE for sparse data,
//! Base-Delta-Immediate for pointers/indices, FPC-style word patterns) and
//! the XMem-driven selector that routes each atom's data to the matching
//! encoder via its [`CompressionPrimitive`](xmem_core::translate::CompressionPrimitive).
//!
//! ```
//! use compress_sim::{compress_with, datagen, mean_ratio};
//! use xmem_core::translate::CompressionAlgo;
//!
//! let sparse_lines = datagen::sparse(16, 42);
//! let ratio = mean_ratio(CompressionAlgo::SparseEncoding, &sparse_lines);
//! assert!(ratio > 3.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod approx;
pub mod selector;

pub use crate::algorithms::{
    bdi_decode, bdi_encode, fpc_decode, fpc_encode, zero_rle_decode, zero_rle_encode,
    CompressedSize, Line,
};
pub use crate::approx::{level_for, max_relative_error, store, TruncationLevel};
pub use crate::selector::datagen;
pub use crate::selector::{compress_with, mean_ratio};
