//! Per-atom algorithm selection: the XMem benefit for compression.
//!
//! Without XMem, a compressed cache picks one algorithm (or tries all on
//! every line — expensive in hardware). With XMem, the translator maps each
//! atom's data type and properties to the matching algorithm
//! ([`CompressionAlgo`]), so each *data structure* gets the right encoder
//! with a single-table lookup.

use crate::algorithms::{bdi_encode, fpc_encode, zero_rle_encode, CompressedSize, Line};
use xmem_core::translate::CompressionAlgo;

/// Compresses `line` using the algorithm the atom's primitive selects,
/// returning the encoded size.
///
/// * `SparseEncoding` → zero-RLE;
/// * `DeltaPointer` → BDI (falls back to FPC when deltas don't fit);
/// * `FpSpecific` → FPC (exponent/mantissa patterns hit its word classes);
/// * `Generic` → best of FPC and zero-RLE (what a general engine would try).
pub fn compress_with(algo: CompressionAlgo, line: &Line) -> CompressedSize {
    match algo {
        CompressionAlgo::SparseEncoding => zero_rle_encode(line).1,
        CompressionAlgo::DeltaPointer => bdi_encode(line)
            .map(|(_, s)| s)
            .unwrap_or_else(|| fpc_encode(line).1),
        CompressionAlgo::FpSpecific => fpc_encode(line).1,
        CompressionAlgo::Generic => {
            let a = fpc_encode(line).1;
            let b = zero_rle_encode(line).1;
            CompressedSize(a.0.min(b.0).min(64))
        }
    }
}

/// Mean compression ratio of `lines` under `algo`.
pub fn mean_ratio(algo: CompressionAlgo, lines: &[Line]) -> f64 {
    if lines.is_empty() {
        return 1.0;
    }
    let total: usize = lines.iter().map(|l| compress_with(algo, l).0.min(64)).sum();
    64.0 * lines.len() as f64 / total as f64
}

/// Synthetic line generators for the data classes Table 1 names.
pub mod datagen {
    use super::Line;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Sparse data: ~90% zero bytes.
    pub fn sparse(n: usize, seed: u64) -> Vec<Line> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                let mut l = [0u8; 64];
                for b in l.iter_mut() {
                    if splitmix(&mut s).is_multiple_of(10) {
                        *b = (splitmix(&mut s) & 0xFF) as u8;
                    }
                }
                l
            })
            .collect()
    }

    /// Pointer arrays: nearby 64-bit addresses (heap-allocated nodes).
    pub fn pointers(n: usize, seed: u64) -> Vec<Line> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                let base = 0x7F00_0000_0000u64 + (splitmix(&mut s) % (1 << 30));
                let mut l = [0u8; 64];
                for i in 0..8 {
                    let p = base + (splitmix(&mut s) % 4096) * 16;
                    l[i * 8..(i + 1) * 8].copy_from_slice(&p.to_le_bytes());
                }
                l
            })
            .collect()
    }

    /// Narrow integers stored in 32-bit slots (counters, indices).
    pub fn narrow_ints(n: usize, seed: u64) -> Vec<Line> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                let mut l = [0u8; 64];
                for i in 0..16 {
                    let v = (splitmix(&mut s) % 200) as i32 - 100;
                    l[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
                }
                l
            })
            .collect()
    }

    /// Incompressible data (already-compressed or random payloads).
    pub fn random(n: usize, seed: u64) -> Vec<Line> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                let mut l = [0u8; 64];
                for b in l.iter_mut() {
                    *b = (splitmix(&mut s) & 0xFF) as u8;
                }
                l
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmem_selection_beats_one_size_fits_all() {
        // Three structures, three data classes; XMem picks the matching
        // encoder per structure, the baseline must use one for everything.
        let sparse = datagen::sparse(64, 1);
        let ptrs = datagen::pointers(64, 2);
        let ints = datagen::narrow_ints(64, 3);

        let xmem_ratio = (mean_ratio(CompressionAlgo::SparseEncoding, &sparse)
            + mean_ratio(CompressionAlgo::DeltaPointer, &ptrs)
            + mean_ratio(CompressionAlgo::FpSpecific, &ints))
            / 3.0;

        for single in [
            CompressionAlgo::SparseEncoding,
            CompressionAlgo::DeltaPointer,
            CompressionAlgo::FpSpecific,
        ] {
            let uniform = (mean_ratio(single, &sparse)
                + mean_ratio(single, &ptrs)
                + mean_ratio(single, &ints))
                / 3.0;
            assert!(
                xmem_ratio >= uniform - 1e-9,
                "{single:?}: uniform {uniform:.2} beats selected {xmem_ratio:.2}"
            );
        }
        assert!(xmem_ratio > 2.0, "selected ratio {xmem_ratio:.2}");
    }

    #[test]
    fn selector_matches_algorithms() {
        let sparse = datagen::sparse(8, 7);
        // Sparse data under the sparse encoder beats FPC noticeably.
        assert!(
            mean_ratio(CompressionAlgo::SparseEncoding, &sparse)
                > mean_ratio(CompressionAlgo::FpSpecific, &sparse) * 0.9
        );
        let ptrs = datagen::pointers(8, 8);
        assert!(mean_ratio(CompressionAlgo::DeltaPointer, &ptrs) > 1.5);
    }

    #[test]
    fn random_data_never_expands_in_accounting() {
        let rnd = datagen::random(32, 9);
        for algo in [
            CompressionAlgo::Generic,
            CompressionAlgo::SparseEncoding,
            CompressionAlgo::DeltaPointer,
            CompressionAlgo::FpSpecific,
        ] {
            let r = mean_ratio(algo, &rnd);
            assert!(r >= 0.9, "{algo:?}: ratio {r}");
        }
    }

    #[test]
    fn empty_input_ratio_is_one() {
        assert_eq!(mean_ratio(CompressionAlgo::Generic, &[]), 1.0);
    }
}
