//! Cache-line compression algorithms.
//!
//! Table 1 of the paper ("Cache/memory compression") argues XMem "enables
//! using a different compression algorithm for each data structure based on
//! data type and data properties: sparse data encodings, FP-specific
//! compression, delta-based compression for pointers". This module
//! implements working encoders/decoders for each family:
//!
//! * [`zero_rle_encode`] — zero run-length encoding for sparse data;
//! * [`bdi_encode`] — Base-Delta-Immediate (Pekhimenko et al.), the delta encoding
//!   suited to pointers and indices;
//! * [`fpc_encode`] — Frequent-Pattern-Compression-style word patterns, effective
//!   on narrow integers and common FP layouts.
//!
//! Every encoder returns the compressed byte size; every algorithm has a
//! decoder, and round-tripping is tested (including property tests), so the
//! reported sizes are honest.

/// A 64-byte cache line.
pub type Line = [u8; 64];

/// Compressed-size result: the byte count the line occupies after encoding
/// (at most 64 plus small metadata, capped at 64 + 1 tag byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedSize(pub usize);

impl CompressedSize {
    /// Compression ratio (original / compressed); ≥ 1.0 means it shrank.
    pub fn ratio(self) -> f64 {
        64.0 / self.0 as f64
    }
}

// ───────────────────────── zero run-length ─────────────────────────────

/// Encodes a line as (run-of-zeros, literal byte) pairs.
///
/// Format: sequence of `(zero_run_len: u8, literal: u8)` pairs; a trailing
/// run of zeros is encoded as `(len, 0)`. Worst case 2× expansion, clamped
/// to 65 (uncompressed + tag).
pub fn zero_rle_encode(line: &Line) -> (Vec<u8>, CompressedSize) {
    let mut out = Vec::with_capacity(16);
    let mut i = 0;
    while i < 64 {
        let mut run = 0u8;
        while i < 64 && line[i] == 0 && run < 255 {
            run += 1;
            i += 1;
        }
        if i < 64 {
            out.push(run);
            out.push(line[i]);
            i += 1;
        } else {
            out.push(run);
            out.push(0);
        }
    }
    let size = out.len().min(65);
    (out, CompressedSize(size))
}

/// Decodes a [`zero_rle_encode`] stream back to a line.
pub fn zero_rle_decode(data: &[u8]) -> Line {
    let mut line = [0u8; 64];
    let mut pos = 0usize;
    let mut it = data.chunks_exact(2);
    for pair in &mut it {
        let run = pair[0] as usize;
        pos += run;
        if pos < 64 {
            line[pos] = pair[1];
            pos += 1;
        }
    }
    line
}

// ───────────────────────── base-delta-immediate ────────────────────────

/// Tries BDI with 8-byte values and delta widths of 1, 2, and 4 bytes.
///
/// Layout: `[delta_width: u8][base: 8B][deltas: 8 × width]`. Returns the
/// best encoding, or `None` if no width covers all deltas.
pub fn bdi_encode(line: &Line) -> Option<(Vec<u8>, CompressedSize)> {
    let words: Vec<i64> = line
        .chunks_exact(8)
        // simlint: allow(unwrap, reason = "chunks_exact(8) yields exactly 8 bytes; conversion is infallible")
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let base = words[0];
    for width in [1usize, 2, 4] {
        let (lo, hi) = match width {
            1 => (i8::MIN as i64, i8::MAX as i64),
            2 => (i16::MIN as i64, i16::MAX as i64),
            _ => (i32::MIN as i64, i32::MAX as i64),
        };
        if words
            .iter()
            .all(|&w| (lo..=hi).contains(&(w.wrapping_sub(base))))
        {
            let mut out = Vec::with_capacity(9 + 8 * width);
            out.push(width as u8);
            out.extend_from_slice(&base.to_le_bytes());
            for &w in &words {
                let d = w.wrapping_sub(base);
                out.extend_from_slice(&d.to_le_bytes()[..width]);
            }
            let size = out.len();
            return Some((out, CompressedSize(size)));
        }
    }
    None
}

/// Decodes a [`bdi_encode`] stream.
pub fn bdi_decode(data: &[u8]) -> Line {
    let width = data[0] as usize;
    // simlint: allow(unwrap, reason = "the 8-byte slice [1..9] always converts; short input would have panicked on indexing")
    let base = i64::from_le_bytes(data[1..9].try_into().expect("base"));
    let mut line = [0u8; 64];
    for (i, chunk) in data[9..].chunks_exact(width).enumerate().take(8) {
        let mut d = [0u8; 8];
        d[..width].copy_from_slice(chunk);
        // sign extend
        if chunk[width - 1] & 0x80 != 0 {
            for b in d[width..].iter_mut() {
                *b = 0xFF;
            }
        }
        let delta = i64::from_le_bytes(d);
        let w = base.wrapping_add(delta);
        line[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
    }
    line
}

// ───────────────────────── frequent patterns ───────────────────────────

/// FPC-style per-32-bit-word patterns.
///
/// Each word gets a 3-bit tag (stored as a byte here for simplicity) and a
/// variable payload: all-zero (0B), sign-extended 8-bit (1B),
/// sign-extended 16-bit (2B), upper half zero (2B), repeated bytes (1B),
/// or uncompressed (4B).
pub fn fpc_encode(line: &Line) -> (Vec<u8>, CompressedSize) {
    let mut out = Vec::with_capacity(32);
    let mut payload_bits = 0usize;
    for chunk in line.chunks_exact(4) {
        // simlint: allow(unwrap, reason = "chunks_exact(4) yields exactly 4 bytes; conversion is infallible")
        let w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        let s = w as i32;
        if w == 0 {
            out.push(0);
            payload_bits += 3;
        } else if (-128..=127).contains(&s) {
            out.push(1);
            out.push(w as u8);
            payload_bits += 3 + 8;
        } else if (-32768..=32767).contains(&s) {
            out.push(2);
            out.extend_from_slice(&(w as u16).to_le_bytes());
            payload_bits += 3 + 16;
        } else if w & 0xFFFF_0000 == 0 {
            out.push(3);
            out.extend_from_slice(&(w as u16).to_le_bytes());
            payload_bits += 3 + 16;
        } else if chunk.iter().all(|&b| b == chunk[0]) {
            out.push(4);
            out.push(chunk[0]);
            payload_bits += 3 + 8;
        } else {
            out.push(5);
            out.extend_from_slice(chunk);
            payload_bits += 3 + 32;
        }
    }
    // Size accounting uses the bit-packed size FPC would achieve.
    let size = payload_bits.div_ceil(8).min(65);
    (out, CompressedSize(size))
}

/// Decodes an [`fpc_encode`] stream.
pub fn fpc_decode(data: &[u8]) -> Line {
    let mut line = [0u8; 64];
    let mut pos = 0usize;
    let mut word = 0usize;
    while word < 16 && pos < data.len() {
        let tag = data[pos];
        pos += 1;
        let w: u32 = match tag {
            0 => 0,
            1 => {
                let v = data[pos] as i8 as i32 as u32;
                pos += 1;
                v
            }
            2 => {
                let v = i16::from_le_bytes([data[pos], data[pos + 1]]) as i32 as u32;
                pos += 2;
                v
            }
            3 => {
                let v = u16::from_le_bytes([data[pos], data[pos + 1]]) as u32;
                pos += 2;
                v
            }
            4 => {
                let b = data[pos];
                pos += 1;
                u32::from_le_bytes([b, b, b, b])
            }
            _ => {
                // simlint: allow(unwrap, reason = "4-byte slice always converts; short input would have panicked on indexing")
                let v = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("payload"));
                pos += 4;
                v
            }
        };
        line[word * 4..(word + 1) * 4].copy_from_slice(&w.to_le_bytes());
        word += 1;
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_line() -> Line {
        let mut l = [0u8; 64];
        l[7] = 3;
        l[40] = 9;
        l
    }

    fn pointer_line() -> Line {
        // Eight nearby heap pointers.
        let mut l = [0u8; 64];
        for i in 0..8u64 {
            let p: u64 = 0x7F00_1234_5000 + i * 64;
            l[i as usize * 8..(i as usize + 1) * 8].copy_from_slice(&p.to_le_bytes());
        }
        l
    }

    #[test]
    fn zero_rle_roundtrip_and_shrinks_sparse() {
        let line = sparse_line();
        let (enc, size) = zero_rle_encode(&line);
        assert_eq!(zero_rle_decode(&enc), line);
        assert!(size.0 < 10, "sparse line compressed to {}", size.0);
        assert!(size.ratio() > 6.0);
    }

    #[test]
    fn zero_rle_roundtrip_dense() {
        let line: Line = std::array::from_fn(|i| (i as u8).wrapping_mul(37) | 1);
        let (enc, size) = zero_rle_encode(&line);
        assert_eq!(zero_rle_decode(&enc), line);
        assert!(size.0 >= 64, "dense data must not 'compress': {}", size.0);
    }

    #[test]
    fn bdi_roundtrip_pointers() {
        let line = pointer_line();
        let (enc, size) = bdi_encode(&line).expect("pointers are BDI friendly");
        assert_eq!(bdi_decode(&enc), line);
        assert!(size.0 <= 9 + 16, "pointer line compressed to {}", size.0);
    }

    #[test]
    fn bdi_rejects_uncorrelated_data() {
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(97).wrapping_add(13);
        }
        line[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(bdi_encode(&line).is_none());
    }

    #[test]
    fn fpc_roundtrip_small_ints() {
        let mut line = [0u8; 64];
        for i in 0..16 {
            let v: i32 = (i as i32) - 8; // small signed values
            line[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        let (enc, size) = fpc_encode(&line);
        assert_eq!(fpc_decode(&enc), line);
        assert!(size.0 < 30, "small ints compressed to {}", size.0);
    }

    #[test]
    fn fpc_roundtrip_random_words() {
        let mut line = [0u8; 64];
        let mut x = 0xDEADBEEFu64;
        for b in line.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        let (enc, size) = fpc_encode(&line);
        assert_eq!(fpc_decode(&enc), line);
        assert!(size.0 >= 64, "random data should not compress: {}", size.0);
    }

    #[test]
    fn ratio_arithmetic() {
        assert!((CompressedSize(16).ratio() - 4.0).abs() < 1e-12);
        assert!((CompressedSize(64).ratio() - 1.0).abs() < 1e-12);
    }
}
