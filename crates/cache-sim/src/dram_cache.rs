//! DRAM cache management — Table 1's "DRAM cache management" use case.
//!
//! "(i) Helps avoid cache thrashing by knowing working set size \[44\];
//! (ii) Better DRAM cache management via reuse behavior and access
//! intensity information."
//!
//! The model: a large in-package DRAM cache (L4) in front of slow far
//! memory. Without semantics, the cache inserts everything and a working
//! set larger than its capacity thrashes it for everyone. With XMem, the
//! cache *bypasses* atoms whose working-set size (known from the AMU
//! mapping) exceeds what it could ever retain, preserving hits for data
//! that does fit.

use crate::cache::{Cache, CacheStats, InsertPriority};
use crate::config::{CacheConfig, ReplacementPolicy};

/// Configuration of the DRAM cache stage.
#[derive(Debug, Clone, Copy)]
pub struct DramCacheConfig {
    /// Cache geometry (capacity is the knob that matters).
    pub cache: CacheConfig,
    /// Hit latency (in-package DRAM).
    pub hit_latency: u64,
    /// Far-memory latency (off-package DRAM/NVM).
    pub miss_latency: u64,
    /// Bypass atoms whose working set exceeds this fraction of capacity
    /// (XMem mode only).
    pub bypass_ws_fraction: f64,
}

impl Default for DramCacheConfig {
    fn default() -> Self {
        DramCacheConfig {
            cache: CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 0,
                policy: ReplacementPolicy::Lru,
            },
            hit_latency: 90,
            miss_latency: 400,
            bypass_ws_fraction: 1.0,
        }
    }
}

/// Statistics including bypass decisions.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramCacheStats {
    /// Accesses that bypassed the cache (served directly by far memory).
    pub bypassed: u64,
    /// Total latency accumulated.
    pub total_latency: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl DramCacheStats {
    /// Mean access latency.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }
}

/// The DRAM cache stage.
#[derive(Debug)]
pub struct DramCache {
    config: DramCacheConfig,
    cache: Cache,
    stats: DramCacheStats,
}

impl DramCache {
    /// Creates an empty DRAM cache.
    pub fn new(config: DramCacheConfig) -> Self {
        DramCache {
            cache: Cache::new(config.cache),
            stats: DramCacheStats::default(),
            config,
        }
    }

    /// Serves one access. `working_set` is the accessing atom's mapped
    /// size when known (the XMem hint, from
    /// [`AtomManagementUnit::mapped_bytes`]); `None` reproduces the
    /// semantics-blind baseline.
    ///
    /// [`AtomManagementUnit::mapped_bytes`]: xmem_core::amu::AtomManagementUnit::mapped_bytes
    pub fn serve(&mut self, addr: u64, working_set: Option<u64>) -> u64 {
        self.stats.accesses += 1;
        let bypass = match working_set {
            Some(ws) => {
                ws as f64 > self.config.cache.size_bytes as f64 * self.config.bypass_ws_fraction
            }
            None => false,
        };
        if bypass {
            self.stats.bypassed += 1;
            self.stats.total_latency += self.config.miss_latency;
            return self.config.miss_latency;
        }
        let lat = if self.cache.probe(addr, false) {
            self.config.hit_latency
        } else {
            self.cache.fill(
                addr & !(self.config.cache.line_bytes - 1),
                false,
                InsertPriority::Normal,
            );
            self.config.miss_latency
        };
        self.stats.total_latency += lat;
        lat
    }

    /// Underlying cache statistics (hits are only meaningful for
    /// non-bypassed traffic).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Stage statistics.
    pub fn stats(&self) -> DramCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interleave a giant streaming working set with a small hot one;
    /// measure the hot structure's latency with and without the XMem
    /// working-set hint.
    fn run(with_hint: bool) -> (f64, DramCacheStats) {
        let mut dc = DramCache::new(DramCacheConfig::default());
        let cap = 1u64 << 20;
        let huge_ws = 16 * cap; // streams through, 16x capacity
        let hot_ws = cap / 4; // genuinely cacheable
        let mut hot_latency = 0u64;
        let mut hot_accesses = 0u64;
        for i in 0..400_000u64 {
            if i % 8 != 7 {
                // the stream walks its huge buffer (7 of 8 accesses)
                let addr = (i * 64) % huge_ws;
                let hint = with_hint.then_some(huge_ws);
                dc.serve(0x1000_0000 + addr, hint);
            } else {
                let addr = ((i * 2654435761) % hot_ws) & !63;
                let hint = with_hint.then_some(hot_ws);
                hot_latency += dc.serve(addr, hint);
                hot_accesses += 1;
            }
        }
        (hot_latency as f64 / hot_accesses as f64, dc.stats())
    }

    #[test]
    fn working_set_hint_prevents_thrashing() {
        let (baseline_hot, base_stats) = run(false);
        let (xmem_hot, xmem_stats) = run(true);
        assert_eq!(base_stats.bypassed, 0);
        assert!(
            xmem_stats.bypassed > 300_000,
            "stream bypasses: {}",
            xmem_stats.bypassed
        );
        assert!(
            xmem_hot < baseline_hot * 0.75,
            "hot latency {xmem_hot:.0} vs baseline {baseline_hot:.0}"
        );
    }

    #[test]
    fn small_working_sets_never_bypass() {
        let mut dc = DramCache::new(DramCacheConfig::default());
        let first = dc.serve(0, Some(64 << 10));
        let second = dc.serve(0, Some(64 << 10));
        assert_eq!(first, dc.config.miss_latency);
        assert_eq!(second, dc.config.hit_latency);
        assert_eq!(dc.stats().bypassed, 0);
    }

    #[test]
    fn baseline_ignores_hints_entirely() {
        let mut dc = DramCache::new(DramCacheConfig::default());
        for i in 0..1000u64 {
            dc.serve(i * 64, None);
        }
        assert_eq!(dc.stats().bypassed, 0);
        assert_eq!(dc.stats().accesses, 1000);
    }
}
