//! Hardware prefetchers.
//!
//! The baseline system of Table 3 uses a multi-stride prefetcher at L3
//! (16 concurrent strides, after \[33\]); XMem replaces its *policy* with the
//! expressed access pattern of pinned atoms (§5.2(4)) — that logic lives in
//! [`crate::hierarchy`], driven by the per-atom
//! [`PrefetcherPrimitive`](xmem_core::translate::PrefetcherPrimitive) PAT.

/// A detected prefetch candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Address to prefetch (line-aligned by the consumer).
    pub addr: u64,
}

/// Statistics for a prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetches issued to memory.
    pub issued: u64,
    /// Prefetched lines that were later demanded (usefulness).
    pub useful: u64,
}

impl PrefetchStats {
    /// Fraction of issued prefetches that were useful.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }

    /// Exports counters and derived metrics for the report sinks.
    pub fn kv(&self) -> cpu_sim::kv::KvPairs {
        vec![
            ("issued", self.issued.into()),
            ("useful", self.useful.into()),
            ("accuracy", self.accuracy().into()),
        ]
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    /// Region tag (page index) this stream tracks.
    tag: u64,
    /// Last accessed line-granular address in the region.
    last_addr: u64,
    /// Detected stride in bytes (line granular).
    stride: i64,
    /// Confidence in the stride (saturating).
    confidence: u8,
    /// LRU stamp for entry replacement.
    lru: u64,
    valid: bool,
}

/// A multi-stride prefetcher tracking up to `streams` concurrent strided
/// streams, each identified by its 4 KB region.
///
/// Training: on each access, compute the delta from the previous access in
/// the same region. Two consecutive equal deltas make the stream confident;
/// confident streams prefetch `degree` strides ahead on every access.
///
/// # Examples
///
/// ```
/// use cache_sim::prefetch::MultiStridePrefetcher;
///
/// let mut pf = MultiStridePrefetcher::new(16, 2);
/// assert!(pf.train(0x1000).is_empty());   // first touch
/// assert!(pf.train(0x1040).is_empty());   // stride candidate
/// let reqs = pf.train(0x1080);            // stride confirmed
/// assert_eq!(reqs[0].addr, 0x10c0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiStridePrefetcher {
    entries: Vec<StreamEntry>,
    degree: usize,
    clock: u64,
    stats: PrefetchStats,
}

/// Region size used to identify streams.
const REGION_BYTES: u64 = 4096;
/// Confidence needed before prefetching (a delta that repeats once —
/// i.e. two consecutive equal deltas — makes the stream confident).
const CONF_THRESHOLD: u8 = 1;
const CONF_MAX: u8 = 7;

impl MultiStridePrefetcher {
    /// Creates a prefetcher with `streams` stream slots issuing `degree`
    /// prefetches per trigger. Table 3 uses 16 streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `degree` is zero.
    pub fn new(streams: usize, degree: usize) -> Self {
        assert!(streams > 0, "need at least one stream");
        assert!(degree > 0, "degree must be non-zero");
        MultiStridePrefetcher {
            entries: vec![StreamEntry::default(); streams],
            degree,
            clock: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// Observes a demand access and returns the prefetches to issue.
    pub fn train(&mut self, addr: u64) -> Vec<PrefetchRequest> {
        self.clock += 1;
        let clock = self.clock;
        let region = addr / REGION_BYTES;
        let degree = self.degree;

        let slot = match self.entries.iter().position(|e| e.valid && e.tag == region) {
            Some(i) => i,
            None => {
                // Allocate the LRU slot for this new region.
                let i = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    // simlint: allow(unwrap, reason = "the stream table is constructed non-empty")
                    .expect("non-empty table");
                self.entries[i] = StreamEntry {
                    tag: region,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                    lru: clock,
                    valid: true,
                };
                return Vec::new();
            }
        };

        let entry = &mut self.entries[slot];
        entry.lru = clock;
        let delta = addr as i64 - entry.last_addr as i64;
        entry.last_addr = addr;
        if delta == 0 {
            return Vec::new();
        }
        if delta == entry.stride {
            entry.confidence = (entry.confidence + 1).min(CONF_MAX);
        } else {
            entry.stride = delta;
            entry.confidence = 0;
            return Vec::new();
        }
        if entry.confidence < CONF_THRESHOLD {
            return Vec::new();
        }
        let stride = entry.stride;
        let mut reqs = Vec::with_capacity(degree);
        for k in 1..=degree as i64 {
            let target = addr as i64 + stride * k;
            if target >= 0 {
                reqs.push(PrefetchRequest {
                    addr: target as u64,
                });
            }
        }
        self.stats.issued += reqs.len() as u64;
        reqs
    }

    /// Records that a previously prefetched line was demanded.
    pub fn record_useful(&mut self) {
        self.stats.useful += 1;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Clears all streams (context switch).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride() {
        let mut pf = MultiStridePrefetcher::new(4, 2);
        pf.train(0);
        pf.train(64);
        let reqs = pf.train(128);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].addr, 192);
        assert_eq!(reqs[1].addr, 256);
    }

    #[test]
    fn detects_negative_stride() {
        let mut pf = MultiStridePrefetcher::new(4, 1);
        pf.train(1024);
        pf.train(960);
        let reqs = pf.train(896);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, 832);
    }

    #[test]
    fn tracks_concurrent_streams() {
        let mut pf = MultiStridePrefetcher::new(4, 1);
        // Two interleaved streams in different regions.
        let base_a = 0u64;
        let base_b = 1 << 20;
        for i in 0..4u64 {
            pf.train(base_a + i * 64);
            pf.train(base_b + i * 128);
        }
        let ra = pf.train(base_a + 4 * 64);
        let rb = pf.train(base_b + 4 * 128);
        assert_eq!(ra[0].addr, base_a + 5 * 64);
        assert_eq!(rb[0].addr, base_b + 5 * 128);
    }

    #[test]
    fn random_pattern_prefetches_nothing() {
        let mut pf = MultiStridePrefetcher::new(16, 2);
        let mut issued = 0;
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            issued += pf.train((x >> 20) & 0xFFFF_FFC0).len();
        }
        // A tiny number of accidental matches is tolerable.
        assert!(issued < 10, "issued {issued}");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = MultiStridePrefetcher::new(4, 1);
        pf.train(0);
        pf.train(64);
        assert!(!pf.train(128).is_empty());
        // Change the stride: the new delta must repeat once before
        // prefetching resumes.
        assert!(pf.train(128 + 256).is_empty());
        assert!(!pf.train(128 + 512).is_empty());
    }

    #[test]
    fn stream_eviction_lru() {
        let mut pf = MultiStridePrefetcher::new(2, 1);
        pf.train(0); // region 0
        pf.train(1 << 13); // region 2
        pf.train(64); // touch region 0
        pf.train(1 << 20); // region X evicts region 2
                           // Region 0 still trained.
        pf.train(128);
        assert!(!pf.train(192).is_empty());
    }

    #[test]
    fn accuracy_accounting() {
        let mut pf = MultiStridePrefetcher::new(4, 1);
        pf.train(0);
        pf.train(64);
        pf.train(128);
        pf.record_useful();
        assert!(pf.stats().accuracy() > 0.99);
    }

    #[test]
    fn flush_forgets_streams() {
        let mut pf = MultiStridePrefetcher::new(4, 1);
        pf.train(0);
        pf.train(64);
        pf.flush();
        assert!(pf.train(128).is_empty());
        assert!(pf.train(192).is_empty());
    }
}
