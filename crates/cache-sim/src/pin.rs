//! The greedy atom-pinning algorithm of §5.2(2).
//!
//! "The algorithm takes the active atoms in all the cores (each time there
//! is a change in active atoms), and sorts the atoms based on the reuse
//! values. Starting from the atom with the highest reuse, the cache decides
//! if it has enough space to keep the data specified by each atom. When the
//! total data size kept in the cache reaches the pinning size limit (we use
//! 75% of the cache size so the cache still has space to handle other
//! data), the algorithm stops and returns the list of atoms to be pinned."

use xmem_core::atom::AtomId;

/// One candidate atom for pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinCandidate {
    /// The atom.
    pub atom: AtomId,
    /// Its reuse value (from the cache PAT).
    pub reuse: u8,
    /// Its current working-set size (bytes mapped, from the AMU).
    pub size_bytes: u64,
}

/// Fraction of cache capacity available for pinning (the paper's 75%).
pub const PIN_FRACTION: f64 = 0.75;

/// Runs the greedy algorithm, returning the atoms to pin (highest reuse
/// first). Candidates with zero reuse are never pinned.
///
/// Atoms are considered in descending reuse order; an atom that does not fit
/// in the remaining budget stops the scan (greedy prefix, per the paper's
/// "the algorithm stops"), with one refinement: an atom *larger than the
/// whole budget on its own* is partially pinnable in hardware (the per-set
/// 75% cap does the limiting), so the first atom is always accepted.
///
/// # Examples
///
/// ```
/// use cache_sim::pin::{select_pinned, PinCandidate};
/// use xmem_core::atom::AtomId;
///
/// let candidates = [
///     PinCandidate { atom: AtomId::new(0), reuse: 200, size_bytes: 512 << 10 },
///     PinCandidate { atom: AtomId::new(1), reuse: 100, size_bytes: 512 << 10 },
///     PinCandidate { atom: AtomId::new(2), reuse: 50,  size_bytes: 512 << 10 },
/// ];
/// // 1 MB cache → 768 KB budget: the first atom fits, the second does not.
/// let pinned = select_pinned(&candidates, 1 << 20);
/// assert_eq!(pinned, vec![AtomId::new(0)]);
/// ```
pub fn select_pinned(candidates: &[PinCandidate], cache_bytes: u64) -> Vec<AtomId> {
    let budget = (cache_bytes as f64 * PIN_FRACTION) as u64;
    let mut sorted: Vec<&PinCandidate> = candidates.iter().filter(|c| c.reuse > 0).collect();
    // Sort by reuse descending; tie-break on atom ID for determinism.
    sorted.sort_by(|a, b| b.reuse.cmp(&a.reuse).then(a.atom.cmp(&b.atom)));

    let mut pinned = Vec::new();
    let mut used = 0u64;
    for c in sorted {
        if used + c.size_bytes <= budget {
            used += c.size_bytes;
            pinned.push(c.atom);
        } else if pinned.is_empty() {
            // Oversized top atom: pin it anyway; the per-set cap limits how
            // much of it actually stays (this is what mitigates thrashing
            // when the tile exceeds the available cache, §5.1).
            pinned.push(c.atom);
            break;
        } else {
            break;
        }
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u8, reuse: u8, kb: u64) -> PinCandidate {
        PinCandidate {
            atom: AtomId::new(id),
            reuse,
            size_bytes: kb << 10,
        }
    }

    #[test]
    fn highest_reuse_first() {
        let pinned = select_pinned(
            &[cand(0, 10, 100), cand(1, 200, 100), cand(2, 50, 100)],
            1 << 20,
        );
        assert_eq!(pinned, vec![AtomId::new(1), AtomId::new(2), AtomId::new(0)]);
    }

    #[test]
    fn stops_at_budget() {
        // Budget = 768 KB of a 1 MB cache.
        let pinned = select_pinned(
            &[cand(0, 200, 500), cand(1, 100, 500), cand(2, 50, 100)],
            1 << 20,
        );
        // 500 fits; 500 more would exceed 768 → stop (greedy prefix).
        assert_eq!(pinned, vec![AtomId::new(0)]);
    }

    #[test]
    fn zero_reuse_never_pinned() {
        let pinned = select_pinned(&[cand(0, 0, 10), cand(1, 0, 10)], 1 << 20);
        assert!(pinned.is_empty());
    }

    #[test]
    fn oversized_single_atom_still_pinned() {
        // A 4 MB tile against a 1 MB cache: pin it (partially retained by
        // the per-set cap).
        let pinned = select_pinned(&[cand(0, 200, 4 << 10)], 1 << 20);
        assert_eq!(pinned, vec![AtomId::new(0)]);
    }

    #[test]
    fn deterministic_tie_break() {
        let a = select_pinned(&[cand(3, 7, 10), cand(1, 7, 10)], 1 << 20);
        let b = select_pinned(&[cand(1, 7, 10), cand(3, 7, 10)], 1 << 20);
        assert_eq!(a, b);
        assert_eq!(a[0], AtomId::new(1));
    }

    #[test]
    fn empty_candidates() {
        assert!(select_pinned(&[], 1 << 20).is_empty());
    }
}
