//! The MESI snooping protocol: state machine and shared-bus model.
//!
//! Private caches on a snooping bus keep each line in one of four states —
//! **M**odified (sole dirty copy), **E**xclusive (sole clean copy),
//! **S**hared (one of possibly many clean copies), **I**nvalid — and
//! broadcast their misses so every peer can react. This module holds the
//! *pure* protocol (the transition tables below, which the exhaustive
//! enumeration test in `crates/sim/tests/coherence.rs` pins case by case)
//! and the timed bus ([`SnoopBus`]): arbitration latency, cache-to-cache
//! transfer timing, and traffic counters. The engine that drives it over
//! real caches lives in `xmem_sim::coherence`.
//!
//! # The transition tables
//!
//! Requester side ([`local_next`]) — what a core's own access does to its
//! line, and which bus transaction it must broadcast first:
//!
//! | state | read            | write            |
//! |-------|-----------------|------------------|
//! | I     | BusRd → E or S¹ | BusRdX → M       |
//! | S     | hit (S)         | BusUpgr → M      |
//! | E     | hit (E)         | silent upgrade → M |
//! | M     | hit (M)         | hit (M)          |
//!
//! ¹ E when no other cache holds the line, S otherwise.
//!
//! Snooper side ([`snoop_transition`]) — how a cache holding the line
//! reacts to a peer's broadcast:
//!
//! | state | BusRd                  | BusRdX                  | BusUpgr      |
//! |-------|------------------------|-------------------------|--------------|
//! | M     | → S, flush + supply    | → I, flush + supply     | *unreachable*² |
//! | E     | → S, supply (clean)    | → I, supply (clean)     | *unreachable*² |
//! | S     | → S                    | → I                     | → I          |
//! | I     | → I                    | → I                     | → I          |
//!
//! ² A `BusUpgr` is only broadcast by a core holding the line in S; under
//! the SWMR invariant no peer can then hold it in M or E, so these pairs
//! are dead states. [`snoop_transition`] returns `None` for them and the
//! enumeration test asserts exactly these two pairs are unreachable.

use std::fmt;

/// The MESI state of one cache line (also used as the lane encoding in
/// [`crate::cache::Cache`]; `Invalid` is 0 so a zeroed lane is all-invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum MesiState {
    /// No valid copy.
    #[default]
    Invalid = 0,
    /// One of possibly many clean copies; memory is up to date.
    Shared = 1,
    /// The only cached copy, clean; memory is up to date.
    Exclusive = 2,
    /// The only cached copy, dirty; memory is stale.
    Modified = 3,
}

impl MesiState {
    /// Decodes a lane byte (inverse of `self as u8`).
    pub const fn from_lane(v: u8) -> MesiState {
        match v {
            1 => MesiState::Shared,
            2 => MesiState::Exclusive,
            3 => MesiState::Modified,
            _ => MesiState::Invalid,
        }
    }

    /// Whether this state permits a local write without a bus transaction.
    pub const fn writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether this is the sole-copy half of the SWMR invariant (M or E).
    pub const fn exclusive(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MesiState::Invalid => "I",
            MesiState::Shared => "S",
            MesiState::Exclusive => "E",
            MesiState::Modified => "M",
        })
    }
}

/// A broadcast bus transaction (the events a snooper can observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Read miss: the requester wants a readable copy.
    Rd,
    /// Write miss: the requester wants the sole writable copy.
    RdX,
    /// Write hit on a Shared line: invalidate peers, no data needed.
    Upgr,
}

/// What a snooping cache must do alongside its state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// Nothing beyond the state change.
    None,
    /// Supply the (clean) line cache-to-cache; memory already has it.
    Supply,
    /// Write the dirty line back to memory *and* supply it cache-to-cache.
    FlushSupply,
}

/// Requester-side transition: `(next state, bus transaction to broadcast)`
/// for an access in `state`. `others` reports whether any peer holds the
/// line (it only matters for the I-read → E/S split).
///
/// Total over all `(state, is_write, others)` triples; the enumeration
/// test asserts every cell of the table in the module docs.
pub const fn local_next(
    state: MesiState,
    is_write: bool,
    others: bool,
) -> (MesiState, Option<BusOp>) {
    match (state, is_write) {
        (MesiState::Invalid, false) => {
            if others {
                (MesiState::Shared, Some(BusOp::Rd))
            } else {
                (MesiState::Exclusive, Some(BusOp::Rd))
            }
        }
        (MesiState::Invalid, true) => (MesiState::Modified, Some(BusOp::RdX)),
        (MesiState::Shared, false) => (MesiState::Shared, None),
        (MesiState::Shared, true) => (MesiState::Modified, Some(BusOp::Upgr)),
        (MesiState::Exclusive, false) => (MesiState::Exclusive, None),
        // The silent E→M upgrade: sole clean copy becomes sole dirty copy
        // with no bus traffic at all.
        (MesiState::Exclusive, true) => (MesiState::Modified, None),
        (MesiState::Modified, _) => (MesiState::Modified, None),
    }
}

/// Snooper-side transition: the `(next state, action)` a cache holding the
/// line in `state` performs on observing `op` from a peer, or `None` for
/// the two pairs unreachable under SWMR (M/E observing a `BusUpgr` — an
/// upgrade is only sent by an S holder, which excludes any M/E peer).
pub const fn snoop_transition(state: MesiState, op: BusOp) -> Option<(MesiState, SnoopAction)> {
    match (state, op) {
        (MesiState::Modified, BusOp::Rd) => Some((MesiState::Shared, SnoopAction::FlushSupply)),
        (MesiState::Modified, BusOp::RdX) => Some((MesiState::Invalid, SnoopAction::FlushSupply)),
        (MesiState::Modified, BusOp::Upgr) => None,
        (MesiState::Exclusive, BusOp::Rd) => Some((MesiState::Shared, SnoopAction::Supply)),
        (MesiState::Exclusive, BusOp::RdX) => Some((MesiState::Invalid, SnoopAction::Supply)),
        (MesiState::Exclusive, BusOp::Upgr) => None,
        (MesiState::Shared, BusOp::Rd) => Some((MesiState::Shared, SnoopAction::None)),
        (MesiState::Shared, BusOp::RdX) => Some((MesiState::Invalid, SnoopAction::None)),
        (MesiState::Shared, BusOp::Upgr) => Some((MesiState::Invalid, SnoopAction::None)),
        (MesiState::Invalid, _) => Some((MesiState::Invalid, SnoopAction::None)),
    }
}

/// Timing parameters of the snooping bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles to win arbitration and broadcast one transaction.
    pub arb_latency: u64,
    /// Extra cycles for a cache-to-cache (M/E → requester) data transfer.
    /// Cheaper than DRAM, dearer than an L3 hit.
    pub c2c_latency: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        // Between the scaled L3 (27 cycles) and DRAM (~100+): arbitration
        // alone costs half an L3 hit; a full cache-to-cache transfer lands
        // at L3-hit-plus-bus territory.
        BusConfig {
            arb_latency: 12,
            c2c_latency: 30,
        }
    }
}

/// Traffic and timing counters of the snooping bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// `BusRd` transactions (read misses broadcast).
    pub bus_rd: u64,
    /// `BusRdX` transactions (write misses broadcast).
    pub bus_rdx: u64,
    /// `BusUpgr` transactions (S→M upgrades broadcast).
    pub bus_upgr: u64,
    /// Cache-to-cache data transfers (an M/E peer supplied the line).
    pub c2c_transfers: u64,
    /// Writebacks caused by coherence (M flushed on a snoop, or an M line
    /// evicted from a private hierarchy).
    pub writebacks: u64,
    /// Peer lines invalidated by `BusRdX`/`BusUpgr` broadcasts.
    pub invalidations: u64,
    /// Cycles requesters spent waiting for bus arbitration.
    pub stall_cycles: u64,
}

impl BusStats {
    /// Total transactions broadcast.
    pub fn transactions(&self) -> u64 {
        self.bus_rd + self.bus_rdx + self.bus_upgr
    }

    /// Exports counters for the report sinks.
    pub fn kv(&self) -> cpu_sim::kv::KvPairs {
        vec![
            ("bus_rd", self.bus_rd.into()),
            ("bus_rdx", self.bus_rdx.into()),
            ("bus_upgr", self.bus_upgr.into()),
            ("transactions", self.transactions().into()),
            ("c2c_transfers", self.c2c_transfers.into()),
            ("writebacks", self.writebacks.into()),
            ("invalidations", self.invalidations.into()),
            ("stall_cycles", self.stall_cycles.into()),
        ]
    }
}

/// The timed snooping bus: one transaction at a time, FCFS in simulated
/// time. A requester arriving while the bus is busy waits for the previous
/// transaction to drain (counted in [`BusStats::stall_cycles`]).
#[derive(Debug, Clone)]
pub struct SnoopBus {
    config: BusConfig,
    busy_until: u64,
    stats: BusStats,
}

impl SnoopBus {
    /// An idle bus.
    pub fn new(config: BusConfig) -> Self {
        SnoopBus {
            config,
            busy_until: 0,
            stats: BusStats::default(),
        }
    }

    /// The timing parameters.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Broadcasts `op` at time `now`: waits for the bus, occupies it for
    /// the arbitration slot, and returns the cycles from `now` until the
    /// broadcast is complete (wait + arbitration).
    pub fn transact(&mut self, op: BusOp, now: u64) -> u64 {
        let start = self.busy_until.max(now);
        let wait = start - now;
        self.stats.stall_cycles += wait;
        self.busy_until = start + self.config.arb_latency;
        match op {
            BusOp::Rd => self.stats.bus_rd += 1,
            BusOp::RdX => self.stats.bus_rdx += 1,
            BusOp::Upgr => self.stats.bus_upgr += 1,
        }
        wait + self.config.arb_latency
    }

    /// Extends the current transaction with a cache-to-cache data transfer
    /// and returns its latency. Call after [`SnoopBus::transact`] when an
    /// M/E peer supplies the line.
    pub fn cache_to_cache(&mut self) -> u64 {
        self.stats.c2c_transfers += 1;
        self.busy_until += self.config.c2c_latency;
        self.config.c2c_latency
    }

    /// Records a coherence writeback (snoop flush or M-line eviction).
    pub fn note_writeback(&mut self) {
        self.stats.writebacks += 1;
    }

    /// Records a peer-line invalidation.
    pub fn note_invalidation(&mut self) {
        self.stats.invalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_round_trip() {
        for st in [
            MesiState::Invalid,
            MesiState::Shared,
            MesiState::Exclusive,
            MesiState::Modified,
        ] {
            assert_eq!(MesiState::from_lane(st as u8), st);
        }
        assert_eq!(MesiState::from_lane(0xFF), MesiState::Invalid);
    }

    #[test]
    fn silent_upgrade_needs_no_bus() {
        let (next, bus) = local_next(MesiState::Exclusive, true, false);
        assert_eq!(next, MesiState::Modified);
        assert_eq!(bus, None);
    }

    #[test]
    fn bus_serializes_back_to_back_transactions() {
        let mut bus = SnoopBus::new(BusConfig {
            arb_latency: 10,
            c2c_latency: 20,
        });
        // First transaction at t=0 occupies [0, 10).
        assert_eq!(bus.transact(BusOp::Rd, 0), 10);
        // Second at t=4 waits 6, then arbitrates: 16 cycles total.
        assert_eq!(bus.transact(BusOp::RdX, 4), 16);
        assert_eq!(bus.stats().stall_cycles, 6);
        // A c2c transfer extends the occupancy.
        assert_eq!(bus.cache_to_cache(), 20);
        assert_eq!(bus.transact(BusOp::Upgr, 0), 40 + 10);
        let s = bus.stats();
        assert_eq!((s.bus_rd, s.bus_rdx, s.bus_upgr), (1, 1, 1));
        assert_eq!(s.transactions(), 3);
        assert_eq!(s.c2c_transfers, 1);
    }

    #[test]
    fn idle_bus_costs_only_arbitration() {
        let mut bus = SnoopBus::new(BusConfig::default());
        let lat = bus.transact(BusOp::Rd, 1_000_000);
        assert_eq!(lat, BusConfig::default().arb_latency);
        assert_eq!(bus.stats().stall_cycles, 0);
    }
}
