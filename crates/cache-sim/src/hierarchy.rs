//! The three-level cache hierarchy with XMem-coordinated cache management
//! and prefetching (use case 1, §5 of the paper).
//!
//! The hierarchy models the Table 3 configuration: L1 (LRU) → L2 (DRRIP) →
//! L3 (DRRIP + multi-stride prefetcher) → DRAM. Three operating modes map
//! to the paper's three evaluated systems:
//!
//! * [`XmemMode::Off`] — the **Baseline**: DRRIP everywhere, multi-stride
//!   prefetcher at L3.
//! * [`XmemMode::PrefetchOnly`] — **XMem-Pref**: DRRIP for cache
//!   management, prefetching driven by the expressed access pattern.
//! * [`XmemMode::Full`] — **XMem**: the greedy pinning algorithm keeps the
//!   high-reuse working set resident (insertion-priority + eviction
//!   protection, aged when the active-atom list changes) *and* misses to
//!   pinned atoms trigger pattern-directed prefetch.

use crate::cache::{Cache, CacheStats, Eviction, InsertPriority};
use crate::config::CacheConfig;
use crate::pin::{select_pinned, PinCandidate};
use crate::prefetch::{MultiStridePrefetcher, PrefetchStats};
use cpu_sim::batch::OpAttrs;
use dram_sim::{Dram, DramStats};
use std::collections::BTreeSet;
use xmem_core::addr::PhysAddr;
use xmem_core::amu::AtomManagementUnit;
use xmem_core::atom::AtomId;
use xmem_core::pat::Pat;
use xmem_core::translate::{CachePrimitive, PrefetcherPrimitive};

/// Which XMem mechanisms the hierarchy applies (§5.4's three systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XmemMode {
    /// Baseline: no XMem; DRRIP + multi-stride prefetching.
    #[default]
    Off,
    /// XMem-guided prefetching only; DRRIP for cache management.
    PrefetchOnly,
    /// Pinning + XMem-guided prefetching.
    Full,
}

/// Hierarchy configuration.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// L3 slice.
    pub l3: CacheConfig,
    /// Enable the baseline multi-stride prefetcher at L3 (Table 3). It is
    /// automatically disabled when `xmem` is not `Off` (XMem prefetching
    /// replaces its policy, §5.2(4)).
    pub stride_prefetcher: bool,
    /// Concurrent streams in the stride prefetcher (16 in Table 3).
    pub stride_streams: usize,
    /// Prefetch degree (lines per trigger) for the stride prefetcher.
    pub prefetch_degree: usize,
    /// Prefetch degree for XMem-guided prefetch. Guided prefetch knows the
    /// atom's exact extents, so it can run further ahead without waste
    /// (§5.1: "prefetches the rest based on the expressed access pattern").
    pub xmem_prefetch_degree: usize,
    /// XMem operating mode.
    pub xmem: XmemMode,
}

impl HierarchyConfig {
    /// The Table 3 baseline configuration.
    pub fn westmere_like() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1_westmere(),
            l2: CacheConfig::l2_westmere(),
            l3: CacheConfig::l3_westmere(),
            stride_prefetcher: true,
            stride_streams: 16,
            prefetch_degree: 2,
            xmem_prefetch_degree: 4,
            xmem: XmemMode::Off,
        }
    }

    /// Same geometry with a different XMem mode.
    pub fn with_xmem(mut self, mode: XmemMode) -> Self {
        self.xmem = mode;
        self
    }

    /// Same configuration with a different L3 capacity (Fig 5 sweep).
    pub fn with_l3_size(mut self, bytes: u64) -> Self {
        self.l3 = self.l3.with_size(bytes);
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::westmere_like()
    }
}

/// Borrowed XMem state the hierarchy consults during an access: the AMU (for
/// `ATOM_LOOKUP`) and the translated per-component primitives.
#[derive(Debug)]
pub struct XmemContext<'a> {
    /// The atom management unit (lookups go through its ALB).
    pub amu: &'a mut AtomManagementUnit,
    /// The cache's private attribute table.
    pub cache_pat: &'a Pat<CachePrimitive>,
    /// The prefetcher's private attribute table.
    pub pf_pat: &'a Pat<PrefetcherPrimitive>,
}

/// The cache hierarchy + DRAM backend.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    /// `!(l1.line_bytes - 1)`, precomputed for the per-access line align.
    line_mask: u64,
    /// Cumulative latencies to each level (L1; L1+L2; L1+L2+L3), hoisted
    /// out of the per-access path.
    l1_lat: u64,
    l2_lat: u64,
    l3_lat: u64,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    dram: Dram,
    stride_pf: Option<MultiStridePrefetcher>,
    /// Currently pinned atoms (output of the greedy algorithm).
    pinned: Vec<AtomId>,
    /// AMU epoch at the last pinning evaluation.
    last_epoch: u64,
    /// Lines prefetched but not yet demanded (bounded; for accuracy stats).
    inflight_prefetches: BTreeSet<u64>,
    xmem_pf_stats: PrefetchStats,
}

/// Cap on the prefetch-tracking set (oldest entries are simply forgotten —
/// this only affects the accuracy statistic, not behaviour).
const PF_TRACK_CAP: usize = 1 << 16;

impl Hierarchy {
    /// Creates an empty hierarchy in front of `dram`.
    pub fn new(config: HierarchyConfig, dram: Dram) -> Self {
        // The hardware stride prefetcher stays present in XMem modes: XMem
        // *supplements* dynamic mechanisms (§2.1) — guided prefetch takes
        // over only for data whose atom expresses a pattern; everything
        // else (unmapped streams) still benefits from the stride engine.
        let stride_pf = if config.stride_prefetcher {
            Some(MultiStridePrefetcher::new(
                config.stride_streams,
                config.prefetch_degree,
            ))
        } else {
            None
        };
        Hierarchy {
            line_mask: !(config.l1.line_bytes - 1),
            l1_lat: config.l1.latency,
            l2_lat: config.l1.latency + config.l2.latency,
            l3_lat: config.l1.latency + config.l2.latency + config.l3.latency,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            dram,
            stride_pf,
            pinned: Vec::new(),
            last_epoch: u64::MAX,
            inflight_prefetches: BTreeSet::new(),
            xmem_pf_stats: PrefetchStats::default(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// The L2's DRRIP policy-select counter (0 for non-DRRIP configs).
    pub fn l2_psel(&self) -> i32 {
        self.l2.psel()
    }

    /// The L3's DRRIP policy-select counter (0 for non-DRRIP configs).
    pub fn l3_psel(&self) -> i32 {
        self.l3.psel()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// The DRAM model (e.g. to inspect its mapping).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Stride-prefetcher statistics (baseline mode only).
    pub fn stride_prefetch_stats(&self) -> Option<PrefetchStats> {
        self.stride_pf.as_ref().map(|p| p.stats())
    }

    /// XMem-guided prefetch statistics.
    pub fn xmem_prefetch_stats(&self) -> PrefetchStats {
        self.xmem_pf_stats
    }

    /// Atoms currently pinned by the greedy algorithm.
    pub fn pinned_atoms(&self) -> &[AtomId] {
        &self.pinned
    }

    /// Total latency from the core to the DRAM controller.
    fn lat_to_mem(&self) -> u64 {
        self.l3_lat
    }

    /// Re-evaluates the pinned-atom set when the AMU epoch has changed
    /// (a MAP/UNMAP/ACTIVATE/DEACTIVATE occurred), aging previously pinned
    /// lines per §5.2(3).
    fn refresh_pinning(&mut self, ctx: &mut XmemContext<'_>) {
        let epoch = ctx.amu.epoch();
        if epoch == self.last_epoch {
            return;
        }
        self.last_epoch = epoch;
        if self.config.xmem != XmemMode::Full {
            return;
        }
        let candidates: Vec<PinCandidate> = ctx
            .amu
            .active_atoms()
            .into_iter()
            .filter_map(|atom| {
                let prim = ctx.cache_pat.get(atom)?;
                prim.pin_candidate.then_some(PinCandidate {
                    atom,
                    reuse: prim.reuse,
                    size_bytes: ctx.amu.mapped_bytes(atom),
                })
            })
            .collect();
        let new_pinned = select_pinned(&candidates, self.config.l3.size_bytes);
        // The mapping behind the atoms may have changed even if the pinned
        // ID set did not (a tile moved): age unconditionally on epoch change.
        self.l3.age_pinned();
        self.pinned = new_pinned;
    }

    /// Issues XMem-guided prefetches after a miss on `pa` belonging to
    /// `atom` (§5.2(4)): the next lines of the atom's data in the direction
    /// of the expressed stride, *bounded to the atom's extents* (the AMU
    /// broadcasts extent information for exactly this purpose, §4.2(4)).
    /// When the walk reaches the end of the atom it wraps to the beginning —
    /// tiles are swept repeatedly, so the wrap is the right continuation.
    fn xmem_prefetch(&mut self, pa: u64, atom: AtomId, ctx: &mut XmemContext<'_>, t_mem: u64) {
        let Some((targets, priority)) = self.xmem_prefetch_targets(pa, atom, ctx) else {
            return;
        };
        for target in targets {
            if self.l3.contains(target) {
                continue;
            }
            let _ = self.dram.serve_prefetch(target, t_mem);
            if let Some(ev) = self.l3.fill(target, false, priority) {
                self.writeback_to_dram(ev, t_mem);
            }
            self.track_prefetch(target);
            self.xmem_pf_stats.issued += 1;
        }
    }

    /// Warm-path twin of [`Hierarchy::xmem_prefetch`]: the same fills,
    /// tracking, and stats, but DRAM rows are warmed instead of timed and
    /// dirty evictions are dropped.
    fn warm_xmem_prefetch(&mut self, pa: u64, atom: AtomId, ctx: &mut XmemContext<'_>) {
        let Some((targets, priority)) = self.xmem_prefetch_targets(pa, atom, ctx) else {
            return;
        };
        for target in targets {
            if self.l3.contains(target) {
                continue;
            }
            self.dram.warm_access(target);
            let _ = self.l3.fill(target, false, priority);
            self.track_prefetch(target);
            self.xmem_pf_stats.issued += 1;
        }
    }

    /// The target walk shared by the timed and warm guided-prefetch paths:
    /// the next `xmem_prefetch_degree` lines of `atom`'s data in the
    /// direction of its expressed stride, bounded to (and wrapping around)
    /// the atom's extents.
    fn xmem_prefetch_targets(
        &self,
        pa: u64,
        atom: AtomId,
        ctx: &XmemContext<'_>,
    ) -> Option<(Vec<u64>, InsertPriority)> {
        let prim = ctx.pf_pat.get(atom)?;
        let stride = prim.stride?;
        let line = self.config.l3.line_bytes;
        let forward = stride >= 0;
        let exts = ctx.amu.extents(atom);
        if exts.is_empty() {
            return None;
        }
        let mut ei = exts
            .iter()
            .position(|e| pa >= e.start.raw() && pa < e.start.raw() + e.len)
            .unwrap_or(0);
        let mut pos = pa & !(line - 1);
        let mut targets = Vec::with_capacity(self.config.xmem_prefetch_degree);
        for _ in 0..self.config.xmem_prefetch_degree {
            if forward {
                pos += line;
                if pos >= exts[ei].start.raw() + exts[ei].len {
                    ei = (ei + 1) % exts.len();
                    pos = exts[ei].start.raw() & !(line - 1);
                }
            } else {
                let ext_start = exts[ei].start.raw() & !(line - 1);
                if pos <= ext_start {
                    ei = (ei + exts.len() - 1) % exts.len();
                    pos = (exts[ei].start.raw() + exts[ei].len - 1) & !(line - 1);
                } else {
                    pos -= line;
                }
            }
            targets.push(pos);
        }
        let priority = if self.pinned.contains(&atom) {
            InsertPriority::Pinned
        } else {
            InsertPriority::Normal
        };
        Some((targets, priority))
    }

    fn track_prefetch(&mut self, line_addr: u64) {
        if self.inflight_prefetches.len() >= PF_TRACK_CAP {
            self.inflight_prefetches.clear();
        }
        self.inflight_prefetches.insert(line_addr);
    }

    fn writeback_to_dram(&mut self, ev: Eviction, now: u64) {
        if ev.dirty {
            let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
        }
    }

    /// A dirty line evicted from an inner level lands in the next level if
    /// resident, else goes to DRAM.
    fn writeback_inner(&mut self, ev: Eviction, level: u8, now: u64) {
        if !ev.dirty {
            return;
        }
        match level {
            1 => {
                if !self.l2.set_dirty(ev.addr) && !self.l3.set_dirty(ev.addr) {
                    let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
                }
            }
            2 => {
                if !self.l3.set_dirty(ev.addr) {
                    let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
                }
            }
            _ => {
                let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
            }
        }
    }

    /// Performs one demand access, returning its latency in cycles.
    ///
    /// `xmem` supplies the AMU + PATs when the system runs with XMem
    /// enabled; `None` reproduces the baseline exactly (no lookups at all).
    ///
    /// Named `serve` to match the batched memory-path vocabulary
    /// ([`cpu_sim::batch::MemoryPath`]); the extra [`XmemContext`]
    /// parameter keeps this the one signature the whole hierarchy exposes.
    #[inline]
    pub fn serve(
        &mut self,
        pa: u64,
        is_write: bool,
        now: u64,
        xmem: Option<XmemContext<'_>>,
    ) -> u64 {
        // The dominant outcome by far — keep it inlinable at call sites and
        // push everything below L1 out of line.
        if self.l1.probe(pa, is_write) {
            return self.l1_lat;
        }
        self.serve_l1_miss(pa, is_write, now, xmem)
    }

    /// The below-L1 continuation of [`Hierarchy::serve`].
    fn serve_l1_miss(
        &mut self,
        pa: u64,
        is_write: bool,
        now: u64,
        mut xmem: Option<XmemContext<'_>>,
    ) -> u64 {
        let line_addr = pa & self.line_mask;
        let l2_lat = self.l2_lat;
        if self.l2.probe(pa, false) {
            if let Some(ev) = self.l1.fill(line_addr, is_write, InsertPriority::Normal) {
                self.writeback_inner(ev, 1, now);
            }
            return l2_lat;
        }

        // L3 territory: consult XMem state if present. One ATOM_LOOKUP per
        // L3 access — exactly the query rate the paper's ALB absorbs.
        if let Some(ctx) = xmem.as_mut() {
            if self.config.xmem != XmemMode::Off {
                self.refresh_pinning(ctx);
            }
        }
        let atom = match (&mut xmem, self.config.xmem) {
            (Some(ctx), XmemMode::Full | XmemMode::PrefetchOnly) => {
                ctx.amu.active_atom_at(PhysAddr::new(pa))
            }
            _ => None,
        };
        let l3_lat = self.l3_lat;
        let l3_hit = self.l3.probe(pa, false);

        // Baseline stride prefetcher trains on every L3 access.
        let stride_reqs = self
            .stride_pf
            .as_mut()
            .map(|pf| pf.train(pa))
            .unwrap_or_default();

        if l3_hit {
            let was_prefetched = self.inflight_prefetches.remove(&line_addr);
            if was_prefetched {
                if let Some(pf) = self.stride_pf.as_mut() {
                    pf.record_useful();
                } else {
                    self.xmem_pf_stats.useful += 1;
                }
            }
            if let Some(ev) = self.l2.fill(line_addr, false, InsertPriority::Normal) {
                self.writeback_inner(ev, 2, now);
            }
            if let Some(ev) = self.l1.fill(line_addr, is_write, InsertPriority::Normal) {
                self.writeback_inner(ev, 1, now);
            }
            // Continuation: a hit on a line the guided engine prefetched
            // keeps the stream running ahead (like the software prefetching
            // §5.4 equates XMem-Pref with), without re-scanning on every
            // ordinary hit.
            self.issue_stride_prefetches(stride_reqs, now + l3_lat);
            return l3_lat;
        }

        // L3 miss: demand fetch from DRAM.
        let t_mem = now + self.lat_to_mem();
        let dram_lat = self.dram.serve(line_addr, OpAttrs::read(), t_mem);

        // Fill the hierarchy.
        let l3_priority = match (self.config.xmem, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => InsertPriority::Pinned,
            _ => InsertPriority::Normal,
        };
        if let Some(ev) = self.l3.fill(line_addr, false, l3_priority) {
            self.writeback_to_dram(ev, t_mem);
        }
        if let Some(ev) = self.l2.fill(line_addr, false, InsertPriority::Normal) {
            self.writeback_inner(ev, 2, now);
        }
        if let Some(ev) = self.l1.fill(line_addr, is_write, InsertPriority::Normal) {
            self.writeback_inner(ev, 1, now);
        }

        // Prefetching: XMem-guided for data whose atom expresses a pattern
        // (§5.2(4)); the hardware stride engine covers everything else.
        if !self.guided_prefetch(pa, atom, &mut xmem, t_mem) {
            self.issue_stride_prefetches(stride_reqs, t_mem);
        }

        l3_lat + dram_lat
    }

    /// State-only warmup probe: walks the hierarchy with the same probes,
    /// fills, replacement updates, pinning refresh, ALB lookups, prefetcher
    /// training, and prefetch fills as [`Hierarchy::serve`], but skips
    /// everything timing-related — no latencies, no writeback traffic, and
    /// no DRAM bank/bus occupancy (only the row-buffer state is warmed).
    ///
    /// This is the functional fast-forward path of sampled execution: it
    /// keeps tags, LRU/DRRIP state, pinned-insertion decisions, the ALB,
    /// DRAM open rows, the stride prefetcher's streams, and the L3's
    /// prefetch-inserted lines (useful coverage *and* pollution) where a
    /// detailed run would have left them, so a detailed window opens
    /// against warm state. Dirty evictions are dropped rather than written
    /// back (writebacks only produce timing and traffic, neither of which
    /// exists here). Cache/ALB/prefetch counters do advance — sampled-mode
    /// raw counters are a warm+detailed mixture, and the per-window metrics
    /// are computed from deltas across detailed windows only.
    pub fn warm_access(&mut self, pa: u64, is_write: bool, mut xmem: Option<XmemContext<'_>>) {
        if self.l1.probe(pa, is_write) {
            return;
        }
        let line_addr = pa & self.line_mask;
        if self.l2.probe(pa, false) {
            let _ = self.l1.fill(line_addr, is_write, InsertPriority::Normal);
            return;
        }
        if let Some(ctx) = xmem.as_mut() {
            if self.config.xmem != XmemMode::Off {
                self.refresh_pinning(ctx);
            }
        }
        let atom = match (&mut xmem, self.config.xmem) {
            (Some(ctx), XmemMode::Full | XmemMode::PrefetchOnly) => {
                ctx.amu.active_atom_at(PhysAddr::new(pa))
            }
            _ => None,
        };
        let stride_reqs = self
            .stride_pf
            .as_mut()
            .map(|pf| pf.train(pa))
            .unwrap_or_default();
        if self.l3.probe(pa, false) {
            if self.inflight_prefetches.remove(&line_addr) {
                if let Some(pf) = self.stride_pf.as_mut() {
                    pf.record_useful();
                } else {
                    self.xmem_pf_stats.useful += 1;
                }
            }
            let _ = self.l2.fill(line_addr, false, InsertPriority::Normal);
            let _ = self.l1.fill(line_addr, is_write, InsertPriority::Normal);
            self.warm_stride_prefetches(stride_reqs);
            return;
        }
        self.dram.warm_access(line_addr);
        let l3_priority = match (self.config.xmem, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => InsertPriority::Pinned,
            _ => InsertPriority::Normal,
        };
        let _ = self.l3.fill(line_addr, false, l3_priority);
        let _ = self.l2.fill(line_addr, false, InsertPriority::Normal);
        let _ = self.l1.fill(line_addr, is_write, InsertPriority::Normal);
        if !self.warm_guided_prefetch(pa, atom, &mut xmem) {
            self.warm_stride_prefetches(stride_reqs);
        }
    }

    /// Warm-path twin of [`Hierarchy::guided_prefetch`]: same mode/atom
    /// dispatch, warm prefetch mechanics.
    fn warm_guided_prefetch(
        &mut self,
        pa: u64,
        atom: Option<AtomId>,
        xmem: &mut Option<XmemContext<'_>>,
    ) -> bool {
        match (xmem, self.config.xmem, atom) {
            (Some(ctx), XmemMode::Full, Some(a)) if self.pinned.contains(&a) => {
                self.warm_xmem_prefetch(pa, a, ctx);
                true
            }
            (Some(ctx), XmemMode::PrefetchOnly, Some(a)) => {
                let reuse = ctx.cache_pat.get(a).map(|p| p.reuse).unwrap_or(0);
                if reuse > 0 {
                    self.warm_xmem_prefetch(pa, a, ctx);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Warm-path twin of [`Hierarchy::issue_stride_prefetches`]: fills and
    /// tracks the prefetched lines, warms their DRAM rows, drops evictions.
    fn warm_stride_prefetches(&mut self, reqs: Vec<crate::prefetch::PrefetchRequest>) {
        for req in reqs {
            let target = req.addr & !(self.config.l3.line_bytes - 1);
            if self.l3.contains(target) {
                continue;
            }
            self.dram.warm_access(target);
            let _ = self.l3.fill(target, false, InsertPriority::Normal);
            self.track_prefetch(target);
        }
    }

    /// Issues XMem-guided prefetches for `pa` if its atom qualifies under
    /// the current mode; returns whether guided prefetch handled it.
    fn guided_prefetch(
        &mut self,
        pa: u64,
        atom: Option<AtomId>,
        xmem: &mut Option<XmemContext<'_>>,
        t_mem: u64,
    ) -> bool {
        match (xmem, self.config.xmem, atom) {
            (Some(ctx), XmemMode::Full, Some(a))
                // §5.2(4): accesses to *pinned* atoms drive guided prefetch.
                if self.pinned.contains(&a) => {
                    self.xmem_prefetch(pa, a, ctx, t_mem);
                    true
                }
            (Some(ctx), XmemMode::PrefetchOnly, Some(a)) => {
                // XMem-Pref: pattern-directed prefetch for any active atom
                // with expressed reuse (software-prefetch-like, §5.4).
                let reuse = ctx.cache_pat.get(a).map(|p| p.reuse).unwrap_or(0);
                if reuse > 0 {
                    self.xmem_prefetch(pa, a, ctx, t_mem);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn issue_stride_prefetches(&mut self, reqs: Vec<crate::prefetch::PrefetchRequest>, t_mem: u64) {
        for req in reqs {
            let target = req.addr & !(self.config.l3.line_bytes - 1);
            if self.l3.contains(target) {
                continue;
            }
            let _ = self.dram.serve_prefetch(target, t_mem);
            // Prefetches insert with the default policy priority: distant
            // insertion would make far-ahead prefetches immediate victims.
            if let Some(ev) = self.l3.fill(target, false, InsertPriority::Normal) {
                self.writeback_to_dram(ev, t_mem);
            }
            self.track_prefetch(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{AddressMapping, DramConfig};

    fn small_hierarchy(mode: XmemMode) -> Hierarchy {
        let cfg = HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 4 << 10,
                ways: 4,
                line_bytes: 64,
                latency: 4,
                policy: crate::config::ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 16 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 8,
                policy: crate::config::ReplacementPolicy::Drrip,
            },
            l3: CacheConfig {
                size_bytes: 64 << 10,
                ways: 16,
                line_bytes: 64,
                latency: 27,
                policy: crate::config::ReplacementPolicy::Drrip,
            },
            stride_prefetcher: true,
            stride_streams: 16,
            prefetch_degree: 2,
            xmem_prefetch_degree: 4,
            xmem: mode,
        };
        Hierarchy::new(
            cfg,
            Dram::new(DramConfig::ddr3_1066(3.6), AddressMapping::scheme1()),
        )
    }

    #[test]
    fn miss_then_hit_latencies() {
        let mut h = small_hierarchy(XmemMode::Off);
        let miss = h.serve(0x1000, false, 0, None);
        assert!(miss > 39, "first access must reach DRAM: {miss}");
        let hit = h.serve(0x1000, false, 100, None);
        assert_eq!(hit, 4, "L1 hit");
    }

    #[test]
    fn l2_and_l3_hit_latencies() {
        let mut h = small_hierarchy(XmemMode::Off);
        h.serve(0x2000, false, 0, None);
        // Evict from L1 by filling its set (L1 = 4 KB, 4 ways, 16 sets).
        for i in 1..=4u64 {
            h.serve(0x2000 + i * 4096, false, i * 1000, None);
        }
        let lat = h.serve(0x2000, false, 100_000, None);
        assert_eq!(lat, 12, "L2 hit latency (4+8)");
    }

    #[test]
    fn writeback_traffic_generated() {
        let mut h = small_hierarchy(XmemMode::Off);
        // Write many distinct lines so dirty evictions cascade to DRAM.
        for i in 0..4096u64 {
            h.serve(i * 64, true, i * 10, None);
        }
        assert!(h.dram_stats().writes > 0, "{:?}", h.dram_stats());
    }

    #[test]
    fn stride_prefetcher_reduces_miss_latency_for_streams() {
        let run = |stride_on: bool| {
            let mut h = small_hierarchy(XmemMode::Off);
            if !stride_on {
                h.stride_pf = None;
            }
            let mut total = 0u64;
            for i in 0..2048u64 {
                total += h.serve(i * 64, false, i * 50, None);
            }
            total
        };
        let with_pf = run(true);
        let without = run(false);
        assert!(with_pf < without, "with {with_pf} vs without {without}");
    }

    #[test]
    fn baseline_without_ctx_never_consults_amu() {
        // Smoke test: XmemMode::Off with no context behaves like a plain
        // hierarchy (no panics, no pinning).
        let mut h = small_hierarchy(XmemMode::Off);
        for i in 0..512u64 {
            h.serve(i * 64, false, i, None);
        }
        assert!(h.pinned_atoms().is_empty());
    }

    #[test]
    fn guided_prefetch_follows_negative_stride() {
        use xmem_core::aam::AamConfig;
        use xmem_core::addr::{VaRange, VirtAddr};
        use xmem_core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
        use xmem_core::attrs::{AccessPattern, AtomAttributes, Reuse};
        use xmem_core::isa::XmemInst;
        use xmem_core::pat::Pat;
        use xmem_core::translate::AttributeTranslator;

        let mut h = small_hierarchy(XmemMode::PrefetchOnly);
        let mut amu = AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: 1 << 20,
                ..Default::default()
            },
            ..Default::default()
        });
        let mmu = IdentityMmu::new();
        let atom = xmem_core::atom::AtomId::new(0);
        amu.execute(
            &XmemInst::Map {
                atom,
                range: VaRange::new(VirtAddr::new(0x10000), 16 << 10),
            },
            &mmu,
        )
        .unwrap();
        amu.execute(&XmemInst::Activate(atom), &mmu).unwrap();

        let attrs = AtomAttributes::builder()
            .access_pattern(AccessPattern::Regular { stride: -8 })
            .reuse(Reuse(100))
            .build();
        let t = AttributeTranslator::new();
        let mut cache_pat = Pat::new();
        cache_pat.set(atom, t.for_cache(&attrs));
        let mut pf_pat = Pat::new();
        pf_pat.set(atom, t.for_prefetcher(&attrs));

        // Miss in the middle of the atom: the guided engine should fetch
        // the *preceding* lines.
        let miss_at = 0x12000u64;
        h.serve(
            miss_at,
            false,
            0,
            Some(XmemContext {
                amu: &mut amu,
                cache_pat: &cache_pat,
                pf_pat: &pf_pat,
            }),
        );
        assert!(h.xmem_prefetch_stats().issued > 0);
        // The line just *before* the miss is now resident.
        assert!(h.l3.contains(miss_at - 64));
        assert!(!h.l3.contains(miss_at + 4 * 64));
    }

    #[test]
    fn warm_access_fills_caches_without_timing_traffic() {
        let mut h = small_hierarchy(XmemMode::Off);
        h.warm_access(0x3000, false, None);
        // The line is resident all the way up: a detailed access is an L1
        // hit with no DRAM traffic.
        let lat = h.serve(0x3000, false, 0, None);
        assert_eq!(lat, 4, "L1 hit after warm fill");
        assert_eq!(h.dram_stats().accesses(), 0, "warm probes skip DRAM timing");
        // The DRAM row is warmed: the first detailed miss to a neighbouring
        // line in the same row is a row hit. Scheme1 interleaves channels
        // at line granularity (2 channels), so the same-channel, same-row
        // neighbour of 0x100_0000 is two lines over, not one.
        h.warm_access(0x100_0000, false, None);
        h.serve(0x100_0080, false, 0, None);
        assert_eq!(h.dram_stats().row_hits, 1, "{:?}", h.dram_stats());
        // No prefetches were issued by warm probes.
        assert_eq!(h.stride_prefetch_stats().unwrap().issued, 0);
    }

    #[test]
    fn set_dirty_only_when_resident() {
        let mut c = Cache::new(CacheConfig::l1_westmere());
        assert!(!c.set_dirty(0x40));
        c.fill(0x40, false, InsertPriority::Normal);
        assert!(c.set_dirty(0x40));
    }
}
