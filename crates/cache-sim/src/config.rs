//! Cache geometry and policy configuration.

/// Replacement policy selection.
///
/// DRRIP (Dynamic Re-Reference Interval Prediction, Jaleel et al. \[83\]) is
/// the paper's baseline policy for L2/L3 (Table 3); LRU is used at L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    Lru,
    /// Static RRIP: insert at "long re-reference" (RRPV = 2).
    Srrip,
    /// Bimodal RRIP: insert at "distant" (RRPV = 3) except 1/32 of fills.
    Brrip,
    /// Dynamic RRIP: set dueling chooses between SRRIP and BRRIP.
    #[default]
    Drrip,
    /// Signature-based Hit Prediction (SHiP-Mem, Wu et al. MICRO'11):
    /// memory-region signatures predict whether an insertion will be
    /// re-referenced; predicted-dead lines insert at distant RRPV.
    Ship,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in core cycles.
    pub latency: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// The paper's L1D: 32 KB, 8-way, 4 cycles, LRU (Table 3).
    pub fn l1_westmere() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 4,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The paper's private L2: 128 KB, 8-way, 8 cycles, DRRIP (Table 3).
    pub fn l2_westmere() -> Self {
        CacheConfig {
            size_bytes: 128 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 8,
            policy: ReplacementPolicy::Drrip,
        }
    }

    /// The paper's per-core L3 slice: 1 MB, 16-way, 27 cycles, DRRIP
    /// (Table 3: 8 MB partitioned across 8 cores).
    pub fn l3_westmere() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            latency: 27,
            policy: ReplacementPolicy::Drrip,
        }
    }

    /// A copy with a different capacity (the Fig 5 cache-size sweep).
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into a
    /// power-of-two number of sets).
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache must have a power-of-two number of sets (got {sets})"
        );
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_geometry() {
        assert_eq!(CacheConfig::l1_westmere().sets(), 64);
        assert_eq!(CacheConfig::l2_westmere().sets(), 256);
        assert_eq!(CacheConfig::l3_westmere().sets(), 1024);
    }

    #[test]
    fn with_size_scales_sets() {
        let half = CacheConfig::l3_westmere().with_size(512 << 10);
        assert_eq!(half.sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 48 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 1,
            policy: ReplacementPolicy::Lru,
        };
        let _ = c.sets();
    }
}
