//! A set-associative, write-back cache with LRU/SRRIP/BRRIP/DRRIP
//! replacement and XMem pin-aware insertion (§5.2(3) of the paper).
//!
//! Pinning semantics follow the paper exactly:
//!
//! * lines belonging to pinned atoms are inserted with the *highest*
//!   priority and are skipped during victim selection;
//! * once pinned lines fill 75% of the ways of a set, further fills use the
//!   default insertion policy (so the cache always retains room for other
//!   data);
//! * when the active-atom list changes, [`Cache::age_pinned`] demotes all
//!   pinned lines so the default policy can evict them.

use crate::coherence::MesiState;
use crate::config::{CacheConfig, ReplacementPolicy};
use xmem_core::addr::{addr_to_index, addr_to_u16};

/// Insertion priority for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPriority {
    /// Highest priority + protected from eviction (XMem pinned working set).
    Pinned,
    /// The policy's default insertion.
    Normal,
    /// Distant insertion (hardware prefetches), evicted first.
    Low,
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address (byte address of the line base).
    pub addr: u64,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (probe calls).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Dirty lines evicted (writebacks generated).
    pub writebacks: u64,
    /// Lines invalidated by coherence snoops (always 0 outside MESI mode).
    pub snoop_invalidations: u64,
    /// Dirty lines flushed by coherence snoops (always 0 outside MESI mode).
    pub snoop_writebacks: u64,
}

impl CacheStats {
    /// Demand misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Demand hit rate in `[0, 1]`; 0 with no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-unit (whatever the caller counts); used with instruction
    /// counts to compute MPKI.
    pub fn mpk(&self, per_thousand_of: u64) -> f64 {
        if per_thousand_of == 0 {
            0.0
        } else {
            self.misses() as f64 * 1000.0 / per_thousand_of as f64
        }
    }

    /// Exports counters and derived metrics for the report sinks. The
    /// snoop counters are emitted only when nonzero so reports from
    /// coherence-free runs stay byte-identical to pre-MESI output.
    pub fn kv(&self) -> cpu_sim::kv::KvPairs {
        let mut kv: cpu_sim::kv::KvPairs = vec![
            ("accesses", self.accesses.into()),
            ("hits", self.hits.into()),
            ("misses", self.misses().into()),
            ("fills", self.fills.into()),
            ("evictions", self.evictions.into()),
            ("writebacks", self.writebacks.into()),
            ("hit_rate", self.hit_rate().into()),
        ];
        if self.snoop_invalidations != 0 {
            kv.push(("snoop_invalidations", self.snoop_invalidations.into()));
        }
        if self.snoop_writebacks != 0 {
            kv.push(("snoop_writebacks", self.snoop_writebacks.into()));
        }
        kv
    }
}

const RRPV_MAX: u8 = 3;
/// SHiP signature table entries (power of two).
const SHCT_ENTRIES: usize = 1024;
/// SHiP counter saturation.
const SHCT_MAX: u8 = 3;
/// Fraction of BRRIP fills that use the long (rather than distant) interval.
const BRRIP_LONG_EVERY: u32 = 32;
/// PSEL counter width for DRRIP set dueling.
const PSEL_MAX: i32 = 1023;
/// Leader-set spacing for set dueling (1 SRRIP + 1 BRRIP leader per 64 sets).
const DUEL_PERIOD: usize = 64;

/// Tag value stored for invalid lines. Real tags are line addresses shifted
/// right by the set bits, so they cannot reach this value for any physical
/// address a simulated machine produces; storing a sentinel keeps the hot
/// `find_way` scan on the tag lane alone (no metadata load per way).
const TAG_INVALID: u64 = u64::MAX;

/// Per-line metadata bits, packed into one byte so a set's metadata scan
/// touches a single contiguous lane.
const META_VALID: u8 = 1 << 0;
const META_DIRTY: u8 = 1 << 1;
const META_PINNED: u8 = 1 << 2;
/// SHiP: whether the line was re-referenced since insertion.
const META_OUTCOME: u8 = 1 << 3;

/// The cache model.
///
/// Addresses passed in are byte addresses; the cache internally works on
/// line addresses. `probe` looks up (and updates replacement state on hit);
/// `fill` installs a line after a miss and reports any eviction.
///
/// Line state is stored struct-of-arrays: one lane per field (`tags`,
/// `lru`, `rrpv`, `sigs`, packed `meta` bits), all indexed by
/// `set * ways + way`. The hot probe loop scans the tag lane and one
/// metadata byte per way — a handful of contiguous cache lines per set —
/// instead of striding over a wide per-line struct.
///
/// # Examples
///
/// ```
/// use cache_sim::cache::{Cache, InsertPriority};
/// use cache_sim::config::CacheConfig;
///
/// let mut c = Cache::new(CacheConfig::l1_westmere());
/// assert!(!c.probe(0x1000, false));
/// c.fill(0x1000, false, InsertPriority::Normal);
/// assert!(c.probe(0x1000, false));
/// assert_eq!(c.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `log2(line_bytes)`: the probe path indexes with shifts, not division.
    line_shift: u32,
    /// `log2(sets)`, the tag shift.
    set_shift: u32,
    /// `sets - 1`, the set-index mask.
    set_mask: u64,
    /// Line tags, indexed by `set * ways + way`.
    tags: Vec<u64>,
    /// LRU stamps (same indexing).
    lru: Vec<u64>,
    /// RRIP re-reference prediction values.
    rrpv: Vec<u8>,
    /// SHiP signatures of the inserting region.
    sigs: Vec<u16>,
    /// Packed valid/dirty/pinned/outcome bits ([`META_VALID`] etc.).
    meta: Vec<u8>,
    /// MESI state lane ([`MesiState`] as u8). Written only through
    /// [`Cache::set_coh_state`]/[`Cache::snoop_invalidate`], so in
    /// coherence-free runs the lane stays all-zero and costs nothing on
    /// the hot probe/fill paths.
    coh: Vec<u8>,
    clock: u64,
    /// DRRIP policy-select counter (positive favors BRRIP).
    psel: i32,
    /// BRRIP fill counter (1 in 32 fills gets the long interval).
    brrip_ctr: u32,
    stats: CacheStats,
    /// Maximum pinned ways per set (75% of associativity, §5.2(3)).
    pin_cap_ways: usize,
    /// SHiP: signature history counter table (2-bit saturating counters).
    shct: Vec<u8>,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let lines = sets * config.ways;
        // The set-index mask below already requires a power-of-two set
        // count; requiring the same of the line size lets the hot probe
        // path use shifts instead of 64-bit division.
        assert!(
            config.line_bytes.is_power_of_two() && sets.is_power_of_two(),
            "cache geometry must be a power of two (line_bytes={}, sets={sets})",
            config.line_bytes
        );
        Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![TAG_INVALID; lines],
            lru: vec![0; lines],
            rrpv: vec![0; lines],
            sigs: vec![0; lines],
            meta: vec![0; lines],
            coh: vec![0; lines],
            clock: 0,
            psel: 0,
            brrip_ctr: 0,
            stats: CacheStats::default(),
            pin_cap_ways: ((config.ways as f64) * 0.75).floor().max(1.0) as usize,
            shct: vec![1; SHCT_ENTRIES],
            config,
        }
    }

    /// SHiP signature: the 16 KB region of the address (SHiP-Mem flavor).
    #[inline]
    fn signature(addr: u64) -> u16 {
        addr_to_u16((addr >> 14) & (SHCT_ENTRIES as u64 - 1))
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The DRRIP set-dueling policy-select counter. Positive favors BRRIP
    /// for follower sets, negative favors SRRIP: a miss in the SRRIP
    /// leader set (`set % 64 == 0`) increments it, a miss in the BRRIP
    /// leader set (`set % 64 == 1`) decrements it, saturating at
    /// ±`PSEL_MAX`. Always 0 for non-DRRIP caches.
    pub fn psel(&self) -> i32 {
        self.psel
    }

    #[inline]
    fn line_index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = addr_to_index(line & self.set_mask);
        let tag = line >> self.set_shift;
        debug_assert_ne!(tag, TAG_INVALID, "address overflows the tag space");
        (set, tag)
    }

    /// Index of the way holding `tag` in `set`. Invalid ways hold
    /// [`TAG_INVALID`] (which no real address produces), so the scan
    /// touches only the tag lane; it visits every way without an early
    /// exit — a tag is resident in at most one way, and the branch-free
    /// full scan vectorizes where an early-out compare chain mispredicts
    /// on the (data-dependent) hit position.
    #[inline]
    fn find_way(&self, base: usize, ways: usize, tag: u64) -> Option<usize> {
        let tags = &self.tags[base..base + ways];
        let mut found = usize::MAX;
        for (w, &t) in tags.iter().enumerate() {
            if t == tag {
                found = w;
            }
        }
        (found != usize::MAX).then(|| base + found)
    }

    /// First (lowest-way) index minimizing the LRU stamp over `base..base+ways`,
    /// restricted to lines whose meta bits match `mask`/`want`. Mirrors the
    /// old `iter().filter(..).min_by_key(lru)` scan: ties keep the earliest
    /// way, preserving the deterministic victim choice.
    #[inline]
    fn min_lru_where(&self, base: usize, ways: usize, mask: u8, want: u8) -> Option<usize> {
        let metas = &self.meta[base..base + ways];
        let lrus = &self.lru[base..base + ways];
        let mut best: Option<usize> = None;
        for w in 0..ways {
            if metas[w] & mask == want && best.is_none_or(|b: usize| lrus[w] < lrus[b]) {
                best = Some(w);
            }
        }
        best.map(|w| base + w)
    }

    /// Looks up `addr`; on a hit, promotes the line and (for writes) marks
    /// it dirty. Returns whether it hit.
    ///
    /// The lookup itself stays small enough to inline into the hierarchy's
    /// demand path; hit bookkeeping and the miss-side DRRIP vote live in
    /// their own helpers.
    #[inline]
    pub fn probe(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        self.stats.accesses += 1;
        match self.find_way(set * ways, ways, tag) {
            Some(i) => {
                self.probe_hit(i, is_write);
                true
            }
            None => {
                self.probe_miss(set);
                false
            }
        }
    }

    /// Hit-side bookkeeping: promote, mark dirty, SHiP outcome feedback.
    #[inline]
    fn probe_hit(&mut self, i: usize, is_write: bool) {
        self.lru[i] = self.clock;
        // The RRPV lane is only consulted by RRIP-family victim searches;
        // under plain LRU the promote write would dirty a lane nothing
        // reads.
        if self.config.policy != ReplacementPolicy::Lru {
            self.rrpv[i] = 0;
        }
        if is_write {
            self.meta[i] |= META_DIRTY;
        }
        if self.config.policy == ReplacementPolicy::Ship && self.meta[i] & META_OUTCOME == 0 {
            self.meta[i] |= META_OUTCOME;
            let c = &mut self.shct[self.sigs[i] as usize];
            *c = (*c + 1).min(SHCT_MAX);
        }
        self.stats.hits += 1;
    }

    /// Miss-side bookkeeping: misses in DRRIP leader sets steer PSEL
    /// (SRRIP leader miss → favor BRRIP and vice versa).
    fn probe_miss(&mut self, set: usize) {
        if self.config.policy == ReplacementPolicy::Drrip {
            match set % DUEL_PERIOD {
                0 => self.psel = (self.psel + 1).min(PSEL_MAX),
                1 => self.psel = (self.psel - 1).max(-PSEL_MAX),
                _ => {}
            }
        }
    }

    /// Returns whether `addr` is resident, without updating any state.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        self.find_way(set * ways, ways, tag).is_some()
    }

    /// Installs `addr` after a miss, returning the eviction (if a valid
    /// line was displaced).
    ///
    /// `Pinned` fills are demoted to `Normal` when the set already holds
    /// the per-set pin cap of pinned lines (the 75% rule).
    pub fn fill(&mut self, addr: u64, dirty: bool, priority: InsertPriority) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.line_index(addr);
        let line_shift = self.line_shift;
        let sets_shift = self.set_shift;
        let set_mask_base = set as u64;

        // SHiP signature work only matters under the SHiP policy; the sigs
        // lane is read exclusively from SHiP-gated paths, so a zero
        // signature under other policies is unobservable.
        let ship = self.config.policy == ReplacementPolicy::Ship;
        let sig = if ship { Self::signature(addr) } else { 0 };
        let ship_dead = ship && self.shct[sig as usize] == 0;
        // Resolve the effective policy for this set (DRRIP dueling).
        let policy = match self.config.policy {
            ReplacementPolicy::Drrip => match set % DUEL_PERIOD {
                0 => ReplacementPolicy::Srrip,
                1 => ReplacementPolicy::Brrip,
                _ => {
                    if self.psel >= 0 {
                        ReplacementPolicy::Brrip
                    } else {
                        ReplacementPolicy::Srrip
                    }
                }
            },
            p => p,
        };
        // The BRRIP throttle counter advances once per fill whenever BRRIP
        // can be in play (directly or as a DRRIP arm); under other policies
        // it is never read, so skipping the update is unobservable.
        let brrip_long = if matches!(
            self.config.policy,
            ReplacementPolicy::Brrip | ReplacementPolicy::Drrip
        ) {
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            self.brrip_ctr.is_multiple_of(BRRIP_LONG_EVERY)
        } else {
            false
        };
        let pin_cap = self.pin_cap_ways;
        let ways = self.config.ways;
        let base = set * ways;

        // The per-set pin census is only needed to apply the pin cap to an
        // incoming pinned fill.
        let effective_priority = match priority {
            InsertPriority::Pinned => {
                let pinned_count = self.meta[base..base + ways]
                    .iter()
                    .filter(|&&m| m & (META_VALID | META_PINNED) == META_VALID | META_PINNED)
                    .count();
                if pinned_count >= pin_cap {
                    InsertPriority::Normal
                } else {
                    InsertPriority::Pinned
                }
            }
            p => p,
        };

        // If the line is somehow already present (e.g. racing prefetch),
        // just refresh it.
        if let Some(i) = self.find_way(base, ways, tag) {
            self.lru[i] = clock;
            if dirty {
                self.meta[i] |= META_DIRTY;
            }
            return None;
        }

        // Victim selection: an invalid way wins outright (invalid ways hold
        // [`TAG_INVALID`] exactly when their `META_VALID` bit is clear).
        let victim = if let Some(w) = self.tags[base..base + ways]
            .iter()
            .position(|&t| t == TAG_INVALID)
        {
            base + w
        } else {
            match policy {
                ReplacementPolicy::Lru => self
                    .min_lru_where(base, ways, META_PINNED, 0)
                    .unwrap_or_else(|| {
                        // Every way pinned (pin cap == ways): fall back to LRU
                        // over all lines.
                        self.min_lru_where(base, ways, 0, 0)
                            // simlint: allow(unwrap, reason = "a cache set always has at least one way")
                            .expect("non-empty set")
                    }),
                _ => {
                    // RRIP victim search: find RRPV == MAX among unpinned,
                    // aging as needed.
                    loop {
                        if let Some(i) = (base..base + ways)
                            .find(|&i| self.meta[i] & META_PINNED == 0 && self.rrpv[i] >= RRPV_MAX)
                        {
                            break i;
                        }
                        let mut any_unpinned = false;
                        for i in base..base + ways {
                            if self.meta[i] & META_PINNED == 0 {
                                any_unpinned = true;
                                self.rrpv[i] = (self.rrpv[i] + 1).min(RRPV_MAX);
                            }
                        }
                        if !any_unpinned {
                            // Fully pinned set: evict the LRU pinned line.
                            break self
                                .min_lru_where(base, ways, 0, 0)
                                // simlint: allow(unwrap, reason = "a cache set always has at least one way")
                                .expect("non-empty set");
                        }
                    }
                }
            }
        };

        let ev_meta = self.meta[victim];
        let ev_tag = self.tags[victim];
        let ev_sig = self.sigs[victim];

        let rrpv = match effective_priority {
            InsertPriority::Pinned => 0,
            InsertPriority::Low => RRPV_MAX,
            InsertPriority::Normal => match policy {
                ReplacementPolicy::Lru => 0,
                ReplacementPolicy::Srrip => RRPV_MAX - 1,
                ReplacementPolicy::Brrip => {
                    if brrip_long {
                        RRPV_MAX - 1
                    } else {
                        RRPV_MAX
                    }
                }
                ReplacementPolicy::Ship => {
                    // Predicted dead (counter at zero): distant insertion.
                    if ship_dead {
                        RRPV_MAX
                    } else {
                        RRPV_MAX - 1
                    }
                }
                ReplacementPolicy::Drrip => unreachable!("resolved above"),
            },
        };
        let lru = match effective_priority {
            // Low-priority fills look old to LRU as well.
            InsertPriority::Low => clock.saturating_sub(1 << 20),
            _ => clock,
        };
        self.tags[victim] = tag;
        self.lru[victim] = lru;
        self.rrpv[victim] = rrpv;
        self.sigs[victim] = sig;
        // A fresh line never inherits the victim's MESI state; the
        // coherence engine assigns the real state right after the fill.
        self.coh[victim] = 0;
        self.meta[victim] = META_VALID
            | if dirty { META_DIRTY } else { 0 }
            | if effective_priority == InsertPriority::Pinned {
                META_PINNED
            } else {
                0
            };
        self.stats.fills += 1;
        if ev_meta & META_VALID != 0 {
            // SHiP feedback: a line evicted without re-reference votes its
            // signature down.
            if self.config.policy == ReplacementPolicy::Ship && ev_meta & META_OUTCOME == 0 {
                let c = &mut self.shct[ev_sig as usize];
                *c = c.saturating_sub(1);
            }
            self.stats.evictions += 1;
            if ev_meta & META_DIRTY != 0 {
                self.stats.writebacks += 1;
            }
            let line_no = (ev_tag << sets_shift) | set_mask_base;
            Some(Eviction {
                addr: line_no << line_shift,
                dirty: ev_meta & META_DIRTY != 0,
            })
        } else {
            None
        }
    }

    /// Demotes every pinned line to distant priority (called when the
    /// active-atom list changes, §5.2(3): "only then does the cache age the
    /// high-priority lines so they can be evicted by the default policy").
    pub fn age_pinned(&mut self) {
        for i in 0..self.meta.len() {
            if self.meta[i] & META_PINNED != 0 {
                self.meta[i] &= !META_PINNED;
                self.rrpv[i] = RRPV_MAX;
                self.lru[i] = self.lru[i].saturating_sub(1 << 20);
            }
        }
    }

    /// Number of currently pinned, valid lines.
    pub fn pinned_lines(&self) -> usize {
        self.meta
            .iter()
            .filter(|&&m| m & (META_VALID | META_PINNED) == META_VALID | META_PINNED)
            .count()
    }

    /// Number of valid lines.
    pub fn valid_lines(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Marks `addr` dirty if resident (no stats impact); returns whether the
    /// line was found. Used to sink writebacks arriving from inner levels.
    pub fn set_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        if let Some(i) = self.find_way(set * ways, ways, tag) {
            self.meta[i] |= META_DIRTY;
            return true;
        }
        false
    }

    /// The MESI state of the line holding `addr`; `Invalid` when the line
    /// is not resident. No stats or replacement-state impact.
    pub fn coh_state(&self, addr: u64) -> MesiState {
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        match self.find_way(set * ways, ways, tag) {
            Some(i) => MesiState::from_lane(self.coh[i]),
            None => MesiState::Invalid,
        }
    }

    /// Sets the MESI state of the resident line holding `addr`, keeping the
    /// dirty bit in lockstep (Modified ⇔ dirty: an M line must write back
    /// on eviction, a downgraded line must not — the snoop flush already
    /// updated memory). Returns whether the line was found.
    pub fn set_coh_state(&mut self, addr: u64, state: MesiState) -> bool {
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        if let Some(i) = self.find_way(set * ways, ways, tag) {
            self.coh[i] = state as u8;
            if state == MesiState::Modified {
                self.meta[i] |= META_DIRTY;
            } else {
                self.meta[i] &= !META_DIRTY;
            }
            return true;
        }
        false
    }

    /// Removes the line holding `addr` in response to a coherence snoop.
    /// Returns whether the removed line was dirty (the caller counts the
    /// flush; memory is updated by the coherence engine, not here). No
    /// demand-stats impact beyond the snoop counters.
    pub fn snoop_invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.line_index(addr);
        let ways = self.config.ways;
        if let Some(i) = self.find_way(set * ways, ways, tag) {
            let dirty = self.meta[i] & META_DIRTY != 0;
            self.tags[i] = TAG_INVALID;
            self.lru[i] = 0;
            self.rrpv[i] = 0;
            self.sigs[i] = 0;
            self.meta[i] = 0;
            self.coh[i] = 0;
            self.stats.snoop_invalidations += 1;
            if dirty {
                self.stats.snoop_writebacks += 1;
            }
            return dirty;
        }
        false
    }

    /// Invalidates the whole cache (contents only; stats are kept).
    pub fn flush(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.lru.fill(0);
        self.rrpv.fill(0);
        self.sigs.fill(0);
        self.meta.fill(0);
        self.coh.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4096, // 64 lines
            ways: 4,
            line_bytes: 64,
            latency: 1,
            policy,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.probe(0, false));
        c.fill(0, false, InsertPriority::Normal);
        assert!(c.probe(0, false));
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.fill(128, false, InsertPriority::Normal);
        assert!(c.probe(128 + 63, false));
        assert!(!c.probe(128 + 64, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let sets = c.config().sets() as u64; // 16 sets
                                             // Fill all 4 ways of set 0.
        for i in 0..4u64 {
            c.fill(i * 64 * sets, false, InsertPriority::Normal);
        }
        // Touch line 0 so line 1 is LRU.
        assert!(c.probe(0, false));
        let ev = c
            .fill(4 * 64 * sets, false, InsertPriority::Normal)
            .unwrap();
        assert_eq!(ev.addr, 64 * sets);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let sets = c.config().sets() as u64;
        c.fill(0, true, InsertPriority::Normal);
        for i in 1..4u64 {
            c.fill(i * 64 * sets, false, InsertPriority::Normal);
        }
        let ev = c
            .fill(4 * 64 * sets, false, InsertPriority::Normal)
            .unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.addr, 0);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_probe_marks_dirty() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let sets = c.config().sets() as u64;
        c.fill(0, false, InsertPriority::Normal);
        assert!(c.probe(0, true));
        for i in 1..=4u64 {
            c.fill(i * 64 * sets, false, InsertPriority::Normal);
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn pinned_lines_survive_thrashing() {
        let mut c = tiny(ReplacementPolicy::Srrip);
        let sets = c.config().sets() as u64;
        // Pin two lines in set 0 (cap = 3 of 4 ways).
        c.fill(0, false, InsertPriority::Pinned);
        c.fill(64 * sets, false, InsertPriority::Pinned);
        // Thrash with 100 distinct lines mapping to set 0.
        for i in 2..102u64 {
            let addr = i * 64 * sets;
            if !c.probe(addr, false) {
                c.fill(addr, false, InsertPriority::Normal);
            }
        }
        assert!(c.contains(0), "pinned line 0 evicted");
        assert!(c.contains(64 * sets), "pinned line 1 evicted");
    }

    #[test]
    fn pin_cap_limits_pinned_ways() {
        let mut c = tiny(ReplacementPolicy::Srrip); // 4 ways, cap = 3
        let sets = c.config().sets() as u64;
        for i in 0..4u64 {
            c.fill(i * 64 * sets, false, InsertPriority::Pinned);
        }
        // Only 3 can be pinned; the 4th fill demoted to Normal.
        let pinned_in_set = c.pinned_lines();
        assert_eq!(pinned_in_set, 3);
    }

    #[test]
    fn age_pinned_releases_protection() {
        let mut c = tiny(ReplacementPolicy::Srrip);
        let sets = c.config().sets() as u64;
        c.fill(0, false, InsertPriority::Pinned);
        c.age_pinned();
        assert_eq!(c.pinned_lines(), 0);
        // Now thrashing can evict it.
        for i in 1..40u64 {
            let addr = i * 64 * sets;
            if !c.probe(addr, false) {
                c.fill(addr, false, InsertPriority::Normal);
            }
        }
        assert!(!c.contains(0));
    }

    #[test]
    fn low_priority_evicted_first() {
        let mut c = tiny(ReplacementPolicy::Srrip);
        let sets = c.config().sets() as u64;
        for i in 0..3u64 {
            c.fill(i * 64 * sets, false, InsertPriority::Normal);
        }
        c.fill(3 * 64 * sets, false, InsertPriority::Low);
        let ev = c
            .fill(4 * 64 * sets, false, InsertPriority::Normal)
            .unwrap();
        assert_eq!(ev.addr, 3 * 64 * sets);
    }

    #[test]
    fn brrip_resists_thrashing_better_than_srrip_scan() {
        // Classic RRIP result: under a cyclic working set slightly larger
        // than the cache, BRRIP keeps part of it resident while LRU/SRRIP
        // get ~0 hits.
        let run = |policy| {
            let mut c = tiny(policy);
            let mut hits = 0u64;
            let lines = 96u64; // 1.5x the 64-line capacity
            for _round in 0..50 {
                for i in 0..lines {
                    if c.probe(i * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(i * 64, false, InsertPriority::Normal);
                    }
                }
            }
            hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let brrip_hits = run(ReplacementPolicy::Brrip);
        assert!(
            brrip_hits > lru_hits + 100,
            "brrip {brrip_hits} vs lru {lru_hits}"
        );
    }

    /// A cache big enough to contain one full duel period: 64 sets, so
    /// set 0 is the SRRIP leader and set 1 the BRRIP leader.
    fn duel_cache(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 64 << 10, // 1024 lines
            ways: 16,
            line_bytes: 64,
            latency: 1,
            policy,
        })
    }

    /// The documented PSEL polarity, pinned down miss by miss: an SRRIP
    /// leader miss is a vote *for BRRIP* (psel up), a BRRIP leader miss a
    /// vote for SRRIP (psel down); followers and hits don't vote; the
    /// counter saturates at ±PSEL_MAX instead of wrapping.
    #[test]
    fn leader_set_misses_move_psel_in_documented_direction() {
        let mut c = duel_cache(ReplacementPolicy::Drrip);
        assert_eq!(c.psel(), 0);
        // Line k*64 + s maps to set s; distinct k keep every probe a miss.
        let addr = |set: u64, k: u64| (k * 64 + set) * 64;
        assert!(!c.probe(addr(0, 0), false), "SRRIP leader miss");
        assert_eq!(c.psel(), 1);
        assert!(!c.probe(addr(1, 0), false), "BRRIP leader miss");
        assert!(!c.probe(addr(1, 1), false));
        assert_eq!(c.psel(), -1);
        // Follower-set misses don't vote.
        assert!(!c.probe(addr(2, 0), false));
        assert_eq!(c.psel(), -1);
        // Leader-set hits don't vote.
        c.fill(addr(0, 1), false, InsertPriority::Normal);
        assert!(c.probe(addr(0, 1), false));
        assert_eq!(c.psel(), -1);
        // Saturation at both rails.
        for k in 0..3000 {
            c.probe(addr(1, k + 10), false);
        }
        assert_eq!(c.psel(), -PSEL_MAX);
        for k in 0..5000 {
            c.probe(addr(0, k + 10), false);
        }
        assert_eq!(c.psel(), PSEL_MAX);
    }

    /// A cyclic scan at 2x capacity: BRRIP clearly beats SRRIP, so DRRIP's
    /// leaders must drive PSEL positive and the followers must read the
    /// sign as "use BRRIP", landing DRRIP above SRRIP.
    #[test]
    fn drrip_follows_brrip_when_scanning() {
        let run = |policy| {
            let mut c = duel_cache(policy);
            let mut hits = 0u64;
            for _ in 0..20 {
                for i in 0..2048u64 {
                    if c.probe(i * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(i * 64, false, InsertPriority::Normal);
                    }
                }
            }
            (hits, c.psel())
        };
        let (srrip_hits, _) = run(ReplacementPolicy::Srrip);
        let (brrip_hits, _) = run(ReplacementPolicy::Brrip);
        let (drrip_hits, psel) = run(ReplacementPolicy::Drrip);
        assert!(
            brrip_hits > srrip_hits + 1000,
            "scan must favor BRRIP: brrip {brrip_hits} vs srrip {srrip_hits}"
        );
        assert!(psel > 0, "SRRIP leader misses must dominate: psel {psel}");
        assert!(
            drrip_hits > srrip_hits,
            "followers must have adopted BRRIP: drrip {drrip_hits} vs srrip {srrip_hits}"
        );
    }

    /// The mirror pattern: per set, three single-use scan lines and one
    /// line re-referenced after those fills. SRRIP's long insertion keeps
    /// the reused line until its second touch; BRRIP's distant insertion
    /// makes it a victim candidate immediately. SRRIP clearly wins, PSEL
    /// must go negative, and DRRIP's followers must switch to SRRIP.
    #[test]
    fn drrip_follows_srrip_on_short_reuse() {
        let run = |policy| {
            let mut c = duel_cache(policy);
            let mut hits = 0u64;
            for round in 0..400u64 {
                let base = round * 256; // 4 fresh lines per set per round
                for line in base..base + 256 {
                    if c.probe(line * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(line * 64, false, InsertPriority::Normal);
                    }
                }
                // Re-touch the first line of each set: 3 fills intervened.
                for line in base..base + 64 {
                    if c.probe(line * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(line * 64, false, InsertPriority::Normal);
                    }
                }
            }
            (hits, c.psel())
        };
        let (srrip_hits, _) = run(ReplacementPolicy::Srrip);
        let (brrip_hits, _) = run(ReplacementPolicy::Brrip);
        let (drrip_hits, psel) = run(ReplacementPolicy::Drrip);
        assert!(
            srrip_hits > brrip_hits + 1000,
            "short reuse must favor SRRIP: srrip {srrip_hits} vs brrip {brrip_hits}"
        );
        assert!(psel < 0, "BRRIP leader misses must dominate: psel {psel}");
        assert!(
            drrip_hits > brrip_hits,
            "followers must have adopted SRRIP: drrip {drrip_hits} vs brrip {brrip_hits}"
        );
    }

    #[test]
    fn drrip_tracks_better_leader() {
        // On a thrashing pattern DRRIP should end up near BRRIP performance.
        let thrash_hits = |policy| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 64 << 10,
                ways: 16,
                line_bytes: 64,
                latency: 1,
                policy,
            });
            let mut hits = 0u64;
            let lines = 2048u64; // 2x capacity (1024 lines)
            for _ in 0..20 {
                for i in 0..lines {
                    if c.probe(i * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(i * 64, false, InsertPriority::Normal);
                    }
                }
            }
            hits
        };
        let drrip = thrash_hits(ReplacementPolicy::Drrip);
        let lru = thrash_hits(ReplacementPolicy::Lru);
        assert!(drrip > lru, "drrip {drrip} vs lru {lru}");
    }

    #[test]
    fn ship_learns_streaming_signatures() {
        // One region streams (never re-referenced), another is hot.
        // After warmup, SHiP inserts the streaming region at distant RRPV,
        // protecting the hot region's lines.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 16 << 10, // 256 lines
            ways: 8,
            line_bytes: 64,
            latency: 1,
            policy: ReplacementPolicy::Ship,
        });
        let hot_lines = 128u64; // half the cache, re-referenced constantly
        let mut hot_hits_late = 0u64;
        let mut hot_accesses_late = 0u64;
        for round in 0..200u64 {
            for i in 0..hot_lines {
                let addr = i * 64; // region 0 (first 16 KB)
                let hit = c.probe(addr, false);
                if !hit {
                    c.fill(addr, false, InsertPriority::Normal);
                }
                if round >= 100 {
                    hot_accesses_late += 1;
                    hot_hits_late += hit as u64;
                }
            }
            // The stream pollutes from far-away regions, never repeating.
            for k in 0..64u64 {
                let addr = (1 << 24) + (round * 64 + k) * 64;
                if !c.probe(addr, false) {
                    c.fill(addr, false, InsertPriority::Normal);
                }
            }
        }
        let hot_rate = hot_hits_late as f64 / hot_accesses_late as f64;
        assert!(
            hot_rate > 0.95,
            "SHiP should protect the hot region: {hot_rate:.3}"
        );
    }

    #[test]
    fn ship_beats_lru_under_stream_pollution() {
        let run = |policy| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 16 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 1,
                policy,
            });
            let mut hits = 0u64;
            for round in 0..150u64 {
                for i in 0..128u64 {
                    if c.probe(i * 64, false) {
                        hits += 1;
                    } else {
                        c.fill(i * 64, false, InsertPriority::Normal);
                    }
                }
                // A cyclic stream over a fixed 128 KB buffer: lines are
                // reused only after a full lap (far beyond capacity), so
                // SHiP learns their regions are dead on arrival.
                for k in 0..256u64 {
                    let addr = (1 << 24) + ((round * 256 + k) % 2048) * 64;
                    if !c.probe(addr, false) {
                        c.fill(addr, false, InsertPriority::Normal);
                    }
                }
            }
            hits
        };
        let ship = run(ReplacementPolicy::Ship);
        let lru = run(ReplacementPolicy::Lru);
        assert!(ship > lru, "ship {ship} vs lru {lru}");
    }

    #[test]
    fn stats_consistency() {
        let mut c = tiny(ReplacementPolicy::Lru);
        for i in 0..100u64 {
            let addr = (i % 10) * 64;
            if !c.probe(addr, false) {
                c.fill(addr, false, InsertPriority::Normal);
            }
        }
        let s = c.stats();
        assert_eq!(s.accesses, 100);
        assert_eq!(s.hits + s.misses(), 100);
        assert!(s.hit_rate() > 0.8);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.fill(0, false, InsertPriority::Normal);
        c.probe(0, false);
        c.flush();
        assert!(!c.contains(0));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.valid_lines(), 0);
    }
}
