//! # cache-sim — caches, replacement policies, prefetchers, and the XMem
//! cache-management mechanism
//!
//! The cache substrate for the XMem reproduction (use case 1, §5 of the
//! paper):
//!
//! * [`cache::Cache`] — set-associative, write-back, with LRU / SRRIP /
//!   BRRIP / DRRIP replacement and pin-aware insertion (75% cap, aging).
//! * [`prefetch::MultiStridePrefetcher`] — the Table 3 baseline prefetcher.
//! * [`pin`] — the greedy atom-pinning algorithm of §5.2(2).
//! * [`hierarchy::Hierarchy`] — L1→L2→L3→DRAM with three operating modes
//!   (Baseline / XMem-Pref / XMem) matching the paper's evaluated systems.
//!
//! ```
//! use cache_sim::hierarchy::{Hierarchy, HierarchyConfig};
//! use dram_sim::{AddressMapping, Dram, DramConfig};
//!
//! let mut h = Hierarchy::new(
//!     HierarchyConfig::westmere_like(),
//!     Dram::new(DramConfig::ddr3_1066(3.6), AddressMapping::scheme1()),
//! );
//! let miss = h.serve(0x1000, false, 0, None);
//! let hit = h.serve(0x1000, false, miss, None);
//! assert!(hit < miss);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coherence;
pub mod config;
pub mod dram_cache;
pub mod hierarchy;
pub mod pin;
pub mod prefetch;

pub use crate::cache::{Cache, CacheStats, Eviction, InsertPriority};
pub use crate::coherence::{
    local_next, snoop_transition, BusConfig, BusOp, BusStats, MesiState, SnoopAction, SnoopBus,
};
pub use crate::config::{CacheConfig, ReplacementPolicy};
pub use crate::dram_cache::{DramCache, DramCacheConfig, DramCacheStats};
pub use crate::hierarchy::{Hierarchy, HierarchyConfig, XmemContext, XmemMode};
pub use crate::pin::{select_pinned, PinCandidate, PIN_FRACTION};
pub use crate::prefetch::{MultiStridePrefetcher, PrefetchRequest, PrefetchStats};
