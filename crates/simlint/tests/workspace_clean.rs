//! The green-gate self-check: the real workspace must lint clean. This is
//! the same check CI runs via `cargo run -p simlint -- check`, exercised
//! through the library API so `cargo test --workspace` alone catches a
//! regression.

use std::path::Path;

#[test]
fn real_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let findings = simlint::check(&root).expect("lint run succeeds");
    assert!(
        findings.is_empty(),
        "workspace has simlint findings:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
