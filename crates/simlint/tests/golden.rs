//! Fixture corpus: one minimal bad file per rule plus a clean file, with
//! golden-output assertions, and self-checks that the allow-comment and
//! `simlint.toml` allowlist mechanisms suppress exactly the annotated
//! sites.

use simlint::{lint_source, Config, FileCtx, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn sim_state_ctx(rel_path: &str) -> FileCtx {
    FileCtx {
        rel_path: rel_path.to_string(),
        sim_state: true,
        library: true,
        test_like: false,
    }
}

fn test_ctx(rel_path: &str) -> FileCtx {
    FileCtx {
        rel_path: rel_path.to_string(),
        sim_state: false,
        library: false,
        test_like: true,
    }
}

/// Fixtures are linted as if they were sim-state library code.
fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_source(&fixture(name), &sim_state_ctx(name), &Config::default())
}

fn rendered(name: &str) -> Vec<String> {
    lint_fixture(name).iter().map(|f| f.render()).collect()
}

#[test]
fn r1_nondet_map_golden() {
    assert_eq!(
        rendered("r1_nondet_map.rs"),
        [
            "r1_nondet_map.rs:2:24: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:2:33: nondet-map: `HashSet` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:5:18: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:6:15: nondet-map: `HashSet` in sim-state crate (iteration order is nondeterministic)",
        ]
    );
}

/// R2 is test-scoped since simlint v2: wall-clock reads in sim-state
/// library code are handled precisely by the cross-file taint pass, while
/// any wall-clock read in test code is flagged locally (a byte-identity
/// test that reads the clock is a silent flake source).
#[test]
fn r2_wall_clock_golden() {
    let findings = lint_source(
        &fixture("r2_wall_clock.rs"),
        &test_ctx("tests/r2_wall_clock.rs"),
        &Config::default(),
    );
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert_eq!(
        rendered,
        [
            "tests/r2_wall_clock.rs:2:17: wall-clock: `Instant` (wall-clock/ambient randomness) in test code",
            "tests/r2_wall_clock.rs:2:26: wall-clock: `SystemTime` (wall-clock/ambient randomness) in test code",
            "tests/r2_wall_clock.rs:5:17: wall-clock: `Instant` (wall-clock/ambient randomness) in test code",
            "tests/r2_wall_clock.rs:6:13: wall-clock: `SystemTime` (wall-clock/ambient randomness) in test code",
        ]
    );
}

/// In sim-state *library* code the same sources produce no local R2
/// finding — only `nondet-taint` when the value can reach a result sink
/// (which an isolated `stamp()` helper cannot).
#[test]
fn r2_does_not_fire_locally_in_sim_state_library_code() {
    let findings = lint_fixture("r2_wall_clock.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r3_narrowing_cast_golden() {
    assert_eq!(
        rendered("r3_narrowing_cast.rs"),
        [
            "r3_narrowing_cast.rs:5:16: narrowing-cast: narrowing cast `as usize` on address/cycle-typed expression (`line_addr`)",
            "r3_narrowing_cast.rs:9:12: narrowing-cast: narrowing cast `as u32` on address/cycle-typed expression (`cycles`)",
            "r3_narrowing_cast.rs:13:20: narrowing-cast: narrowing cast `as u16` on address/cycle-typed expression (`row`)",
        ]
    );
}

#[test]
fn r4_unwrap_golden() {
    assert_eq!(
        rendered("r4_unwrap.rs"),
        [
            "r4_unwrap.rs:4:16: unwrap: `.unwrap()` in non-test library code",
            "r4_unwrap.rs:8:15: unwrap: `.expect()` in non-test library code",
        ]
    );
}

#[test]
fn r5_float_cmp_golden() {
    assert_eq!(
        rendered("r5_float_cmp.rs"),
        [
            "r5_float_cmp.rs:5:10: float-cmp: float comparison `>` in sim-state crate",
            "r5_float_cmp.rs:9:10: float-cmp: float comparison `==` in sim-state crate",
        ]
    );
}

#[test]
fn r6_scalar_access_golden() {
    assert_eq!(
        rendered("r6_scalar_access.rs"),
        [
            "r6_scalar_access.rs:5:12: scalar-access: scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)",
            "r6_scalar_access.rs:12:8: scalar-access: scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)",
        ]
    );
}

#[test]
fn r7_sync_audit_golden() {
    assert_eq!(
        rendered("r7_sync_audit.rs"),
        [
            "r7_sync_audit.rs:3:24: sync-audit: `AtomicU64` (shared-state synchronization) in sim-state crate",
            "r7_sync_audit.rs:4:16: sync-audit: `Mutex` (shared-state synchronization) in sim-state crate",
            "r7_sync_audit.rs:7:15: sync-audit: `Mutex` (shared-state synchronization) in sim-state crate",
            "r7_sync_audit.rs:8:15: sync-audit: `AtomicU64` (shared-state synchronization) in sim-state crate",
        ]
    );
}

#[test]
fn r9_wrapping_cycle_golden() {
    assert_eq!(
        rendered("r9_wrapping_cycle.rs"),
        [
            "r9_wrapping_cycle.rs:5:11: wrapping-cycle-math: wrapping `wrapping_add` on address/cycle-typed expression (`cycle`)",
            "r9_wrapping_cycle.rs:9:15: wrapping-cycle-math: wrapping `wrapping_mul` on address/cycle-typed expression (`line_addr`)",
        ]
    );
}

/// R10 fires on both the chain form and the loop form; the `HashMap`
/// tokens themselves additionally trip R1, which the golden asserts too.
#[test]
fn r10_ordered_reduce_golden() {
    assert_eq!(
        rendered("r10_ordered_reduce.rs"),
        [
            "r10_ordered_reduce.rs:4:23: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r10_ordered_reduce.rs:6:24: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r10_ordered_reduce.rs:7:13: ordered-reduce: float reduction over unordered iteration (`weights.values()` feeding `.sum::<f64>()`)",
            "r10_ordered_reduce.rs:10:29: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r10_ordered_reduce.rs:12:22: ordered-reduce: float reduction over unordered iteration (`for … in weights.values()` accumulating floats)",
        ]
    );
}

#[test]
fn clean_file_has_no_findings() {
    assert_eq!(rendered("clean.rs"), [] as [String; 0]);
}

/// The allow-comment self-check: both comment placements (trailing, and
/// the line directly above) suppress their one site; the unannotated
/// duplicates of the same violations are still flagged.
#[test]
fn allow_comments_suppress_exactly_the_annotated_site() {
    assert_eq!(
        rendered("allowed.rs"),
        [
            "allowed.rs:12:14: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "allowed.rs:21:16: unwrap: `.unwrap()` in non-test library code",
        ]
    );
}

/// Regression (simlint v2): a standalone allow above an attribute — or a
/// chain of attributes — targets the item line below the chain.
#[test]
fn standalone_allow_skips_attribute_chains() {
    assert_eq!(
        rendered("allow_above_attr.rs"),
        ["allow_above_attr.rs:17:28: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)"]
    );
}

/// Regression (simlint v2): an inner `#![cfg(test)]` marks the whole file
/// as test code — the sim-state rules must stay silent below it.
#[test]
fn inner_cfg_test_attribute_masks_the_whole_file() {
    let findings = lint_fixture("mask_inner_attr.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

/// An allow comment that matches nothing is itself a finding — stale
/// annotations cannot linger after the code they excused is fixed.
#[test]
fn unused_and_malformed_allows_are_flagged() {
    let src = "// simlint: allow(unwrap, reason = \"nothing here unwraps\")\n\
               pub fn fine() -> u32 { 7 }\n\
               // simlint: allow(unwrap)\n\
               pub fn also_fine() -> u32 { 8 }\n";
    let findings = lint_source(src, &sim_state_ctx("unused.rs"), &Config::default());
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["unused-allow", "allow-syntax"], "{findings:?}");
}

/// The `simlint.toml` allowlist suppresses a rule for exactly the listed
/// path — the same source under any other path is still flagged.
#[test]
fn toml_allowlist_suppresses_exactly_the_listed_path() {
    let cfg = Config::parse(
        "[[allow]]\n\
         rule = \"wall-clock\"\n\
         path = \"crates/bench/\"\n\
         reason = \"bench timing loops measure wall time by definition\"\n",
    )
    .expect("valid config");
    let src = fixture("r2_wall_clock.rs");
    let allowed = FileCtx {
        sim_state: false,
        library: true,
        ..test_ctx("crates/bench/src/lib.rs")
    };
    let suppressed = lint_source(&src, &allowed, &cfg);
    assert!(suppressed.is_empty(), "{suppressed:?}");
    let other = test_ctx("tests/determinism.rs");
    assert_eq!(lint_source(&src, &other, &cfg).len(), 4);
}

/// Every seeded fixture violation is flagged with the expected rule(s).
#[test]
fn all_rules_fire_on_the_corpus() {
    for (file, rules) in [
        ("r1_nondet_map.rs", &["nondet-map"][..]),
        ("r3_narrowing_cast.rs", &["narrowing-cast"][..]),
        ("r4_unwrap.rs", &["unwrap"][..]),
        ("r5_float_cmp.rs", &["float-cmp"][..]),
        ("r6_scalar_access.rs", &["scalar-access"][..]),
        ("r7_sync_audit.rs", &["sync-audit"][..]),
        ("r9_wrapping_cycle.rs", &["wrapping-cycle-math"][..]),
        (
            "r10_ordered_reduce.rs",
            &["nondet-map", "ordered-reduce"][..],
        ),
    ] {
        let findings = lint_fixture(file);
        assert!(
            findings.iter().all(|f| rules.contains(&f.rule)) && !findings.is_empty(),
            "{file}: expected only {rules:?} findings, got {findings:?}"
        );
    }
}

/// Non-sim-state crates are exempt from R1/R3/R5/R6/R7/R9/R10 (R4 still
/// applies to library code).
#[test]
fn sim_state_rules_do_not_apply_outside_sim_state_crates() {
    for name in [
        "r1_nondet_map.rs",
        "r3_narrowing_cast.rs",
        "r5_float_cmp.rs",
        "r6_scalar_access.rs",
        "r7_sync_audit.rs",
        "r9_wrapping_cycle.rs",
        "r10_ordered_reduce.rs",
    ] {
        let ctx = FileCtx {
            sim_state: false,
            ..sim_state_ctx(name)
        };
        let findings = lint_source(&fixture(name), &ctx, &Config::default());
        assert!(findings.is_empty(), "{name}: {findings:?}");
    }
}

/// The JSON rendering is parseable-shaped and carries every field the CI
/// artifact consumers need.
#[test]
fn json_output_contains_locations_and_hints() {
    let findings = lint_fixture("r4_unwrap.rs");
    let json = simlint::findings_to_json(&findings);
    assert!(json.starts_with("[\n"), "{json}");
    assert!(json.contains(r#""rule":"unwrap""#), "{json}");
    assert!(json.contains(r#""line":4"#), "{json}");
    assert!(json.contains(r#""hint":"non-test library code"#), "{json}");
}
