//! Fixture corpus: one minimal bad file per rule plus a clean file, with
//! golden-output assertions, and self-checks that the allow-comment and
//! `simlint.toml` allowlist mechanisms suppress exactly the annotated
//! sites.

use simlint::{lint_source, Config, FileCtx, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Fixtures are linted as if they were sim-state library code.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let ctx = FileCtx {
        rel_path: name.to_string(),
        sim_state: true,
        library: true,
    };
    lint_source(&fixture(name), &ctx, &Config::default())
}

fn rendered(name: &str) -> Vec<String> {
    lint_fixture(name).iter().map(|f| f.render()).collect()
}

#[test]
fn r1_nondet_map_golden() {
    assert_eq!(
        rendered("r1_nondet_map.rs"),
        [
            "r1_nondet_map.rs:2:24: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:2:33: nondet-map: `HashSet` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:5:18: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "r1_nondet_map.rs:6:15: nondet-map: `HashSet` in sim-state crate (iteration order is nondeterministic)",
        ]
    );
}

#[test]
fn r2_wall_clock_golden() {
    assert_eq!(
        rendered("r2_wall_clock.rs"),
        [
            "r2_wall_clock.rs:2:17: wall-clock: `Instant` (wall-clock/ambient randomness) in sim-state crate",
            "r2_wall_clock.rs:2:26: wall-clock: `SystemTime` (wall-clock/ambient randomness) in sim-state crate",
            "r2_wall_clock.rs:5:17: wall-clock: `Instant` (wall-clock/ambient randomness) in sim-state crate",
            "r2_wall_clock.rs:6:13: wall-clock: `SystemTime` (wall-clock/ambient randomness) in sim-state crate",
        ]
    );
}

#[test]
fn r3_narrowing_cast_golden() {
    assert_eq!(
        rendered("r3_narrowing_cast.rs"),
        [
            "r3_narrowing_cast.rs:5:16: narrowing-cast: narrowing cast `as usize` on address/cycle-typed expression (`line_addr`)",
            "r3_narrowing_cast.rs:9:12: narrowing-cast: narrowing cast `as u32` on address/cycle-typed expression (`cycles`)",
            "r3_narrowing_cast.rs:13:20: narrowing-cast: narrowing cast `as u16` on address/cycle-typed expression (`row`)",
        ]
    );
}

#[test]
fn r4_unwrap_golden() {
    assert_eq!(
        rendered("r4_unwrap.rs"),
        [
            "r4_unwrap.rs:4:16: unwrap: `.unwrap()` in non-test library code",
            "r4_unwrap.rs:8:15: unwrap: `.expect()` in non-test library code",
        ]
    );
}

#[test]
fn r5_float_cmp_golden() {
    assert_eq!(
        rendered("r5_float_cmp.rs"),
        [
            "r5_float_cmp.rs:5:10: float-cmp: float comparison `>` in sim-state crate",
            "r5_float_cmp.rs:9:10: float-cmp: float comparison `==` in sim-state crate",
        ]
    );
}

#[test]
fn r6_scalar_access_golden() {
    assert_eq!(
        rendered("r6_scalar_access.rs"),
        [
            "r6_scalar_access.rs:5:12: scalar-access: scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)",
            "r6_scalar_access.rs:12:8: scalar-access: scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)",
        ]
    );
}

#[test]
fn clean_file_has_no_findings() {
    assert_eq!(rendered("clean.rs"), [] as [String; 0]);
}

/// The allow-comment self-check: both comment placements (trailing, and
/// the line directly above) suppress their one site; the unannotated
/// duplicates of the same violations are still flagged.
#[test]
fn allow_comments_suppress_exactly_the_annotated_site() {
    assert_eq!(
        rendered("allowed.rs"),
        [
            "allowed.rs:12:14: nondet-map: `HashMap` in sim-state crate (iteration order is nondeterministic)",
            "allowed.rs:21:16: unwrap: `.unwrap()` in non-test library code",
        ]
    );
}

/// An allow comment that matches nothing is itself a finding — stale
/// annotations cannot linger after the code they excused is fixed.
#[test]
fn unused_and_malformed_allows_are_flagged() {
    let ctx = FileCtx {
        rel_path: "unused.rs".to_string(),
        sim_state: true,
        library: true,
    };
    let src = "// simlint: allow(unwrap, reason = \"nothing here unwraps\")\n\
               pub fn fine() -> u32 { 7 }\n\
               // simlint: allow(unwrap)\n\
               pub fn also_fine() -> u32 { 8 }\n";
    let findings = lint_source(src, &ctx, &Config::default());
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["allow-syntax", "unused-allow"], "{findings:?}");
}

/// The `simlint.toml` allowlist suppresses a rule for exactly the listed
/// path — the same source under any other path is still flagged.
#[test]
fn toml_allowlist_suppresses_exactly_the_listed_path() {
    let cfg = Config::parse(
        "[[allow]]\n\
         rule = \"wall-clock\"\n\
         path = \"crates/sim/src/harness.rs\"\n\
         reason = \"observability only\"\n",
    )
    .expect("valid config");
    let src = fixture("r2_wall_clock.rs");
    let allowed = FileCtx {
        rel_path: "crates/sim/src/harness.rs".to_string(),
        sim_state: true,
        library: true,
    };
    let suppressed = lint_source(&src, &allowed, &cfg);
    assert!(suppressed.is_empty(), "{suppressed:?}");
    let other = FileCtx {
        rel_path: "crates/sim/src/machine.rs".to_string(),
        ..allowed
    };
    assert_eq!(lint_source(&src, &other, &cfg).len(), 4);
}

/// Every seeded fixture violation is flagged — all six rules fire.
#[test]
fn all_six_rules_fire_on_the_corpus() {
    for (file, rule) in [
        ("r1_nondet_map.rs", "nondet-map"),
        ("r2_wall_clock.rs", "wall-clock"),
        ("r3_narrowing_cast.rs", "narrowing-cast"),
        ("r4_unwrap.rs", "unwrap"),
        ("r5_float_cmp.rs", "float-cmp"),
        ("r6_scalar_access.rs", "scalar-access"),
    ] {
        let findings = lint_fixture(file);
        assert!(
            findings.iter().all(|f| f.rule == rule) && !findings.is_empty(),
            "{file}: expected only `{rule}` findings, got {findings:?}"
        );
    }
}

/// Non-sim-state crates are exempt from R1/R2/R3/R5 (R4 still applies).
#[test]
fn sim_state_rules_do_not_apply_outside_sim_state_crates() {
    let ctx = FileCtx {
        rel_path: "crates/bench/src/lib.rs".to_string(),
        sim_state: false,
        library: true,
    };
    let src = fixture("r2_wall_clock.rs");
    let findings = lint_source(&src, &ctx, &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}

/// The JSON rendering is parseable-shaped and carries every field the CI
/// artifact consumers need.
#[test]
fn json_output_contains_locations_and_hints() {
    let findings = lint_fixture("r4_unwrap.rs");
    let json = simlint::findings_to_json(&findings);
    assert!(json.starts_with("[\n"), "{json}");
    assert!(json.contains(r#""rule":"unwrap""#), "{json}");
    assert!(json.contains(r#""line":4"#), "{json}");
    assert!(json.contains(r#""hint":"non-test library code"#), "{json}");
}
