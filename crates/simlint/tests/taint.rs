//! Cross-file pass integration tests: the two-file taint pair and a
//! two-file `panic-in-worker` boundary, exercised through the public
//! `analyze_source` + `finalize` pipeline exactly as `check` does.

use simlint::{analyze_source, finalize, rules, Config, FileAnalysis, FileCtx, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn sim_ctx(rel_path: &str) -> FileCtx {
    FileCtx {
        rel_path: rel_path.to_string(),
        sim_state: true,
        library: true,
        test_like: false,
    }
}

fn lint_pair(files: &[(&str, &str)]) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(fixture_name, rel)| analyze_source(&fixture(fixture_name), &sim_ctx(rel)))
        .collect();
    finalize(&analyses, &Config::default()).findings
}

/// `stamp` in worker.rs is reachable from `emit` in emit.rs, which calls
/// the `write_report` sink — its wall-clock sources are flagged with a
/// chain that names both files. `idle_stamp` only feeds a stderr progress
/// line and stays silent.
#[test]
fn two_file_pair_flags_only_the_sink_reaching_source() {
    let findings = lint_pair(&[
        ("taint_worker.rs", "crates/sim/src/worker.rs"),
        ("taint_emit.rs", "crates/sim/src/emit.rs"),
    ]);
    let taint: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == rules::RULE_TAINT)
        .collect();
    assert!(!taint.is_empty(), "no taint findings: {findings:?}");
    for f in &taint {
        assert_eq!(f.path, "crates/sim/src/worker.rs", "{f:?}");
        // `stamp` spans lines 6..=9; `idle_stamp` (11..) must stay clean.
        assert!((6..=9).contains(&f.line), "flagged outside `stamp`: {f:?}");
        assert!(
            f.message.contains("can reach result sink `write_report`"),
            "{f:?}"
        );
        // The chain crosses into emit.rs and ends at the sink call.
        assert!(
            f.flow.iter().any(|s| s.path == "crates/sim/src/emit.rs"),
            "flow does not cross files: {f:?}"
        );
        assert!(
            f.flow
                .iter()
                .any(|s| s.note.contains("emits via `write_report(")),
            "flow does not end at the sink: {f:?}"
        );
    }
}

/// Removing the sink call breaks the chain: the same pair with `emit`
/// writing to stderr instead produces no taint findings at all.
#[test]
fn pair_without_a_sink_is_silent() {
    let worker = analyze_source(
        &fixture("taint_worker.rs"),
        &sim_ctx("crates/sim/src/worker.rs"),
    );
    let no_sink = "pub fn emit() { let v = crate::worker::stamp(); eprintln!(\"{v}\"); }\n";
    let emit = analyze_source(no_sink, &sim_ctx("crates/sim/src/emit.rs"));
    let findings = finalize(&[worker, emit], &Config::default()).findings;
    assert!(
        findings.iter().all(|f| f.rule != rules::RULE_TAINT),
        "{findings:?}"
    );
}

/// A `.lock().unwrap()` hazard in a helper called from inside a
/// `catch_unwind`-bearing function is flagged as `panic-in-worker`, with
/// the boundary function named in the message.
#[test]
fn panic_hazard_across_files_is_flagged() {
    let root = "pub fn isolate() -> u64 {\n\
                \x20   let _ = std::panic::catch_unwind(|| 0u64);\n\
                \x20   crate::shared::merge()\n\
                }\n";
    let shared = "pub fn merge() -> u64 {\n\
                  \x20   let m = std::sync::Mutex::new(7u64);\n\
                  \x20   let v = *m.lock().unwrap();\n\
                  \x20   v\n\
                  }\n";
    let analyses = [
        analyze_source(root, &sim_ctx("crates/sim/src/root.rs")),
        analyze_source(shared, &sim_ctx("crates/sim/src/shared.rs")),
    ];
    let findings = finalize(&analyses, &Config::default()).findings;
    let hazards: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == rules::RULE_PANIC_WORKER)
        .collect();
    assert_eq!(hazards.len(), 1, "{findings:?}");
    let f = hazards[0];
    assert_eq!(f.path, "crates/sim/src/shared.rs");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("`isolate`"), "{f:?}");
}
