//! `simlint fix`: removes unused allow comments (whole line or trailing)
//! and stale `simlint.toml` entries, with `--dry-run` leaving everything
//! untouched.

use std::fs;
use std::path::{Path, PathBuf};

fn mini_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/sim/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(
        src.join("lib.rs"),
        "// simlint: allow(nondet-map, reason = \"nothing here uses a map any more\")\n\
         pub fn fine() -> u32 { 7 }\n\
         pub fn also_fine() -> u32 { 8 } // simlint: allow(unwrap, reason = \"stale trailing allow\")\n",
    )
    .unwrap();
    fs::write(
        root.join("simlint.toml"),
        "# The harness used to read the wall clock; the entry outlived it.\n\
         [[allow]]\n\
         rule = \"wall-clock\"\n\
         path = \"crates/sim/src/harness.rs\"\n\
         reason = \"stale entry\"\n\
         \n\
         # Still used: suppresses the seeded violation below.\n\
         [[allow]]\n\
         rule = \"float-cmp\"\n\
         path = \"crates/sim/src/cmp.rs\"\n\
         reason = \"live entry\"\n",
    )
    .unwrap();
    fs::write(
        src.join("cmp.rs"),
        "pub fn hot(util: f64) -> bool { util > 0.95 }\n",
    )
    .unwrap();
    root
}

#[test]
fn dry_run_reports_but_does_not_edit() {
    let root = mini_workspace("simlint-fix-dry");
    let lib_before = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    let cfg_before = fs::read_to_string(root.join("simlint.toml")).unwrap();

    let report = simlint::fix::run(&root, true).unwrap();
    assert_eq!(report.allows_removed, 2, "{:?}", report.diff);
    assert_eq!(report.config_entries_removed, 1, "{:?}", report.diff);
    assert!(!report.diff.is_empty());

    assert_eq!(
        fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap(),
        lib_before
    );
    assert_eq!(
        fs::read_to_string(root.join("simlint.toml")).unwrap(),
        cfg_before
    );
}

#[test]
fn fix_removes_unused_allows_and_stale_config_entries() {
    let root = mini_workspace("simlint-fix-apply");
    let report = simlint::fix::run(&root, false).unwrap();
    assert_eq!(report.allows_removed, 2, "{:?}", report.diff);
    assert_eq!(report.config_entries_removed, 1, "{:?}", report.diff);

    let lib = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(!lib.contains("simlint: allow"), "{lib}");
    // The whole standalone comment line went away; the trailing comment
    // left its code line behind.
    assert!(lib.starts_with("pub fn fine"), "{lib}");
    assert!(lib.contains("pub fn also_fine() -> u32 { 8 }\n"), "{lib}");

    let cfg = fs::read_to_string(root.join("simlint.toml")).unwrap();
    assert!(!cfg.contains("wall-clock"), "{cfg}");
    assert!(
        !cfg.contains("outlived"),
        "stale entry's comment kept: {cfg}"
    );
    assert!(cfg.contains("float-cmp"), "{cfg}");

    // After the fix, the workspace is clean and a second fix is a no-op.
    let findings = simlint::check(&root).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
    let again = simlint::fix::run(&root, false).unwrap();
    assert_eq!(again.allows_removed, 0);
    assert_eq!(again.config_entries_removed, 0);
}
