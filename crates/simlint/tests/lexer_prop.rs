//! Property test for the lexer: token positions round-trip. Sources are
//! assembled from a SplitMix64-driven stream of fragments; for every
//! token the lexer emits, the source text at (line, col) must start with
//! the token's text, and concatenating the token texts must recover the
//! source modulo whitespace. Seeds are fixed, so the test is
//! deterministic.

use simlint::lexer::{lex, TokKind};

/// SplitMix64 — the same tiny generator the simulator uses for seeding;
/// reimplemented inline so the linter crate stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[(self.next() % options.len() as u64) as usize]
    }
}

const FRAGMENTS: &[&str] = &[
    "foo",
    "Instant",
    "x1",
    "_",
    "42",
    "0x1F",
    "0b1010",
    "3.25",
    "1e9",
    "7f64",
    "\"a str\"",
    "\"esc \\\" quote\"",
    "r\"raw\"",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'a",
    "'static",
    "::",
    ".",
    "..=",
    "+=",
    "->",
    "=>",
    "==",
    "<<",
    ";",
    ",",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "#",
    "&",
    "?",
    "// line comment\n",
    "/* block */",
    "/* multi\nline */",
];

const SEPARATORS: &[&str] = &[" ", "  ", "\n", "\t", " \n "];

#[test]
fn token_positions_round_trip_under_splitmix_fuzz() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let mut src = String::new();
        let mut expected: Vec<&str> = Vec::new();
        for _ in 0..200 {
            let frag = rng.pick(FRAGMENTS);
            expected.push(frag);
            src.push_str(frag);
            src.push_str(rng.pick(SEPARATORS));
        }

        let toks = lex(&src);
        let lines: Vec<&str> = src.split('\n').collect();

        // Position property: every token's (line, col) points at its own
        // text (first line of it, for multi-line tokens).
        for t in &toks {
            let line = lines
                .get(t.line as usize - 1)
                .unwrap_or_else(|| panic!("seed {seed}: token line {} out of range", t.line));
            let at: String = line.chars().skip(t.col as usize - 1).collect();
            let head = t.text.split('\n').next().unwrap();
            assert!(
                at.starts_with(head),
                "seed {seed}: token {:?} at {}:{} does not match source slice {:?}",
                t.text,
                t.line,
                t.col,
                at
            );
        }

        // Round-trip property: token texts (whitespace aside) are exactly
        // the fragments that built the source, in order.
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        let expected_trimmed: Vec<&str> =
            expected.iter().map(|f| f.trim_end_matches('\n')).collect();
        assert_eq!(texts, expected_trimmed, "seed {seed}");

        // Classification sanity on the known fragments.
        for t in &toks {
            match t.text.as_str() {
                "Instant" | "foo" | "x1" | "_" | "r#match" => assert_eq!(t.kind, TokKind::Ident),
                "3.25" | "1e9" | "7f64" => {
                    assert_eq!(t.kind, TokKind::Num { float: true }, "{:?}", t.text)
                }
                "42" | "0x1F" | "0b1010" => {
                    assert_eq!(t.kind, TokKind::Num { float: false }, "{:?}", t.text)
                }
                "'a" | "'static" => assert_eq!(t.kind, TokKind::Lifetime, "{:?}", t.text),
                _ => {}
            }
        }
    }
}

/// The lexer never panics and never loses position monotonicity, even on
/// adversarial raw bytes (quotes, stray backslashes, unterminated
/// literals).
#[test]
fn lexer_is_total_on_adversarial_input() {
    let alphabet: Vec<char> = "ab1_\"'\\/*{}()#.:;\n r".chars().collect();
    for seed in 0..32u64 {
        let mut rng = SplitMix64(seed + 0xDEAD_BEEF);
        let src: String = (0..300)
            .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
            .collect();
        let toks = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &toks {
            assert!(
                t.line > prev.0 || (t.line == prev.0 && t.col > prev.1),
                "seed {seed}: non-monotonic position {}:{} after {}:{}",
                t.line,
                t.col,
                prev.0,
                prev.1
            );
            prev = (t.line, t.col);
        }
    }
}
