//! Machine-output schema checks: `--json` and `--sarif` renderings must
//! parse as JSON (round-tripped through the workspace's own parser) and
//! carry the fields CI consumers rely on — the problem matcher, the
//! artifact uploader, and SARIF ingestion.

use simlint::{lint_source, Config, FileCtx, Finding};
use xmem_sim::report_sink::JsonValue;

fn findings() -> Vec<Finding> {
    let src = "use std::collections::HashMap;\n\
               pub struct S { pub m: HashMap<u64, u64> }\n\
               pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let ctx = FileCtx {
        rel_path: "crates/sim/src/x.rs".to_string(),
        sim_state: true,
        library: true,
        test_like: false,
    };
    lint_source(src, &ctx, &Config::default())
}

#[test]
fn json_output_parses_and_has_the_contracted_fields() {
    let findings = findings();
    assert!(!findings.is_empty());
    let json = simlint::findings_to_json(&findings);
    let parsed = JsonValue::parse(&json).expect("findings JSON must parse");
    let arr = parsed.as_array().expect("top level is an array");
    assert_eq!(arr.len(), findings.len());
    for (v, f) in arr.iter().zip(&findings) {
        assert_eq!(
            v.get("path").and_then(JsonValue::as_str),
            Some(f.path.as_str())
        );
        assert_eq!(
            v.get("line").and_then(JsonValue::as_u64),
            Some(f.line as u64)
        );
        assert_eq!(v.get("col").and_then(JsonValue::as_u64), Some(f.col as u64));
        assert_eq!(v.get("rule").and_then(JsonValue::as_str), Some(f.rule));
        assert_eq!(
            v.get("message").and_then(JsonValue::as_str),
            Some(f.message.as_str())
        );
        let id = v.get("id").and_then(JsonValue::as_str).expect("id present");
        assert_eq!(id.len(), 16, "stable 16-hex-digit fingerprint: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        assert!(v.get("hint").is_some());
        assert!(v.get("flow").and_then(JsonValue::as_array).is_some());
    }
}

#[test]
fn sarif_output_parses_and_matches_the_2_1_0_shape() {
    let findings = findings();
    let sarif = simlint::to_sarif(&findings);
    let parsed = JsonValue::parse(&sarif).expect("SARIF must parse");

    assert_eq!(
        parsed.get("version").and_then(JsonValue::as_str),
        Some("2.1.0")
    );
    let runs = parsed
        .get("runs")
        .and_then(JsonValue::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);
    let run = &runs[0];

    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(JsonValue::as_str),
        Some("simlint")
    );
    let rules = driver
        .get("rules")
        .and_then(JsonValue::as_array)
        .expect("driver.rules");
    assert!(!rules.is_empty());

    let results = run
        .get("results")
        .and_then(JsonValue::as_array)
        .expect("results array");
    assert_eq!(results.len(), findings.len());
    for (r, f) in results.iter().zip(&findings) {
        assert_eq!(
            r.get("ruleId").and_then(JsonValue::as_str),
            Some(f.rule),
            "{r:?}"
        );
        // Every result's ruleId must be declared in the driver's rules.
        assert!(
            rules
                .iter()
                .any(|rule| rule.get("id").and_then(JsonValue::as_str) == Some(f.rule)),
            "undeclared ruleId {}",
            f.rule
        );
        let loc = r
            .get("locations")
            .and_then(JsonValue::as_array)
            .and_then(|l| l.first())
            .expect("one location");
        let phys = loc.get("physicalLocation").expect("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(JsonValue::as_str),
            Some(f.path.as_str())
        );
        assert_eq!(
            phys.get("region")
                .and_then(|g| g.get("startLine"))
                .and_then(JsonValue::as_u64),
            Some(f.line as u64)
        );
        let fp = r
            .get("partialFingerprints")
            .and_then(|p| p.get("simlint/v1"))
            .and_then(JsonValue::as_str)
            .expect("stable fingerprint");
        assert_eq!(fp, f.id);
    }
}

/// The renderings are a pure function of the findings: two invocations
/// produce byte-identical reports (the CI artifact is diffable).
#[test]
fn machine_output_is_byte_stable() {
    let a = findings();
    let b = findings();
    assert_eq!(simlint::findings_to_json(&a), simlint::findings_to_json(&b));
    assert_eq!(simlint::to_sarif(&a), simlint::to_sarif(&b));
}
