//! Seeded violation for R5 (`float-cmp`): float comparison in a
//! timing/scheduling decision.

pub fn throttle(util: f64) -> bool {
    util > 0.95
}

pub fn is_idle(rate: f64) -> bool {
    rate == 0.0
}

/// Not flagged: integer comparison, and a float compared against an
/// integer-typed expression.
pub fn fine(cycles: u64, limit: u64) -> bool {
    cycles < limit
}
