//! Seeded violation for R1 (`nondet-map`): HashMap/HashSet in sim state.
use std::collections::{HashMap, HashSet};

pub struct State {
    pub by_addr: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
}

// The string and the comment must NOT be flagged: "HashMap" / HashSet
pub const DOC: &str = "HashMap";

#[cfg(test)]
mod tests {
    // Test code is exempt: deliberate HashMap use for assertions.
    use std::collections::HashMap;

    #[test]
    fn distinct() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
