//! Half of the two-file taint pair: the nondeterminism sources. Linted as
//! `crates/sim/src/worker.rs` together with `taint_emit.rs` — `stamp` is
//! reachable from a sink-reaching caller over there and must be flagged;
//! `idle_stamp` is only ever consumed by a stderr progress line and must
//! not be.
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn idle_stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
