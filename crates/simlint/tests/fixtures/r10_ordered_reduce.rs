//! Seeded violation for R10 (`ordered-reduce`): float reductions over
//! unordered container iteration (also trips R1 on the HashMap tokens —
//! the golden test asserts both).
use std::collections::HashMap;

pub fn total(weights: &HashMap<u64, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn accumulate(weights: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for w in weights.values() {
        acc += w * 0.5;
    }
    acc
}
