//! Seeded violation for R2 (`wall-clock`): ambient time in sim state.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_nanos()
}
