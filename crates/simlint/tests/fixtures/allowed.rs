//! Allow-comment mechanics: each annotated site is suppressed, and ONLY
//! the annotated site — the unannotated duplicates below must still be
//! flagged.
use std::collections::HashMap; // simlint: allow(nondet-map, reason = "lookup-only cache, never iterated")

pub struct Suppressed {
    // simlint: allow(nondet-map, reason = "lookup-only cache, never iterated")
    pub fine: HashMap<u64, u64>,
}

pub struct StillFlagged {
    pub bad: HashMap<u64, u64>,
}

pub fn annotated(v: &[u32]) -> u32 {
    // simlint: allow(unwrap, reason = "caller guarantees non-empty input")
    *v.first().unwrap()
}

pub fn not_annotated(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
