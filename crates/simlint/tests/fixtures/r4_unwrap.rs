//! Seeded violation for R4 (`unwrap`): implicit panics in library code.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parsed(s: &str) -> u32 {
    s.parse().expect("numeric input")
}

/// Not flagged: `unwrap_or` family is total, not panicking.
pub fn safe(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
