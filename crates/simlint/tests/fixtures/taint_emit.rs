//! Half of the two-file taint pair: the result sink. `emit` reaches
//! `write_report`, so the `stamp` source in `taint_worker.rs` is tainted;
//! `progress` only prints to stderr, so `idle_stamp` is not.
pub fn emit(out: &mut String) {
    let v = crate::worker::stamp();
    write_report(out, v);
}

pub fn progress() {
    let v = crate::worker::idle_stamp();
    eprintln!("idle for {v} ns");
}

fn write_report(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}
