// R6 fixture: scalar `fn access(` definitions in a sim-state crate.
pub struct Widget;

impl Widget {
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> u64 {
        let _ = (addr, is_write);
        now
    }
}

pub trait OldModel {
    fn access(&mut self, addr: u64, is_write: bool, now: u64) -> u64;
}

// Not flagged: different name, and `access` used as a call, not a definition.
pub fn serve(w: &mut Widget, addr: u64) -> u64 {
    w.access(addr, false, 0)
}

pub fn accessor() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    // Test code is exempt, like every other rule.
    fn access(x: u64) -> u64 {
        x
    }

    #[test]
    fn ok() {
        assert_eq!(access(1), 1);
    }
}
