#![cfg(test)]
//! Regression fixture: an *inner* `#![cfg(test)]` marks the whole file as
//! test code, so the sim-state rules must not fire on anything below.
use std::collections::HashMap;

pub fn lookup() -> HashMap<u64, u64> {
    let now = std::time::Instant::now();
    let _ = now.elapsed();
    HashMap::new()
}
