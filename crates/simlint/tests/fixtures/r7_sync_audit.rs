//! Seeded violation for R7 (`sync-audit`): shared-state synchronization
//! primitives in sim-state code.
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub struct Shared {
    pub slot: Mutex<u64>,
    pub hits: AtomicU64,
}
