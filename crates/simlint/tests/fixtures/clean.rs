//! A clean file: deterministic containers, checked narrowing, typed
//! errors, integer comparisons. Zero findings expected.
use std::collections::BTreeMap;

pub struct State {
    pub by_addr: BTreeMap<u64, u64>,
}

pub fn set_index(line_addr: u64, sets: usize) -> Result<usize, &'static str> {
    usize::try_from(line_addr)
        .map(|line| line & (sets - 1))
        .map_err(|_| "address does not fit")
}

pub fn busy(done: u64, total: u64) -> bool {
    done < total
}
