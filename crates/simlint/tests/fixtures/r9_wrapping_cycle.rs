//! Seeded violation for R9 (`wrapping-cycle-math`): wrapping arithmetic
//! on address/cycle-typed expressions silently truncates exactly the
//! overflow that `overflow-checks = true` exists to catch.
pub fn advance(cycle: u64, delta: u64) -> u64 {
    cycle.wrapping_add(delta)
}

pub fn fold(line_addr: u64) -> u64 {
    line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn untyped_is_fine(x: u64) -> u64 {
    x.wrapping_add(1)
}
