//! Seeded violation for R3 (`narrowing-cast`): silent truncation of
//! address/cycle-typed expressions.

pub fn set_index(line_addr: u64, sets: usize) -> usize {
    (line_addr as usize) & (sets - 1)
}

pub fn bucket(cycles: u64) -> u32 {
    cycles as u32
}

pub fn row_bits(row: u64) -> u16 {
    (row & 0xffff) as u16
}

/// Not flagged: the operand has no address/cycle vocabulary, and the
/// widening direction is always fine.
pub fn benign(count: u32, line_addr: u32) -> (usize, u64) {
    (count as usize, line_addr as u64)
}
