//! Regression fixture: a standalone allow comment above an attribute (or
//! a chain of attributes) targets the *item* line, not the attribute.
pub struct Cache {
    // simlint: allow(nondet-map, reason = "lookup-only cache, never iterated")
    #[allow(dead_code)]
    map: std::collections::HashMap<u64, u64>,
}

pub struct Chained {
    // simlint: allow(nondet-map, reason = "the allow skips the whole attribute chain")
    #[allow(dead_code)]
    #[doc(hidden)]
    map: std::collections::HashMap<u64, u64>,
}

pub struct Unannotated {
    map: std::collections::HashMap<u64, u64>,
}
