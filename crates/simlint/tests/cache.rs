//! Incremental-cache equivalence: a warm run must produce byte-identical
//! findings to a cold run, must actually hit the cache, and must
//! invalidate on content change. Runs against a miniature workspace under
//! `CARGO_TARGET_TMPDIR`.

use std::fs;
use std::path::{Path, PathBuf};

fn mini_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/sim/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(
        src.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub struct S { pub m: HashMap<u64, u64> }\n\
         pub fn stamp() -> u64 {\n\
         \x20   let t = std::time::Instant::now();\n\
         \x20   t.elapsed().as_nanos() as u64\n\
         }\n\
         pub fn emit(out: &mut String) {\n\
         \x20   write_report(out, stamp());\n\
         }\n\
         fn write_report(out: &mut String, v: u64) { out.push_str(&v.to_string()); }\n",
    )
    .unwrap();
    root
}

fn render_all(findings: &[simlint::Finding]) -> String {
    findings
        .iter()
        .map(|f| f.render_with_hint())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn warm_run_is_byte_identical_to_cold_and_invalidates_on_edit() {
    let root = mini_workspace("simlint-cache-test");

    let cold = simlint::check_full(&root, false).unwrap();
    assert!(
        !cold.findings.is_empty(),
        "the mini workspace should produce findings"
    );

    // First cached run analyzes from scratch and writes the cache file.
    let warm1 = simlint::check_full(&root, true).unwrap();
    let cache_file = root
        .join("target/simlint")
        .join(format!("cache.v{}.txt", simlint::rules::RULES_VERSION));
    assert!(cache_file.is_file(), "cache file not written");

    // Second cached run replays the cached analysis. Same bytes — IDs,
    // flows, hints, ordering.
    let warm2 = simlint::check_full(&root, true).unwrap();
    assert_eq!(render_all(&cold.findings), render_all(&warm1.findings));
    assert_eq!(render_all(&warm1.findings), render_all(&warm2.findings));
    let json_cold = simlint::findings_to_json(&cold.findings);
    let json_warm = simlint::findings_to_json(&warm2.findings);
    assert_eq!(json_cold, json_warm);

    // A hit must actually come from the cache: poison the cached message
    // and confirm the poisoned text is replayed verbatim on the next warm
    // run (proof the file was not re-analyzed) …
    let poisoned = fs::read_to_string(&cache_file)
        .unwrap()
        .replace("`HashMap` in sim-state crate", "`HashMap` FROM-THE-CACHE");
    fs::write(&cache_file, poisoned).unwrap();
    let warm3 = simlint::check_full(&root, true).unwrap();
    assert!(
        render_all(&warm3.findings).contains("FROM-THE-CACHE"),
        "cached analysis was not replayed:\n{}",
        render_all(&warm3.findings)
    );

    // … and editing the source must invalidate the poisoned entry.
    let lib = root.join("crates/sim/src/lib.rs");
    let edited = fs::read_to_string(&lib).unwrap() + "// touched\n";
    fs::write(&lib, edited).unwrap();
    let warm4 = simlint::check_full(&root, true).unwrap();
    assert!(
        !render_all(&warm4.findings).contains("FROM-THE-CACHE"),
        "stale cache entry survived a content change"
    );
    assert_eq!(render_all(&warm4.findings), render_all(&cold.findings));
}

/// A corrupt cache file must never break (or change) a run.
#[test]
fn corrupt_cache_falls_back_to_cold_analysis() {
    let root = mini_workspace("simlint-cache-corrupt");
    let cold = simlint::check_full(&root, false).unwrap();

    let dir = root.join("target/simlint");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join(format!("cache.v{}.txt", simlint::rules::RULES_VERSION)),
        "file crates/sim/src/lib.rs NOT-A-HASH\ngarbage garbage\nend\n",
    )
    .unwrap();

    let warm = simlint::check_full(&root, true).unwrap();
    assert_eq!(render_all(&cold.findings), render_all(&warm.findings));
}
