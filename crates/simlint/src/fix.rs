//! `simlint fix` — mechanical cleanup of stale suppressions.
//!
//! Two kinds of edits, both derived from a full workspace lint:
//!
//! * `unused-allow` findings → the dead `// simlint: allow(...)` comment
//!   is removed (the whole line when nothing else is on it, otherwise
//!   just the trailing comment);
//! * `simlint.toml` `[[allow]]` entries that suppressed nothing anywhere
//!   → the entry is removed together with its contiguous preceding
//!   comment block.
//!
//! `dry_run` computes the same edits and renders them as a diff without
//! touching any file.

use std::path::Path;

use crate::{rules, Config};

#[derive(Debug, Default)]
pub struct FixReport {
    /// Human-readable diff lines (`--- path`, `-/+` hunks).
    pub diff: Vec<String>,
    pub allows_removed: usize,
    pub config_entries_removed: usize,
    pub files_changed: usize,
}

pub fn run(root: &Path, dry_run: bool) -> Result<FixReport, String> {
    let outcome = crate::check_full(root, true)?;
    let mut report = FixReport::default();

    // Group unused-allow findings by file; edit bottom-up so earlier
    // removals don't shift later line numbers.
    let mut by_file: Vec<(String, Vec<(u32, u32)>)> = Vec::new();
    for f in &outcome.findings {
        if f.rule != rules::RULE_UNUSED_ALLOW {
            continue;
        }
        match by_file.iter_mut().find(|(p, _)| *p == f.path) {
            Some((_, sites)) => sites.push((f.line, f.col)),
            None => by_file.push((f.path.clone(), vec![(f.line, f.col)])),
        }
    }

    for (rel, mut sites) in by_file {
        sites.sort_unstable();
        sites.reverse();
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{rel}: {e}"))?;
        let had_trailing_newline = src.ends_with('\n');
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        let mut file_diff: Vec<String> = Vec::new();
        for (line, col) in sites {
            let idx = line as usize - 1;
            let Some(text) = lines.get(idx).cloned() else {
                continue;
            };
            // The finding's col points at the comment start (1-based,
            // chars).
            let byte = text
                .char_indices()
                .nth(col as usize - 1)
                .map(|(b, _)| b)
                .unwrap_or(text.len());
            if !text[byte..].starts_with("//") {
                continue; // line changed since analysis; don't guess
            }
            let kept = text[..byte].trim_end().to_string();
            file_diff.push(format!("-{}", text));
            if kept.is_empty() {
                lines.remove(idx);
            } else {
                file_diff.push(format!("+{}", kept));
                lines[idx] = kept;
            }
            report.allows_removed += 1;
        }
        if file_diff.is_empty() {
            continue;
        }
        report.diff.push(format!("--- {}", rel));
        report.diff.extend(file_diff);
        report.files_changed += 1;
        if !dry_run {
            let mut out = lines.join("\n");
            if had_trailing_newline {
                out.push('\n');
            }
            std::fs::write(&abs, out).map_err(|e| format!("{rel}: {e}"))?;
        }
    }

    if !outcome.stale_config.is_empty() {
        let cfg_path = root.join("simlint.toml");
        if let Ok(text) = std::fs::read_to_string(&cfg_path) {
            let cfg = Config::parse(&text)?;
            let lines: Vec<&str> = text.lines().collect();
            let mut drop = vec![false; lines.len()];
            for &idx in &outcome.stale_config {
                let Some(entry) = cfg.entries().get(idx) else {
                    continue;
                };
                // Spans are 1-based inclusive. The comment block directly
                // above the entry explains it; it goes too, along with one
                // separating blank line.
                let (start, end) = entry.span;
                let mut first = start - 1; // 0-based index of the [[allow]] line
                while first > 0 && lines[first - 1].trim_start().starts_with('#') {
                    first -= 1;
                }
                if first > 0 && lines[first - 1].trim().is_empty() {
                    first -= 1;
                }
                for d in drop.iter_mut().take(end).skip(first) {
                    *d = true;
                }
                report.config_entries_removed += 1;
                report.diff.push(format!(
                    "--- simlint.toml (stale entry: rule={} path={})",
                    entry.rule, entry.path
                ));
                for line in lines.iter().take(end).skip(first) {
                    report.diff.push(format!("-{}", line));
                }
            }
            if report.config_entries_removed > 0 {
                report.files_changed += 1;
                if !dry_run {
                    let kept: Vec<&str> = lines
                        .iter()
                        .zip(&drop)
                        .filter(|(_, d)| !**d)
                        .map(|(l, _)| *l)
                        .collect();
                    let mut out = kept.join("\n");
                    if text.ends_with('\n') {
                        out.push('\n');
                    }
                    std::fs::write(&cfg_path, out).map_err(|e| e.to_string())?;
                }
            }
        }
    }

    Ok(report)
}
