//! CLI for simlint.
//!
//! ```text
//! simlint check [--json|--sarif] [--no-cache] [--root DIR]
//! simlint fix [--dry-run] [--root DIR]
//! ```
//!
//! Exit codes: 0 clean (or fix applied), 1 findings remain, 2
//! usage/config error. `check` uses the incremental cache under
//! `target/simlint/` by default; `--no-cache` forces a cold run.

use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: simlint check [--json|--sarif] [--no-cache] [--root DIR]\n       \
         simlint fix [--dry-run] [--root DIR]\n\n  \
         --json      machine-readable findings on stdout (one JSON array)\n  \
         --sarif     SARIF 2.1.0 findings on stdout\n  \
         --no-cache  ignore and bypass the incremental cache\n  \
         --dry-run   show the edits `fix` would make without writing them\n  \
         --root      workspace root to lint (default: current directory)"
    );
    exit(2)
}

fn main() {
    let mut json = false;
    let mut sarif = false;
    let mut use_cache = true;
    let mut dry_run = false;
    let mut root = PathBuf::from(".");
    let mut mode: Option<&str> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "check" => mode = Some("check"),
            "fix" => mode = Some("fix"),
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--no-cache" => use_cache = false,
            "--dry-run" => dry_run = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage(),
            },
            other => {
                if let Some(dir) = other.strip_prefix("--root=") {
                    root = PathBuf::from(dir);
                } else {
                    eprintln!("simlint: unknown argument `{}`", other);
                    usage()
                }
            }
        }
    }

    match mode {
        Some("check") => {
            if json && sarif {
                eprintln!("simlint: --json and --sarif are mutually exclusive");
                usage()
            }
            let outcome = match simlint::check_full(&root, use_cache) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("simlint: {}", e);
                    exit(2)
                }
            };
            let findings = &outcome.findings;
            if json {
                print!("{}", simlint::findings_to_json(findings));
            } else if sarif {
                print!("{}", simlint::to_sarif(findings));
            } else {
                for f in findings {
                    println!("{}", f.render_with_hint());
                }
            }
            if findings.is_empty() {
                eprintln!("simlint: clean");
                exit(0)
            } else {
                eprintln!("simlint: {} finding(s)", findings.len());
                exit(1)
            }
        }
        Some("fix") => {
            let report = match simlint::fix::run(&root, dry_run) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("simlint: {}", e);
                    exit(2)
                }
            };
            for line in &report.diff {
                println!("{}", line);
            }
            eprintln!(
                "simlint: {}{} unused allow comment(s), {} stale config entr(ies) in {} file(s)",
                if dry_run { "would remove " } else { "removed " },
                report.allows_removed,
                report.config_entries_removed,
                report.files_changed,
            );
            exit(0)
        }
        _ => usage(),
    }
}
