//! CLI for simlint: `cargo run -p simlint -- check [--json] [--root DIR]`.
//!
//! Exit codes: 0 clean, 1 findings remain, 2 usage/config error.

use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: simlint check [--json] [--root DIR]\n\n  \
         --json   machine-readable findings on stdout (one JSON array)\n  \
         --root   workspace root to lint (default: current directory)"
    );
    exit(2)
}

fn main() {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut saw_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "check" => saw_check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage(),
            },
            other => {
                if let Some(dir) = other.strip_prefix("--root=") {
                    root = PathBuf::from(dir);
                } else {
                    eprintln!("simlint: unknown argument `{}`", other);
                    usage()
                }
            }
        }
    }
    if !saw_check {
        usage()
    }

    let findings = match simlint::check(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {}", e);
            exit(2)
        }
    };

    if json {
        print!("{}", simlint::findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render_with_hint());
        }
    }
    if findings.is_empty() {
        eprintln!("simlint: clean");
        exit(0)
    } else {
        eprintln!("simlint: {} finding(s)", findings.len());
        exit(1)
    }
}
