//! Machine-readable output: the JSON findings array (CI artifact), SARIF
//! 2.1.0 for code-scanning consumers, and stable finding IDs.
//!
//! IDs are content-addressed — `fnv64(rule | path | message | k)` where
//! `k` is the occurrence index among identical (rule, path, message)
//! triples — so they survive unrelated edits that shift line numbers.
//! Line/col stay in the output for humans; the ID is the join key for
//! suppression tracking across runs.

use crate::rules;
use crate::Finding;

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Assigns each finding its stable ID. Call after the final sort so the
/// occurrence index is deterministic.
pub fn assign_ids(findings: &mut [Finding]) {
    let mut seen: Vec<(String, usize)> = Vec::new();
    for f in findings.iter_mut() {
        let key = format!("{}|{}|{}", f.rule, f.path, f.message);
        let k = match seen.iter_mut().find(|(s, _)| *s == key) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                seen.push((key.clone(), 0));
                0
            }
        };
        f.id = format!("{:016x}", fnv64(format!("{key}|{k}").as_bytes()));
    }
}

pub fn findings_to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| format!("  {}", f.to_json()))
        .collect();
    format!("[\n{}\n]\n", items.join(",\n"))
}

/// SARIF 2.1.0, minimal but schema-valid: one run, the full rule table,
/// one result per finding with the taint flow as related locations.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut rules_json = Vec::new();
    for rule in rules::ALLOWABLE_RULES
        .iter()
        .chain(&[rules::RULE_ALLOW_SYNTAX, rules::RULE_UNUSED_ALLOW])
    {
        rules_json.push(format!(
            r#"{{"id":{},"shortDescription":{{"text":{}}}}}"#,
            json_str(rule),
            json_str(rules::hint_for(rule)),
        ));
    }
    let mut results = Vec::new();
    for f in findings {
        let mut related = Vec::new();
        for step in &f.flow {
            related.push(format!(
                r#"{{"physicalLocation":{{"artifactLocation":{{"uri":{}}},"region":{{"startLine":{}}}}},"message":{{"text":{}}}}}"#,
                json_str(&step.path),
                step.line,
                json_str(&step.note),
            ));
        }
        let related_json = if related.is_empty() {
            String::new()
        } else {
            format!(r#","relatedLocations":[{}]"#, related.join(","))
        };
        results.push(format!(
            r#"{{"ruleId":{},"level":"error","message":{{"text":{}}},"partialFingerprints":{{"simlint/v1":{}}},"locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":{}}},"region":{{"startLine":{},"startColumn":{}}}}}}}]{}}}"#,
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.id),
            json_str(&f.path),
            f.line,
            f.col,
            related_json,
        ));
    }
    format!(
        concat!(
            r#"{{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"simlint","version":"0.2.0","#,
            r#""rules":[{}]}}}},"#,
            r#""results":[{}]}}]}}"#,
            "\n"
        ),
        rules_json.join(","),
        results.join(","),
    )
}
