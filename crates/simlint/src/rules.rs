//! The five simlint rules (R1–R5) plus the allow-comment mechanism.
//!
//! Every rule works on the token stream from [`crate::lexer`], with a
//! per-token mask excluding `#[cfg(test)]` / `#[test]` items. See
//! DESIGN.md "Determinism invariants" for the rationale behind each rule.

use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, Finding};

/// Crates whose state feeds simulation results. R1/R2/R3/R5 apply only
/// here; R4 applies to every workspace library crate.
pub const SIM_STATE_DIRS: &[&str] = &[
    "cpu-sim",
    "cache-sim",
    "dram-sim",
    "os-sim",
    "xmem-core",
    "sim",
    "workloads",
];

pub const RULE_NONDET_MAP: &str = "nondet-map";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_NARROWING_CAST: &str = "narrowing-cast";
pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_FLOAT_CMP: &str = "float-cmp";
pub const RULE_SCALAR_ACCESS: &str = "scalar-access";
/// Meta-rules: a malformed `// simlint: allow(...)` comment, and an allow
/// comment that suppresses nothing (so stale annotations cannot linger).
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";

pub fn hint_for(rule: &str) -> &'static str {
    match rule {
        RULE_NONDET_MAP => {
            "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet, \
             or add `// simlint: allow(nondet-map, reason = \"...\")` for lookup-only use"
        }
        RULE_WALL_CLOCK => {
            "wall-clock and ambient randomness break run-to-run reproducibility; derive \
             time from simulated cycles (harness observability is allowlisted in simlint.toml)"
        }
        RULE_NARROWING_CAST => {
            "narrowing `as` on address/cycle values truncates silently; use the checked \
             helpers in xmem_core::addr (addr_to_index, cycles_to_u32, ...) or try_into"
        }
        RULE_UNWRAP => {
            "non-test library code must not panic implicitly; return a typed error or add \
             `// simlint: allow(unwrap, reason = \"...\")`"
        }
        RULE_FLOAT_CMP => {
            "float comparison in timing/scheduling paths is rounding-order fragile; compare \
             integer counters or add `// simlint: allow(float-cmp, reason = \"...\")`"
        }
        RULE_SCALAR_ACCESS => {
            "the scalar `fn access(...)` memory API is superseded by the batched \
             `MemoryPath::serve`/`serve_batch` (see DESIGN.md \"The batched hot path\"); \
             implement `MemoryPath` instead — only the compatibility adapter in \
             cpu-sim/src/trace.rs keeps the old name"
        }
        RULE_ALLOW_SYNTAX => {
            "expected `// simlint: allow(<rule>, reason = \"...\")` with a non-empty reason"
        }
        RULE_UNUSED_ALLOW => {
            "this allow comment suppresses no finding on its target line; remove it or fix \
             the rule name"
        }
        _ => "",
    }
}

/// Marks every token inside a `#[test]` or `#[cfg(test)]` item (most
/// commonly the trailing `mod tests { ... }` block). Token-level, so it
/// only needs to find the item's body braces, not parse the item.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_end = match matching(toks, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        if !attr_mentions_test(&toks[i..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then mark through the end of the
        // annotated item: either a `;` (e.g. `use` under cfg(test)) or the
        // item's matching `{ ... }` body.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return mask,
            }
        }
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        while j < toks.len() {
            let t = &toks[j].text;
            if toks[j].kind == TokKind::Punct {
                match t.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = j;
                        break;
                    }
                    "{" if depth == 0 => {
                        end = matching(toks, j, "{", "}").unwrap_or(toks.len() - 1);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// `test` counts when it appears as `#[test]`, `#[cfg(test)]`, or inside
/// `any(...)` — but not under `not(test)`.
fn attr_mentions_test(attr: &[Tok]) -> bool {
    for (k, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && attr[k - 1].is_punct("(") && attr[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

fn matching(toks: &[Tok], open: usize, open_txt: &str, close_txt: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_txt {
                depth += 1;
            } else if t.text == close_txt {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

/// A parsed `// simlint: allow(<rule>, reason = "...")` comment, resolved
/// to the source line it suppresses: its own line for a trailing comment,
/// or the line of the next code token for a standalone comment.
pub struct Allow {
    pub rule: String,
    pub target_line: u32,
    /// Where the comment itself sits (for unused-allow diagnostics).
    pub line: u32,
    pub col: u32,
}

pub fn collect_allows(toks: &[Tok], findings: &mut Vec<Finding>, ctx: &FileCtx) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("simlint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Some(rule) => {
                let trailing =
                    i > 0 && toks[i - 1].line == t.line && toks[i - 1].kind != TokKind::Comment;
                let target_line = if trailing {
                    t.line
                } else {
                    toks[i + 1..]
                        .iter()
                        .find(|n| n.kind != TokKind::Comment)
                        .map(|n| n.line)
                        .unwrap_or(t.line)
                };
                allows.push(Allow {
                    rule,
                    target_line,
                    line: t.line,
                    col: t.col,
                });
            }
            None => findings.push(Finding {
                path: ctx.rel_path.clone(),
                line: t.line,
                col: t.col,
                rule: RULE_ALLOW_SYNTAX,
                message: format!("malformed simlint directive: `{}`", body),
            }),
        }
    }
    allows
}

/// Parses `allow(<rule>, reason = "...")`, requiring a non-empty reason.
fn parse_allow(s: &str) -> Option<String> {
    let inner = s.strip_prefix("allow")?.trim().strip_prefix('(')?;
    let inner = inner.strip_suffix(')')?;
    let (rule, rest) = inner.split_once(',')?;
    let rest = rest
        .trim()
        .strip_prefix("reason")?
        .trim()
        .strip_prefix('=')?;
    let reason = rest.trim().strip_prefix('"')?.strip_suffix('"')?;
    let rule = rule.trim();
    let known = [
        RULE_NONDET_MAP,
        RULE_WALL_CLOCK,
        RULE_NARROWING_CAST,
        RULE_UNWRAP,
        RULE_FLOAT_CMP,
        RULE_SCALAR_ACCESS,
    ];
    if reason.trim().is_empty() || !known.contains(&rule) {
        return None;
    }
    Some(rule.to_string())
}

// ---------------------------------------------------------------------------
// R1–R5
// ---------------------------------------------------------------------------

pub fn run_all(toks: &[Tok], mask: &[bool], ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if ctx.sim_state {
            nondet_map(toks, i, t, ctx, out);
            wall_clock(t, ctx, out);
            narrowing_cast(toks, i, t, ctx, out);
            float_cmp(toks, i, t, ctx, out);
            scalar_access(toks, i, t, ctx, out);
        }
        if ctx.library {
            unwrap_rule(toks, i, t, ctx, out);
        }
    }
}

fn push(out: &mut Vec<Finding>, ctx: &FileCtx, t: &Tok, rule: &'static str, message: String) {
    out.push(Finding {
        path: ctx.rel_path.clone(),
        line: t.line,
        col: t.col,
        rule,
        message,
    });
}

/// R1: no `HashMap`/`HashSet` in sim-state crates.
fn nondet_map(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
        return;
    }
    // `std::collections::hash_map::Entry`-style paths still start with the
    // type name, so matching the identifier alone is sufficient; skip only
    // doc-path uses inside `<...>` turbofish? No — any appearance counts.
    let _ = (toks, i);
    push(
        out,
        ctx,
        t,
        RULE_NONDET_MAP,
        format!(
            "`{}` in sim-state crate (iteration order is nondeterministic)",
            t.text
        ),
    );
}

/// R2: no wall-clock / ambient randomness in sim-state crates.
fn wall_clock(t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &["SystemTime", "Instant", "RandomState", "thread_rng"];
    if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
        push(
            out,
            ctx,
            t,
            RULE_WALL_CLOCK,
            format!(
                "`{}` (wall-clock/ambient randomness) in sim-state crate",
                t.text
            ),
        );
    }
}

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Identifier vocabulary that marks an expression as address- or
/// cycle-typed. `contains` matches catch compounds like `as_nanos` /
/// `vaddr`; exact snake_case components catch short names like `row`.
const LEXICON_CONTAINS: &[&str] = &["addr", "cycle", "nanos", "vpn", "pfn"];
const LEXICON_COMPONENT: &[&str] = &[
    "va", "pa", "gpa", "hpa", "row", "col", "bank", "chan", "channel", "rank", "line", "frame",
    "page", "pages", "latency", "stamp",
];

fn lexicon_hit(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    if LEXICON_CONTAINS.iter().any(|w| lower.contains(w)) {
        return true;
    }
    lower
        .split('_')
        .any(|part| LEXICON_COMPONENT.contains(&part))
}

/// R3: `<addr/cycle expression> as <narrower int>`. The cast operand is
/// recovered by scanning backwards over the tokens `as` binds to (path
/// segments, field/method chains, balanced parens/brackets); if any
/// identifier in the operand matches the address/cycle lexicon, the cast
/// is flagged.
fn narrowing_cast(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !t.is_ident("as") {
        return;
    }
    let Some(ty) = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) else {
        return;
    };
    if ty.kind != TokKind::Ident || !NARROW_TYPES.contains(&ty.text.as_str()) {
        return;
    }
    let mut idents: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    for tok in toks[..i].iter().rev() {
        match tok.kind {
            TokKind::Comment => continue,
            TokKind::Punct => match tok.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "." | "::" | "&" | "?" => {}
                _ if depth > 0 => {}
                _ => break,
            },
            TokKind::Ident => {
                if depth == 0 && is_keyword_boundary(&tok.text) {
                    break;
                }
                idents.push(&tok.text);
            }
            _ => {}
        }
    }
    if let Some(hit) = idents.iter().find(|id| lexicon_hit(id)) {
        push(
            out,
            ctx,
            t,
            RULE_NARROWING_CAST,
            format!(
                "narrowing cast `as {}` on address/cycle-typed expression (`{}`)",
                ty.text, hit
            ),
        );
    }
}

/// Keywords that terminate a cast operand when scanned backwards
/// (`return x as u32`, `match addr as usize`, ...).
fn is_keyword_boundary(ident: &str) -> bool {
    matches!(
        ident,
        "return"
            | "as"
            | "in"
            | "if"
            | "else"
            | "match"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "while"
            | "for"
            | "loop"
            | "fn"
            | "const"
            | "static"
            | "where"
            | "unsafe"
    )
}

/// R4: `.unwrap()` / `.expect(...)` in non-test library code.
fn unwrap_rule(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
        return;
    }
    let after_dot = i > 0 && toks[i - 1].is_punct(".");
    let called = toks
        .get(i + 1)
        .map(|n| n.is_punct("(") || n.is_punct("::"))
        .unwrap_or(false);
    if after_dot && called {
        push(
            out,
            ctx,
            t,
            RULE_UNWRAP,
            format!("`.{}()` in non-test library code", t.text),
        );
    }
}

/// R6: no new scalar `fn access(` definitions in sim-state crates. The
/// batched API (PR 6) renamed the per-op entry points to `serve` /
/// `serve_batch`; the only scalar `access` left is the `MemoryModel`
/// compatibility adapter, allowlisted by path in `simlint.toml`. Flagging
/// the *definition* (not call sites) keeps the rule cheap and precise:
/// a `fn` keyword directly followed by the identifier `access` and `(`.
fn scalar_access(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !t.is_ident("fn") {
        return;
    }
    let mut rest = toks[i + 1..].iter().filter(|n| n.kind != TokKind::Comment);
    let (Some(name), Some(open)) = (rest.next(), rest.next()) else {
        return;
    };
    if name.is_ident("access") && open.is_punct("(") {
        push(
            out,
            ctx,
            name,
            RULE_SCALAR_ACCESS,
            "scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)"
                .to_string(),
        );
    }
}

const CMP_OPS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];

/// R5: comparison with a float literal operand in sim-state crates.
fn float_cmp(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Punct || !CMP_OPS.contains(&t.text.as_str()) {
        return;
    }
    let is_float = |tok: Option<&Tok>| {
        matches!(
            tok,
            Some(Tok {
                kind: TokKind::Num { float: true },
                ..
            })
        )
    };
    let prev = toks[..i].iter().rev().find(|n| n.kind != TokKind::Comment);
    let next = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment);
    if is_float(prev) || is_float(next) {
        push(
            out,
            ctx,
            t,
            RULE_FLOAT_CMP,
            format!("float comparison `{}` in sim-state crate", t.text),
        );
    }
}
