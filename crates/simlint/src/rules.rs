//! The simlint rule families (R1–R10) plus the allow-comment mechanism.
//!
//! Local rules work on the token stream from [`crate::lexer`], with a
//! per-token mask excluding `#[cfg(test)]` / `#[test]` items. The
//! cross-file rules (`nondet-taint`, the `Ordering::Relaxed` half of
//! `sync-audit`, `panic-in-worker`) live in [`crate::taint`] and run on
//! the per-file summaries from [`crate::summary`]. See DESIGN.md
//! "Determinism invariants" for the rationale behind each rule.

use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, Finding};

/// Crates whose state feeds simulation results. R1/R3/R5/R6/R7/R9/R10 and
/// the taint sources apply only here; R4 applies to every workspace
/// library crate.
pub const SIM_STATE_DIRS: &[&str] = &[
    "cpu-sim",
    "cache-sim",
    "dram-sim",
    "os-sim",
    "xmem-core",
    "sim",
    "workloads",
];

/// Bumped whenever rule behavior changes, so a stale incremental cache
/// ([`crate::cache`]) can never replay findings from an older rule set.
pub const RULES_VERSION: u32 = 2;

pub const RULE_NONDET_MAP: &str = "nondet-map";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_NARROWING_CAST: &str = "narrowing-cast";
pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_FLOAT_CMP: &str = "float-cmp";
pub const RULE_SCALAR_ACCESS: &str = "scalar-access";
/// R7: shared-state synchronization primitives in sim-state crates, and
/// (cross-file, via the call graph) `Ordering::Relaxed` in any function
/// that can reach a result sink.
pub const RULE_SYNC_AUDIT: &str = "sync-audit";
/// R8 (cross-file): panicking calls (`.lock().unwrap()`, `RefCell`
/// borrows) reachable from a `catch_unwind` isolation boundary.
pub const RULE_PANIC_WORKER: &str = "panic-in-worker";
/// R9: explicit wrapping arithmetic on address/cycle-typed expressions.
pub const RULE_WRAPPING: &str = "wrapping-cycle-math";
/// R10: float accumulation over containers whose iteration order is not
/// total.
pub const RULE_ORDERED_REDUCE: &str = "ordered-reduce";
/// The cross-file taint rule: a nondeterminism source whose value can
/// reach a result-emitting sink.
pub const RULE_TAINT: &str = "nondet-taint";
/// Meta-rules: a malformed `// simlint: allow(...)` comment, and an allow
/// comment that suppresses nothing (so stale annotations cannot linger).
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";

/// Every rule an allow directive may name.
pub const ALLOWABLE_RULES: &[&str] = &[
    RULE_NONDET_MAP,
    RULE_WALL_CLOCK,
    RULE_NARROWING_CAST,
    RULE_UNWRAP,
    RULE_FLOAT_CMP,
    RULE_SCALAR_ACCESS,
    RULE_SYNC_AUDIT,
    RULE_PANIC_WORKER,
    RULE_WRAPPING,
    RULE_ORDERED_REDUCE,
    RULE_TAINT,
];

/// Maps a rule name back to its `&'static str` constant (the incremental
/// cache stores rule names as text).
pub fn rule_from_name(name: &str) -> Option<&'static str> {
    for rule in ALLOWABLE_RULES {
        if *rule == name {
            return Some(rule);
        }
    }
    match name {
        "allow-syntax" => Some(RULE_ALLOW_SYNTAX),
        "unused-allow" => Some(RULE_UNUSED_ALLOW),
        _ => None,
    }
}

pub fn hint_for(rule: &str) -> &'static str {
    match rule {
        RULE_NONDET_MAP => {
            "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet, \
             or add `// simlint: allow(nondet-map, reason = \"...\")` for lookup-only use"
        }
        RULE_WALL_CLOCK => {
            "wall-clock and ambient randomness make byte-identity tests flaky; derive \
             time from simulated cycles (measurement harnesses are allowlisted in simlint.toml)"
        }
        RULE_NARROWING_CAST => {
            "narrowing `as` on address/cycle values truncates silently; use the checked \
             helpers in xmem_core::addr (addr_to_index, cycles_to_u32, ...) or try_into"
        }
        RULE_UNWRAP => {
            "non-test library code must not panic implicitly; return a typed error or add \
             `// simlint: allow(unwrap, reason = \"...\")`"
        }
        RULE_FLOAT_CMP => {
            "float comparison in timing/scheduling paths is rounding-order fragile; compare \
             integer counters or add `// simlint: allow(float-cmp, reason = \"...\")`"
        }
        RULE_SCALAR_ACCESS => {
            "the scalar `fn access(...)` memory API is superseded by the batched \
             `MemoryPath::serve`/`serve_batch` (see DESIGN.md \"The batched hot path\"); \
             implement `MemoryPath` instead — only the compatibility adapter in \
             cpu-sim/src/trace.rs keeps the old name"
        }
        RULE_SYNC_AUDIT => {
            "shared mutable sim state behind locks/atomics invites scheduling-order \
             nondeterminism; keep sim state single-owner and merge results in spec order \
             (the sanctioned worker pool in xmem-sim::harness is allowlisted)"
        }
        RULE_PANIC_WORKER => {
            "a poisoned lock or RefCell double-borrow panics *outside* the per-point \
             `catch_unwind`, so one bad point can take down the whole sweep; keep panic \
             sources out of code shared across worker isolation boundaries"
        }
        RULE_WRAPPING => {
            "wrapping arithmetic on address/cycle values silently discards overflow that \
             `overflow-checks = true` would catch; use checked/widening arithmetic, or \
             annotate intentional modular math"
        }
        RULE_ORDERED_REDUCE => {
            "float accumulation is not associative, so reducing over an unordered \
             container produces run-to-run drift; iterate a BTreeMap/sorted Vec, or \
             accumulate integers"
        }
        RULE_TAINT => {
            "a nondeterminism source (wall clock, environment, thread id, unordered \
             iteration) can flow into a result sink; derive the value from simulated \
             state, or add `// simlint: allow(nondet-taint, reason = \"...\")` at the \
             source if the flow provably never lands in byte-compared output"
        }
        RULE_ALLOW_SYNTAX => {
            "expected `// simlint: allow(<rule>, reason = \"...\")` with a non-empty reason"
        }
        RULE_UNUSED_ALLOW => {
            "this allow comment suppresses no finding on its target line; remove it or fix \
             the rule name (`simlint fix` removes it automatically)"
        }
        _ => "",
    }
}

/// Marks every token inside a `#[test]` or `#[cfg(test)]` item (most
/// commonly the trailing `mod tests { ... }` block). Token-level, so it
/// only needs to find the item's body braces, not parse the item. An
/// inner `#![cfg(test)]` attribute masks the rest of the file.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Inner attribute (`#![cfg(test)]` at module scope): everything
        // from here on is test code.
        if toks[i].is_punct("#")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("[")
        {
            match matching(toks, i + 2, "[", "]") {
                Some(e) => {
                    if attr_mentions_test(&toks[i..=e]) {
                        for m in mask.iter_mut().skip(i) {
                            *m = true;
                        }
                        return mask;
                    }
                    i = e + 1;
                    continue;
                }
                None => break,
            }
        }
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_end = match matching(toks, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        if !attr_mentions_test(&toks[i..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then mark through the end of the
        // annotated item: either a `;` (e.g. `use` under cfg(test)) or the
        // item's matching `{ ... }` body.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return mask,
            }
        }
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        while j < toks.len() {
            let t = &toks[j].text;
            if toks[j].kind == TokKind::Punct {
                match t.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = j;
                        break;
                    }
                    "{" if depth == 0 => {
                        end = matching(toks, j, "{", "}").unwrap_or(toks.len() - 1);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// `test` counts when it appears as `#[test]`, `#[cfg(test)]`, or inside
/// `any(...)` — but not under `not(test)`.
fn attr_mentions_test(attr: &[Tok]) -> bool {
    for (k, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && attr[k - 1].is_punct("(") && attr[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

pub(crate) fn matching(
    toks: &[Tok],
    open: usize,
    open_txt: &str,
    close_txt: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_txt {
                depth += 1;
            } else if t.text == close_txt {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

/// A parsed `// simlint: allow(<rule>, reason = "...")` comment, resolved
/// to the source line it suppresses: its own line for a trailing comment,
/// or the line of the next code token for a standalone comment (skipping
/// over `#[...]` attributes, so an allow above an attributed item targets
/// the item itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub target_line: u32,
    /// Where the comment itself sits (for unused-allow diagnostics and
    /// `simlint fix`).
    pub line: u32,
    pub col: u32,
}

/// Collects allow directives. Directives inside `#[cfg(test)]`-masked
/// regions are dropped outright unless the whole file is linted as test
/// code (`ctx.test_like`): no rule runs there, so they can neither
/// suppress nor count as unused.
pub fn collect_allows(
    toks: &[Tok],
    mask: &[bool],
    findings: &mut Vec<Finding>,
    ctx: &FileCtx,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("simlint:") else {
            continue;
        };
        if mask.get(i).copied().unwrap_or(false) && !ctx.test_like {
            continue;
        }
        match parse_allow(rest.trim()) {
            Some(rule) => {
                let trailing =
                    i > 0 && toks[i - 1].line == t.line && toks[i - 1].kind != TokKind::Comment;
                let target_line = if trailing {
                    t.line
                } else {
                    standalone_target_line(toks, i).unwrap_or(t.line)
                };
                allows.push(Allow {
                    rule,
                    target_line,
                    line: t.line,
                    col: t.col,
                });
            }
            None => findings.push(Finding::new(
                &ctx.rel_path,
                t.line,
                t.col,
                RULE_ALLOW_SYNTAX,
                format!("malformed simlint directive: `{}`", body),
            )),
        }
    }
    allows
}

/// The line a standalone allow comment applies to: the next code token,
/// skipping comments and whole `#[...]` attribute groups (an allow placed
/// above `#[inline]\nfn f()` targets the `fn` line, not the attribute).
fn standalone_target_line(toks: &[Tok], comment: usize) -> Option<u32> {
    let mut k = comment + 1;
    loop {
        while toks.get(k).map(|t| t.kind == TokKind::Comment) == Some(true) {
            k += 1;
        }
        let t = toks.get(k)?;
        if t.is_punct("#") && toks.get(k + 1).is_some_and(|n| n.is_punct("[")) {
            k = matching(toks, k + 1, "[", "]")? + 1;
            continue;
        }
        return Some(t.line);
    }
}

/// Parses `allow(<rule>, reason = "...")`, requiring a non-empty reason.
fn parse_allow(s: &str) -> Option<String> {
    let inner = s.strip_prefix("allow")?.trim().strip_prefix('(')?;
    let inner = inner.strip_suffix(')')?;
    let (rule, rest) = inner.split_once(',')?;
    let rest = rest
        .trim()
        .strip_prefix("reason")?
        .trim()
        .strip_prefix('=')?;
    let reason = rest.trim().strip_prefix('"')?.strip_suffix('"')?;
    let rule = rule.trim();
    if reason.trim().is_empty() || !ALLOWABLE_RULES.contains(&rule) {
        return None;
    }
    Some(rule.to_string())
}

// ---------------------------------------------------------------------------
// Local rules
// ---------------------------------------------------------------------------

pub fn run_all(toks: &[Tok], mask: &[bool], ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if ctx.test_like {
            // Test-like files (integration tests, examples, the bench
            // crate) get exactly one rule — wall-clock — applied without
            // the test mask: a byte-identity test that reads the wall
            // clock is a silent flake source even though it *is* test
            // code.
            wall_clock(t, ctx, out);
            continue;
        }
        if mask[i] {
            continue;
        }
        if ctx.sim_state {
            nondet_map(t, ctx, out);
            narrowing_cast(toks, i, t, ctx, out);
            float_cmp(toks, i, t, ctx, out);
            scalar_access(toks, i, t, ctx, out);
            sync_audit_type(t, ctx, out);
            wrapping_cycle(toks, i, t, ctx, out);
        }
        if ctx.library {
            unwrap_rule(toks, i, t, ctx, out);
        }
    }
    if ctx.sim_state && !ctx.test_like {
        for (line, col, what) in ordered_reduce_sites(toks, mask) {
            out.push(Finding::new(
                &ctx.rel_path,
                line,
                col,
                RULE_ORDERED_REDUCE,
                format!("float reduction over unordered iteration ({what})"),
            ));
        }
    }
}

fn push(out: &mut Vec<Finding>, ctx: &FileCtx, t: &Tok, rule: &'static str, message: String) {
    out.push(Finding::new(&ctx.rel_path, t.line, t.col, rule, message));
}

/// R1: no `HashMap`/`HashSet` in sim-state crates.
fn nondet_map(t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
        return;
    }
    push(
        out,
        ctx,
        t,
        RULE_NONDET_MAP,
        format!(
            "`{}` in sim-state crate (iteration order is nondeterministic)",
            t.text
        ),
    );
}

/// R2: no wall-clock / ambient randomness. Applied token-locally to
/// test-like files only — in sim-state library code the same sources are
/// handled by the cross-file taint pass, which flags them exactly when
/// they can reach a result sink.
fn wall_clock(t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &["SystemTime", "Instant", "RandomState", "thread_rng"];
    if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
        push(
            out,
            ctx,
            t,
            RULE_WALL_CLOCK,
            format!("`{}` (wall-clock/ambient randomness) in test code", t.text),
        );
    }
}

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Identifier vocabulary that marks an expression as address- or
/// cycle-typed. `contains` matches catch compounds like `as_nanos` /
/// `vaddr`; exact snake_case components catch short names like `row`.
const LEXICON_CONTAINS: &[&str] = &["addr", "cycle", "nanos", "vpn", "pfn"];
const LEXICON_COMPONENT: &[&str] = &[
    "va", "pa", "gpa", "hpa", "row", "col", "bank", "chan", "channel", "rank", "line", "frame",
    "page", "pages", "latency", "stamp",
];

pub(crate) fn lexicon_hit(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    if LEXICON_CONTAINS.iter().any(|w| lower.contains(w)) {
        return true;
    }
    lower
        .split('_')
        .any(|part| LEXICON_COMPONENT.contains(&part))
}

/// The identifiers of the expression the token at `end` binds to, scanning
/// backwards over path segments, field/method chains, and balanced
/// parens/brackets (shared by R3 and R9).
fn operand_idents(toks: &[Tok], end: usize) -> Vec<&str> {
    let mut idents: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    for tok in toks[..end].iter().rev() {
        match tok.kind {
            TokKind::Comment => continue,
            TokKind::Punct => match tok.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "." | "::" | "&" | "?" => {}
                _ if depth > 0 => {}
                _ => break,
            },
            TokKind::Ident => {
                if depth == 0 && is_keyword_boundary(&tok.text) {
                    break;
                }
                idents.push(&tok.text);
            }
            _ => {}
        }
    }
    idents
}

/// R3: `<addr/cycle expression> as <narrower int>`.
fn narrowing_cast(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !t.is_ident("as") {
        return;
    }
    let Some(ty) = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) else {
        return;
    };
    if ty.kind != TokKind::Ident || !NARROW_TYPES.contains(&ty.text.as_str()) {
        return;
    }
    let idents = operand_idents(toks, i);
    if let Some(hit) = idents.iter().find(|id| lexicon_hit(id)) {
        push(
            out,
            ctx,
            t,
            RULE_NARROWING_CAST,
            format!(
                "narrowing cast `as {}` on address/cycle-typed expression (`{}`)",
                ty.text, hit
            ),
        );
    }
}

/// Keywords that terminate a cast operand when scanned backwards
/// (`return x as u32`, `match addr as usize`, ...).
fn is_keyword_boundary(ident: &str) -> bool {
    matches!(
        ident,
        "return"
            | "as"
            | "in"
            | "if"
            | "else"
            | "match"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "while"
            | "for"
            | "loop"
            | "fn"
            | "const"
            | "static"
            | "where"
            | "unsafe"
    )
}

/// R4: `.unwrap()` / `.expect(...)` in non-test library code.
fn unwrap_rule(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
        return;
    }
    let after_dot = i > 0 && toks[i - 1].is_punct(".");
    let called = toks
        .get(i + 1)
        .map(|n| n.is_punct("(") || n.is_punct("::"))
        .unwrap_or(false);
    if after_dot && called {
        push(
            out,
            ctx,
            t,
            RULE_UNWRAP,
            format!("`.{}()` in non-test library code", t.text),
        );
    }
}

/// R6: no new scalar `fn access(` definitions in sim-state crates (the
/// batched `MemoryPath::serve`/`serve_batch` API replaced them; only the
/// compatibility adapter keeps the old name, allowlisted by path).
fn scalar_access(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !t.is_ident("fn") {
        return;
    }
    let mut rest = toks[i + 1..].iter().filter(|n| n.kind != TokKind::Comment);
    let (Some(name), Some(open)) = (rest.next(), rest.next()) else {
        return;
    };
    if name.is_ident("access") && open.is_punct("(") {
        push(
            out,
            ctx,
            name,
            RULE_SCALAR_ACCESS,
            "scalar `fn access(...)` in sim-state crate (use the batched `MemoryPath` API)"
                .to_string(),
        );
    }
}

const CMP_OPS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];

/// R5: comparison with a float literal operand in sim-state crates.
fn float_cmp(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Punct || !CMP_OPS.contains(&t.text.as_str()) {
        return;
    }
    let is_float = |tok: Option<&Tok>| {
        matches!(
            tok,
            Some(Tok {
                kind: TokKind::Num { float: true },
                ..
            })
        )
    };
    let prev = toks[..i].iter().rev().find(|n| n.kind != TokKind::Comment);
    let next = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment);
    if is_float(prev) || is_float(next) {
        push(
            out,
            ctx,
            t,
            RULE_FLOAT_CMP,
            format!("float comparison `{}` in sim-state crate", t.text),
        );
    }
}

/// Synchronization primitives R7 flags in sim-state crates (the local
/// half of `sync-audit`; the `Ordering::Relaxed` half is cross-file).
const SYNC_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// R7 (local half): shared-state synchronization in sim-state crates.
fn sync_audit_type(t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind == TokKind::Ident && SYNC_TYPES.contains(&t.text.as_str()) {
        push(
            out,
            ctx,
            t,
            RULE_SYNC_AUDIT,
            format!(
                "`{}` (shared-state synchronization) in sim-state crate",
                t.text
            ),
        );
    }
}

const WRAPPING_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_neg",
    "overflowing_add",
    "overflowing_sub",
    "overflowing_mul",
];

/// R9: `.wrapping_*()` / `.overflowing_*()` on an address/cycle-typed
/// receiver or argument. With `overflow-checks = true` in every profile,
/// plain arithmetic on cycles/addresses traps on overflow; explicit
/// wrapping math silently discards it, which on a cycle counter or
/// address is a determinism-preserving but *wrong* result.
fn wrapping_cycle(toks: &[Tok], i: usize, t: &Tok, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if t.kind != TokKind::Ident || !WRAPPING_METHODS.contains(&t.text.as_str()) {
        return;
    }
    if i == 0 || !toks[i - 1].is_punct(".") {
        return;
    }
    let mut idents = operand_idents(toks, i - 1);
    // Arguments can carry the typed value too: `x.wrapping_add(cycles)`.
    if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
        if let Some(close) = matching(toks, i + 1, "(", ")") {
            for tok in &toks[i + 2..close] {
                if tok.kind == TokKind::Ident {
                    idents.push(&tok.text);
                }
            }
        }
    }
    if let Some(hit) = idents.iter().find(|id| lexicon_hit(id)) {
        push(
            out,
            ctx,
            t,
            RULE_WRAPPING,
            format!(
                "wrapping `{}` on address/cycle-typed expression (`{}`)",
                t.text, hit
            ),
        );
    }
}

/// Iterator adapters whose order mirrors the container's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifies file-local bindings of `HashMap`/`HashSet` type: `let x =
/// HashMap::new()`, `let x: HashMap<..>`, `x: &HashMap<..>` parameters and
/// struct fields. Bindings inside masked (test/bench) regions are
/// excluded — a test-local `HashMap` must not taint a same-named
/// production variable.
pub fn unordered_bindings(toks: &[Tok], mask: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over the path/reference prelude to the `:` or `=`
        // introducing the binding, then take the identifier before it.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let skip = p.is_punct("::")
                || p.is_punct("&")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_ident("mut")
                || p.kind == TokKind::Lifetime;
            if skip {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let intro = &toks[j - 1];
        if !(intro.is_punct(":") || intro.is_punct("=")) || j < 2 {
            continue;
        }
        let name = &toks[j - 2];
        if name.kind == TokKind::Ident && !names.contains(&name.text) {
            names.push(name.text.clone());
        }
    }
    names
}

/// R10 sites: float reductions over the iteration of a file-local
/// `HashMap`/`HashSet` binding. Two shapes are recognized:
///
/// * chain form — `x.values().…sum::<f64>()` / `.product::<f32>()` /
///   `.fold(0.0, …)` within one statement;
/// * loop form — `for v in x.values() { … acc += …float… }`.
///
/// Returns `(line, col, description)` per site; shared between the local
/// R10 rule and the taint pass (these sites double as taint sources).
pub fn ordered_reduce_sites(toks: &[Tok], mask: &[bool]) -> Vec<(u32, u32, String)> {
    let unordered = unordered_bindings(toks, mask);
    if unordered.is_empty() {
        return Vec::new();
    }
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i < 2 || !toks[i - 1].is_punct(".") {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind != TokKind::Ident || !unordered.contains(&recv.text) {
            continue;
        }
        // Chain form: look forward to the end of the statement for a
        // float reduction.
        if let Some(what) = float_reduce_ahead(toks, i) {
            sites.push((
                t.line,
                t.col,
                format!("`{}.{}()` feeding {what}", recv.text, t.text),
            ));
            continue;
        }
        // Loop form: `for … in recv.iter_method(…) { body }` with a float
        // compound assignment in the body.
        if in_for_header(toks, i) {
            if let Some(body_open) = toks[i..]
                .iter()
                .position(|n| n.is_punct("{"))
                .map(|k| k + i)
            {
                if let Some(body_close) = matching(toks, body_open, "{", "}") {
                    if float_accumulation_in(&toks[body_open..=body_close]) {
                        sites.push((
                            t.line,
                            t.col,
                            format!("`for … in {}.{}()` accumulating floats", recv.text, t.text),
                        ));
                    }
                }
            }
        }
    }
    sites
}

/// Scans forward from an iterator call to the end of its statement for a
/// float-typed reduction; returns a description of the reducer if found.
fn float_reduce_ahead(toks: &[Tok], from: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut k = from;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "{" if depth == 0 => break,
                _ => {}
            }
        }
        if t.kind == TokKind::Ident && (t.text == "sum" || t.text == "product") {
            // Require a float turbofish: `.sum::<f64>()`.
            let tail: Vec<&Tok> = toks[k + 1..]
                .iter()
                .filter(|n| n.kind != TokKind::Comment)
                .take(3)
                .collect();
            if tail.len() == 3
                && tail[0].is_punct("::")
                && tail[1].is_punct("<")
                && (tail[2].is_ident("f32") || tail[2].is_ident("f64"))
            {
                return Some(format!("`.{}::<{}>()`", t.text, tail[2].text));
            }
        }
        if t.kind == TokKind::Ident && (t.text == "fold" || t.text == "rfold") {
            if let Some(open) = toks[k + 1..]
                .iter()
                .position(|n| n.kind != TokKind::Comment)
                .map(|p| p + k + 1)
                .filter(|&p| toks[p].is_punct("("))
            {
                if let Some(close) = matching(toks, open, "(", ")") {
                    if toks[open..=close].iter().any(is_floatish) {
                        return Some(format!("`.{}(…)` over floats", t.text));
                    }
                }
            }
        }
        k += 1;
    }
    None
}

/// Is the iterator call at `i` inside a `for … in …` header (between the
/// `in` keyword and the loop's `{`)?
fn in_for_header(toks: &[Tok], i: usize) -> bool {
    for tok in toks[..i].iter().rev() {
        match tok.kind {
            TokKind::Comment => continue,
            TokKind::Punct if tok.text == "{" || tok.text == ";" || tok.text == "}" => {
                return false
            }
            TokKind::Ident if tok.text == "in" => return true,
            _ => {}
        }
    }
    false
}

fn is_floatish(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Num { float: true })
        || (t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
}

/// Does a token slice contain a compound assignment fed by float-typed
/// evidence (a float literal, `f32`/`f64`, or an `as f64` cast) within the
/// same statement?
fn float_accumulation_in(body: &[Tok]) -> bool {
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+=" | "-=" | "*=") {
            continue;
        }
        // The statement around the compound assignment: back to the
        // previous `;`/`{`, forward to the next `;`.
        let start = body[..k]
            .iter()
            .rposition(|n| n.is_punct(";") || n.is_punct("{"))
            .map(|p| p + 1)
            .unwrap_or(0);
        let end = body[k..]
            .iter()
            .position(|n| n.is_punct(";"))
            .map(|p| p + k)
            .unwrap_or(body.len());
        if body[start..end].iter().any(is_floatish) {
            return true;
        }
    }
    false
}
