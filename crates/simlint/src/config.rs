//! `simlint.toml` — the workspace-level allowlist.
//!
//! Hand-rolled parser for the tiny TOML subset the config needs (the
//! workspace has no external dependencies):
//!
//! ```toml
//! [[allow]]
//! rule = "wall-clock"
//! path = "crates/sim/src/harness.rs"
//! reason = "Progress/wall_nanos are observability-only"
//! ```
//!
//! `path` is relative to the workspace root with `/` separators; a value
//! ending in `/` allowlists every file under that directory. `rule` may be
//! `*` to allow all rules for a path (use sparingly).

use std::path::Path;

#[derive(Debug, Default)]
pub struct Config {
    allows: Vec<AllowEntry>,
}

#[derive(Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// 1-based inclusive line span of the entry in `simlint.toml` (from
    /// the `[[allow]]` line through its last key), used by `simlint fix`
    /// to remove stale entries.
    pub span: (usize, usize),
}

impl Config {
    /// Loads `<root>/simlint.toml`; a missing file is an empty config.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("simlint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {}", path.display(), e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("{}: {}", path.display(), e)),
        }
    }

    pub fn parse(text: &str) -> Result<Config, String> {
        let mut allows: Vec<AllowEntry> = Vec::new();
        let mut open = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = n + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                open = true;
                allows.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    span: (lineno, lineno),
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown table `{}`", lineno, line));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = \"value\"`", lineno))?;
            let value = value
                .trim()
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: value must be a quoted string", lineno))?;
            if !open {
                return Err(format!("line {}: key outside [[allow]] table", lineno));
            }
            let entry = allows.last_mut().unwrap();
            entry.span.1 = lineno;
            match key.trim() {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.replace('\\', "/"),
                "reason" => entry.reason = value.to_string(),
                other => return Err(format!("line {}: unknown key `{}`", lineno, other)),
            }
        }
        for (k, e) in allows.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "[[allow]] entry {} must set rule, path and a non-empty reason",
                    k + 1
                ));
            }
        }
        Ok(Config { allows })
    }

    /// Is `rule` allowlisted for the file at workspace-relative `rel_path`?
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.match_entry(rule, rel_path).is_some()
    }

    /// Index of the first `[[allow]]` entry covering (rule, path), if any
    /// — [`crate::finalize`] tracks per-entry usage through this so
    /// `simlint fix` can retire entries that suppress nothing.
    pub fn match_entry(&self, rule: &str, rel_path: &str) -> Option<usize> {
        self.allows.iter().position(|a| {
            (a.rule == rule || a.rule == "*")
                && (a.path == rel_path
                    || (a.path.ends_with('/') && rel_path.starts_with(a.path.as_str())))
        })
    }

    pub fn entry_count(&self) -> usize {
        self.allows.len()
    }

    pub fn entries(&self) -> &[AllowEntry] {
        &self.allows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let cfg = Config::parse(
            r#"
# comment
[[allow]]
rule = "wall-clock"
path = "crates/sim/src/harness.rs"
reason = "observability only"

[[allow]]
rule = "*"
path = "crates/generated/"
reason = "machine generated"
"#,
        )
        .unwrap();
        assert!(cfg.allows("wall-clock", "crates/sim/src/harness.rs"));
        assert!(!cfg.allows("unwrap", "crates/sim/src/harness.rs"));
        assert!(!cfg.allows("wall-clock", "crates/sim/src/machine.rs"));
        assert!(cfg.allows("unwrap", "crates/generated/foo.rs"));
    }

    #[test]
    fn rejects_incomplete_entries() {
        assert!(Config::parse("[[allow]]\nrule = \"unwrap\"\n").is_err());
        assert!(Config::parse("rule = \"unwrap\"\n").is_err());
        assert!(Config::parse("[bad]\n").is_err());
        assert!(Config::parse("[[allow]]\nrule = unquoted\n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let cfg = Config::load(Path::new("/nonexistent-simlint-root")).unwrap();
        assert!(!cfg.allows("unwrap", "anything.rs"));
    }
}
