//! simlint — workspace-specific static analysis for the XMem simulator.
//!
//! The repo's core property (PRs 1–3) is that parallel sweeps, resume and
//! telemetry are **byte-identical** to serial fresh runs. That property
//! rests on invariants no general-purpose linter knows about; simlint
//! makes them machine-checked:
//!
//! | rule             | invariant                                                   |
//! |------------------|-------------------------------------------------------------|
//! | `nondet-map`     | no `HashMap`/`HashSet` in sim-state crates (R1)             |
//! | `wall-clock`     | no `SystemTime`/`Instant`/ambient randomness in results (R2)|
//! | `narrowing-cast` | no narrowing `as` on address/cycle expressions (R3)         |
//! | `unwrap`         | no unannotated `.unwrap()`/`.expect()` in library code (R4) |
//! | `float-cmp`      | no float comparison in timing/scheduling decisions (R5)     |
//! | `scalar-access`  | no new scalar `fn access(` in sim-state crates (R6) — the   |
//! |                  | batched `MemoryPath::serve`/`serve_batch` API replaced it   |
//!
//! Suppression: a per-site `// simlint: allow(<rule>, reason = "...")`
//! comment (same line, or the line directly above), or a `simlint.toml`
//! `[[allow]]` entry for whole files. Both are checked themselves: a
//! malformed directive is `allow-syntax`, a directive that suppresses
//! nothing is `unused-allow`.
//!
//! Run it with `cargo run -p simlint -- check` (add `--json` for machine
//! output). Exits non-zero when findings remain.

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;

/// One diagnostic. Rendered as `path:line:col: rule: message` plus a
/// fix hint in human mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    pub fn render_with_hint(&self) -> String {
        let hint = rules::hint_for(self.rule);
        if hint.is_empty() {
            self.render()
        } else {
            format!("{}\n  hint: {}", self.render(), hint)
        }
    }

    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"col":{},"rule":{},"message":{},"hint":{}}}"#,
            json_str(&self.path),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message),
            json_str(rules::hint_for(self.rule)),
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub fn findings_to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| format!("  {}", f.to_json()))
        .collect();
    format!("[\n{}\n]\n", items.join(",\n"))
}

/// What simlint knows about a file before reading it: where it lives and
/// which rule families apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators (diagnostics + allowlist key).
    pub rel_path: String,
    /// Crate is in [`rules::SIM_STATE_DIRS`] — R1/R2/R3/R5/R6 apply.
    pub sim_state: bool,
    /// Library code (not `src/bin/*`, not `src/main.rs`) — R4 applies.
    pub library: bool,
}

/// Lints one file's source. Test items (`#[cfg(test)]`/`#[test]`) are
/// exempt from every rule; allow comments and the workspace allowlist are
/// applied here so callers get the final finding set.
pub fn lint_source(src: &str, ctx: &FileCtx, cfg: &Config) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let mask = rules::test_mask(&toks);
    let mut findings = Vec::new();
    let allows = rules::collect_allows(&toks, &mut findings, ctx);
    let mut raw = Vec::new();
    rules::run_all(&toks, &mask, ctx, &mut raw);

    let mut used = vec![false; allows.len()];
    for f in raw {
        let suppressed_by_comment = allows.iter().enumerate().any(|(k, a)| {
            let hit = a.rule == f.rule && a.target_line == f.line;
            if hit {
                used[k] = true;
            }
            hit
        });
        if suppressed_by_comment || cfg.allows(f.rule, &ctx.rel_path) {
            continue;
        }
        findings.push(f);
    }
    for (k, a) in allows.iter().enumerate() {
        if !used[k] {
            findings.push(Finding {
                path: ctx.rel_path.clone(),
                line: a.line,
                col: a.col,
                rule: rules::RULE_UNUSED_ALLOW,
                message: format!(
                    "allow({}) suppresses no finding on line {}",
                    a.rule, a.target_line
                ),
            });
        }
    }
    findings
}

/// Enumerates the workspace's lintable `.rs` files: `src/` of the root
/// package and of every crate under `crates/` except simlint itself.
/// Integration tests, benches and examples are out of scope — they assert
/// on results rather than produce them.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut crate_dirs: Vec<(PathBuf, String)> = vec![(root.to_path_buf(), "xmem".to_string())];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name == "simlint" {
                continue;
            }
            crate_dirs.push((dir, name));
        }
    }

    let mut files = Vec::new();
    for (dir, name) in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let sim_state = rules::SIM_STATE_DIRS.contains(&name.as_str());
        let mut stack = vec![src.clone()];
        while let Some(d) = stack.pop() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            entries.sort();
            for p in entries {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .to_string_lossy()
                        .replace('\\', "/");
                    let in_bin = rel.contains("/src/bin/");
                    let is_main = p.file_name().is_some_and(|n| n == "main.rs");
                    files.push((
                        p,
                        FileCtx {
                            rel_path: rel,
                            sim_state,
                            library: !in_bin && !is_main,
                        },
                    ));
                }
            }
        }
    }
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

/// Lints the whole workspace rooted at `root`. Findings come back sorted
/// by (path, line, col, rule) so output and the CI artifact are stable.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let cfg = Config::load(root)?;
    let mut findings = Vec::new();
    for (path, ctx) in workspace_files(root).map_err(|e| e.to_string())? {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {}", path.display(), e))?;
        findings.extend(lint_source(&src, &ctx, &cfg));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}
