//! simlint — workspace-specific static analysis for the XMem simulator.
//!
//! The repo's core property (PRs 1–3) is that parallel sweeps, resume and
//! telemetry are **byte-identical** to serial fresh runs. That property
//! rests on invariants no general-purpose linter knows about; simlint
//! makes them machine-checked:
//!
//! | rule                  | invariant                                                       |
//! |-----------------------|-----------------------------------------------------------------|
//! | `nondet-map`          | no `HashMap`/`HashSet` in sim-state crates (R1)                 |
//! | `wall-clock`          | no `SystemTime`/`Instant`/ambient randomness in test code (R2)  |
//! | `narrowing-cast`      | no narrowing `as` on address/cycle expressions (R3)             |
//! | `unwrap`              | no unannotated `.unwrap()`/`.expect()` in library code (R4)     |
//! | `float-cmp`           | no float comparison in timing/scheduling decisions (R5)         |
//! | `scalar-access`       | no new scalar `fn access(` in sim-state crates (R6)             |
//! | `sync-audit`          | no locks/atomics in sim state; no `Relaxed` on sink paths (R7)  |
//! | `panic-in-worker`     | no panic hazards escaping `catch_unwind` isolation (R8)         |
//! | `wrapping-cycle-math` | no wrapping arithmetic on address/cycle values (R9)             |
//! | `ordered-reduce`      | no float reduction over unordered iteration (R10)               |
//! | `nondet-taint`        | no nondeterminism source may reach a result sink (cross-file)   |
//!
//! The cross-file rules run on a workspace call graph built from per-file
//! summaries ([`summary`], [`taint`]); `nondet-taint` findings carry the
//! full source→sink chain as flow steps. Per-file analysis is cached on
//! content hash ([`cache`]) so the warm full-workspace run is sub-second.
//!
//! Suppression: a per-site `// simlint: allow(<rule>, reason = "...")`
//! comment (same line, or the line directly above), or a `simlint.toml`
//! `[[allow]]` entry for whole files. Both are checked themselves: a
//! malformed directive is `allow-syntax`, a directive that suppresses
//! nothing is `unused-allow`, and `simlint fix` removes stale ones.
//!
//! Run it with `cargo run -p simlint -- check` (`--json` or `--sarif` for
//! machine output, `--no-cache` to force cold analysis), or
//! `cargo run -p simlint -- fix --dry-run` to preview cleanups. Exits
//! non-zero when findings remain.

pub mod cache;
pub mod config;
pub mod fix;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod summary;
pub mod taint;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use output::{assign_ids, findings_to_json, to_sarif};

/// One step of a cross-file flow chain (source→sink for `nondet-taint`,
/// boundary→hazard for `panic-in-worker`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStep {
    pub path: String,
    pub line: u32,
    pub note: String,
}

/// One diagnostic. Rendered as `path:line:col: rule: message` plus flow
/// steps and a fix hint in human mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
    /// Cross-file chain; empty for local findings.
    pub flow: Vec<FlowStep>,
    /// Stable content-addressed fingerprint, assigned by [`finalize`].
    pub id: String,
}

impl Finding {
    pub fn new(path: &str, line: u32, col: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            col,
            rule,
            message,
            flow: Vec::new(),
            id: String::new(),
        }
    }

    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    pub fn render_with_hint(&self) -> String {
        let mut out = self.render();
        for step in &self.flow {
            out.push_str(&format!(
                "\n  flow: {} ({}:{})",
                step.note, step.path, step.line
            ));
        }
        let hint = rules::hint_for(self.rule);
        if !hint.is_empty() {
            out.push_str(&format!("\n  hint: {}", hint));
        }
        out
    }

    pub fn to_json(&self) -> String {
        let flow: Vec<String> = self
            .flow
            .iter()
            .map(|s| {
                format!(
                    r#"{{"path":{},"line":{},"note":{}}}"#,
                    output::json_str(&s.path),
                    s.line,
                    output::json_str(&s.note)
                )
            })
            .collect();
        format!(
            r#"{{"id":{},"path":{},"line":{},"col":{},"rule":{},"message":{},"hint":{},"flow":[{}]}}"#,
            output::json_str(&self.id),
            output::json_str(&self.path),
            self.line,
            self.col,
            output::json_str(self.rule),
            output::json_str(&self.message),
            output::json_str(rules::hint_for(self.rule)),
            flow.join(","),
        )
    }
}

/// What simlint knows about a file before reading it: where it lives and
/// which rule families apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators (diagnostics + allowlist key).
    pub rel_path: String,
    /// Crate is in [`rules::SIM_STATE_DIRS`] — R1/R3/R5/R6/R7/R9/R10 and
    /// the taint sources apply.
    pub sim_state: bool,
    /// Library code (not `src/bin/*`, not `src/main.rs`) — R4 applies.
    pub library: bool,
    /// Test-adjacent code (`tests/`, `examples/`, `crates/bench`) — the
    /// `wall-clock` rule applies here *without* the test mask, since a
    /// byte-identity test that reads the wall clock is a silent flake
    /// source. Files that are purely tests contribute no call-graph
    /// summary.
    pub test_like: bool,
}

/// The per-file analysis: local findings (before allow/config
/// application), allow directives, and the call-graph summary. A pure
/// function of file content — see [`cache`].
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    pub ctx: FileCtx,
    pub findings: Vec<Finding>,
    pub allows: Vec<rules::Allow>,
    pub summary: summary::FileSummary,
}

pub fn analyze_source(src: &str, ctx: &FileCtx) -> FileAnalysis {
    let toks = lexer::lex(src);
    let mask = rules::test_mask(&toks);
    let mut findings = Vec::new();
    let allows = rules::collect_allows(&toks, &mask, &mut findings, ctx);
    rules::run_all(&toks, &mask, ctx, &mut findings);
    let summary = if ctx.test_like && !ctx.library {
        // Pure test/example files assert on results rather than produce
        // them; they stay out of the result-producing call graph.
        summary::FileSummary::default()
    } else {
        summary::summarize(&toks, &mask, ctx)
    };
    FileAnalysis {
        ctx: ctx.clone(),
        findings,
        allows,
        summary,
    }
}

/// Result of a full lint: the final findings plus which `simlint.toml`
/// entries suppressed nothing (fed to `simlint fix`).
#[derive(Debug)]
pub struct CheckOutcome {
    pub findings: Vec<Finding>,
    /// Indices into the config's `[[allow]]` entries that matched no
    /// finding anywhere in the workspace.
    pub stale_config: Vec<usize>,
}

/// Runs the cross-file pass over all analyses, applies allow comments and
/// the config allowlist, emits `unused-allow`, sorts, and assigns stable
/// IDs.
pub fn finalize(analyses: &[FileAnalysis], cfg: &Config) -> CheckOutcome {
    let mut by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in taint::run(analyses) {
        by_path.entry(f.path.clone()).or_default().push(f);
    }

    let mut config_used = vec![false; cfg.entry_count()];
    let mut findings = Vec::new();
    for fa in analyses {
        let mut raw: Vec<Finding> = Vec::new();
        let mut passthrough: Vec<Finding> = Vec::new();
        for f in &fa.findings {
            if f.rule == rules::RULE_ALLOW_SYNTAX {
                // Malformed directives are never suppressible.
                passthrough.push(f.clone());
            } else {
                raw.push(f.clone());
            }
        }
        if let Some(cross) = by_path.remove(fa.ctx.rel_path.as_str()) {
            raw.extend(cross);
        }
        let mut used = vec![false; fa.allows.len()];
        for f in raw {
            let by_comment = fa.allows.iter().enumerate().any(|(k, a)| {
                let hit = a.rule == f.rule && a.target_line == f.line;
                if hit {
                    used[k] = true;
                }
                hit
            });
            let by_config = match cfg.match_entry(f.rule, &fa.ctx.rel_path) {
                Some(idx) => {
                    config_used[idx] = true;
                    true
                }
                None => false,
            };
            if !by_comment && !by_config {
                findings.push(f);
            }
        }
        findings.extend(passthrough);
        for (k, a) in fa.allows.iter().enumerate() {
            if !used[k] {
                findings.push(Finding::new(
                    &fa.ctx.rel_path,
                    a.line,
                    a.col,
                    rules::RULE_UNUSED_ALLOW,
                    format!(
                        "allow({}) suppresses no finding on line {}",
                        a.rule, a.target_line
                    ),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    assign_ids(&mut findings);
    CheckOutcome {
        findings,
        stale_config: (0..config_used.len())
            .filter(|&i| !config_used[i])
            .collect(),
    }
}

/// Lints one file's source in isolation (fixtures, tests). The cross-file
/// pass runs over this single file's summary, so same-file source→sink
/// flows are reported.
pub fn lint_source(src: &str, ctx: &FileCtx, cfg: &Config) -> Vec<Finding> {
    let analyses = [analyze_source(src, ctx)];
    finalize(&analyses, cfg).findings
}

/// Enumerates the workspace's lintable `.rs` files: `src/` of the root
/// package and of every crate under `crates/` except simlint itself, plus
/// — for the wall-clock rule — root `tests/` and `examples/` and each
/// crate's `tests/` (linted as `test_like`; the bench crate's sources are
/// both library and test-like).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut crate_dirs: Vec<(PathBuf, String)> = vec![(root.to_path_buf(), "xmem".to_string())];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name == "simlint" {
                continue;
            }
            crate_dirs.push((dir, name));
        }
    }

    let mut files = Vec::new();
    let mut add_tree = |top: &Path, mk: &dyn Fn(String, &Path) -> FileCtx| -> std::io::Result<()> {
        if !top.is_dir() {
            return Ok(());
        }
        let mut stack = vec![top.to_path_buf()];
        while let Some(d) = stack.pop() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            entries.sort();
            for p in entries {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .to_string_lossy()
                        .replace('\\', "/");
                    files.push((p.clone(), mk(rel, &p)));
                }
            }
        }
        Ok(())
    };

    for (dir, name) in &crate_dirs {
        let sim_state = rules::SIM_STATE_DIRS.contains(&name.as_str());
        // The bench crate's sources run the measurement harness —
        // wall-clock sites there need explicit config allows.
        let bench = name == "bench";
        add_tree(&dir.join("src"), &move |rel: String, p: &Path| {
            let in_bin = rel.contains("/src/bin/");
            let is_main = p.file_name().is_some_and(|n| n == "main.rs");
            FileCtx {
                rel_path: rel,
                sim_state,
                library: !in_bin && !is_main,
                test_like: bench,
            }
        })?;
        add_tree(&dir.join("tests"), &|rel: String, _: &Path| FileCtx {
            rel_path: rel,
            sim_state: false,
            library: false,
            test_like: true,
        })?;
    }
    add_tree(&root.join("examples"), &|rel: String, _: &Path| FileCtx {
        rel_path: rel,
        sim_state: false,
        library: false,
        test_like: true,
    })?;

    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

/// Full workspace lint with optional incremental cache.
pub fn check_full(root: &Path, use_cache: bool) -> Result<CheckOutcome, String> {
    let cfg = Config::load(root)?;
    let cached = if use_cache {
        cache::Cache::load(root)
    } else {
        cache::Cache::default()
    };
    let mut analyses = Vec::new();
    let mut hashes = Vec::new();
    for (path, ctx) in workspace_files(root).map_err(|e| e.to_string())? {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {}", path.display(), e))?;
        let hash = cache::content_hash(&src);
        let fa = cached
            .get(&ctx.rel_path, hash, &ctx)
            .unwrap_or_else(|| analyze_source(&src, &ctx));
        hashes.push(hash);
        analyses.push(fa);
    }
    if use_cache {
        let pairs: Vec<(u64, &FileAnalysis)> =
            hashes.iter().copied().zip(analyses.iter()).collect();
        // Cache write failure is not a lint failure.
        let _ = cache::store(root, &pairs);
    }
    Ok(finalize(&analyses, &cfg))
}

/// Lints the whole workspace rooted at `root` (uncached — the hermetic
/// library entry point used by tests). Findings come back sorted by
/// (path, line, col, rule) so output and the CI artifact are stable.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    check_full(root, false).map(|o| o.findings)
}
