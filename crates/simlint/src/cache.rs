//! Incremental analysis cache.
//!
//! Per-file analysis ([`crate::analyze_source`]) is a pure function of
//! file content, so its result is cached under `fnv64(content)` in a
//! line-oriented text file at `target/simlint/cache.v<RULES_VERSION>.txt`
//! (no serde — the workspace has no external dependencies). The
//! cross-file taint pass and allow/config application run from summaries
//! on every invocation; only lexing + local rules are skipped on a hit,
//! which is what keeps the warm full-workspace run under a second.
//!
//! The cache is an optimization, never a source of truth: any parse
//! error, version mismatch or hash miss falls back to re-analysis, and
//! the file is atomically rewritten from scratch after every run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::output::fnv64;
use crate::rules;
use crate::summary::{CallSite, Callee, FileSummary, FnInfo, SourceSite};
use crate::{FileAnalysis, Finding};

pub fn content_hash(src: &str) -> u64 {
    fnv64(src.as_bytes())
}

fn cache_path(root: &Path) -> PathBuf {
    root.join("target")
        .join("simlint")
        .join(format!("cache.v{}.txt", rules::RULES_VERSION))
}

#[derive(Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, String)>,
}

impl Cache {
    /// Loads the cache; any failure yields an empty cache.
    pub fn load(root: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(cache_path(root)) else {
            return Cache::default();
        };
        let mut entries = BTreeMap::new();
        let mut cur: Option<(String, u64, String)> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("file ") {
                let Some((path, hash)) = rest.rsplit_once(' ') else {
                    return Cache::default();
                };
                let Ok(hash) = u64::from_str_radix(hash, 16) else {
                    return Cache::default();
                };
                cur = Some((path.to_string(), hash, String::new()));
            } else if line == "end" {
                if let Some((path, hash, body)) = cur.take() {
                    entries.insert(path, (hash, body));
                }
            } else if let Some((_, _, body)) = cur.as_mut() {
                body.push_str(line);
                body.push('\n');
            }
        }
        Cache { entries }
    }

    /// A cached analysis for `rel_path` at exactly this content hash.
    pub fn get(&self, rel_path: &str, hash: u64, ctx: &crate::FileCtx) -> Option<FileAnalysis> {
        let (h, body) = self.entries.get(rel_path)?;
        if *h != hash {
            return None;
        }
        parse_analysis(body, ctx)
    }
}

/// Atomically rewrites the cache with the given (hash, analysis) set.
pub fn store(root: &Path, analyses: &[(u64, &FileAnalysis)]) -> std::io::Result<()> {
    let path = cache_path(root);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    for (hash, fa) in analyses {
        out.push_str(&format!("file {} {:016x}\n", fa.ctx.rel_path, hash));
        serialize_analysis(fa, &mut out);
        out.push_str("end\n");
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

/// Line grammar: one record per line, space-separated fixed fields, the
/// one free-text field (if any) last so it may contain spaces.
fn serialize_analysis(fa: &FileAnalysis, out: &mut String) {
    use std::fmt::Write;
    for f in &fa.findings {
        let _ = writeln!(out, "finding {} {} {} {}", f.line, f.col, f.rule, f.message);
    }
    for a in &fa.allows {
        let _ = writeln!(
            out,
            "allow {} {} {} {}",
            a.target_line, a.line, a.col, a.rule
        );
    }
    let s = &fa.summary;
    let _ = writeln!(out, "crate {}", s.crate_key);
    for f in &s.fns {
        let _ = writeln!(
            out,
            "fn {} {} {} {} {}",
            f.line,
            f.span.0,
            f.span.1,
            f.self_type.as_deref().unwrap_or("-"),
            f.name
        );
    }
    for c in &s.calls {
        let _ = writeln!(
            out,
            "call {} {} {} {}",
            c.caller,
            c.line,
            c.col,
            c.callee.display()
        );
    }
    for (alias, path) in &s.uses {
        let _ = writeln!(out, "use {} {}", alias, path);
    }
    for src in &s.sources {
        let _ = writeln!(
            out,
            "source {} {} {} {} {}",
            src.fn_idx, src.line, src.col, src.kind, src.what
        );
    }
    for &(f, line, col) in &s.relaxed {
        let _ = writeln!(out, "relaxed {} {} {}", f, line, col);
    }
    for (f, line, col, what) in &s.hazards {
        let _ = writeln!(out, "hazard {} {} {} {}", f, line, col, what);
    }
    for &f in &s.unwind_roots {
        let _ = writeln!(out, "unwind {}", f);
    }
}

/// Splits off `n` leading space-separated fields; the remainder (which
/// may contain spaces) is the last element.
fn fields(line: &str, n: usize) -> Option<Vec<&str>> {
    let mut parts = Vec::with_capacity(n + 1);
    let mut rest = line;
    for _ in 0..n {
        let (head, tail) = rest.split_once(' ')?;
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);
    Some(parts)
}

fn parse_analysis(body: &str, ctx: &crate::FileCtx) -> Option<FileAnalysis> {
    let mut fa = FileAnalysis {
        ctx: ctx.clone(),
        findings: Vec::new(),
        allows: Vec::new(),
        summary: FileSummary::default(),
    };
    for line in body.lines() {
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "finding" => {
                let p = fields(rest, 3)?;
                fa.findings.push(Finding::new(
                    &ctx.rel_path,
                    p[0].parse().ok()?,
                    p[1].parse().ok()?,
                    rules::rule_from_name(p[2])?,
                    p[3].to_string(),
                ));
            }
            "allow" => {
                let p = fields(rest, 3)?;
                fa.allows.push(rules::Allow {
                    target_line: p[0].parse().ok()?,
                    line: p[1].parse().ok()?,
                    col: p[2].parse().ok()?,
                    rule: p[3].to_string(),
                });
            }
            "crate" => fa.summary.crate_key = rest.to_string(),
            "fn" => {
                let p = fields(rest, 4)?;
                fa.summary.fns.push(FnInfo {
                    line: p[0].parse().ok()?,
                    span: (p[1].parse().ok()?, p[2].parse().ok()?),
                    self_type: (p[3] != "-").then(|| p[3].to_string()),
                    name: p[4].to_string(),
                });
            }
            "call" => {
                let p = fields(rest, 3)?;
                let callee = if let Some(m) = p[3].strip_prefix('.') {
                    Callee::Method(m.to_string())
                } else if p[3].contains("::") {
                    Callee::Qualified(p[3].split("::").map(str::to_string).collect())
                } else {
                    Callee::Bare(p[3].to_string())
                };
                fa.summary.calls.push(CallSite {
                    caller: p[0].parse().ok()?,
                    line: p[1].parse().ok()?,
                    col: p[2].parse().ok()?,
                    callee,
                });
            }
            "use" => {
                let p = fields(rest, 1)?;
                fa.summary.uses.push((p[0].to_string(), p[1].to_string()));
            }
            "source" => {
                let p = fields(rest, 4)?;
                fa.summary.sources.push(SourceSite {
                    fn_idx: p[0].parse().ok()?,
                    line: p[1].parse().ok()?,
                    col: p[2].parse().ok()?,
                    kind: p[3].to_string(),
                    what: p[4].to_string(),
                });
            }
            "relaxed" => {
                let p = fields(rest, 2)?;
                fa.summary.relaxed.push((
                    p[0].parse().ok()?,
                    p[1].parse().ok()?,
                    p[2].parse().ok()?,
                ));
            }
            "hazard" => {
                let p = fields(rest, 3)?;
                fa.summary.hazards.push((
                    p[0].parse().ok()?,
                    p[1].parse().ok()?,
                    p[2].parse().ok()?,
                    p[3].to_string(),
                ));
            }
            "unwind" => fa.summary.unwind_roots.push(rest.parse().ok()?),
            _ => return None,
        }
    }
    Some(fa)
}
