//! A small Rust lexer — just enough structure for simlint's rules.
//!
//! This is deliberately not a full parser. The workspace builds offline
//! with zero external dependencies, so `syn` is not available; instead
//! simlint works on a token stream that understands the constructs where
//! naive substring matching lies: string/char literals, (nested block)
//! comments, raw strings, lifetimes, numeric literals with suffixes, and
//! multi-character operators. Every token carries a 1-based line:col so
//! diagnostics point at real source locations.

/// Token classification. `Punct` text is the full multi-char operator
/// (`==`, `..=`, `->`, ...) so rules can match operators exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// Numeric literal; `float` is true for `1.0`, `1e9`, `2f64`, ...
    Num {
        float: bool,
    },
    Str,
    Char,
    Lifetime,
    Punct,
    Comment,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, k: usize) -> char {
        *self.chars.get(self.i + k).unwrap_or(&'\0')
    }

    fn eof(&self) -> bool {
        self.i >= self.chars.len()
    }

    fn bump(&mut self, out: &mut String) {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        out.push(c);
    }

    fn bump_n(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            if self.eof() {
                break;
            }
            self.bump(out);
        }
    }

    fn line_comment(&mut self, out: &mut String) {
        while !self.eof() && self.peek(0) != '\n' {
            self.bump(out);
        }
    }

    fn block_comment(&mut self, out: &mut String) {
        self.bump_n(2, out); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 && !self.eof() {
            if self.peek(0) == '/' && self.peek(1) == '*' {
                depth += 1;
                self.bump_n(2, out);
            } else if self.peek(0) == '*' && self.peek(1) == '/' {
                depth -= 1;
                self.bump_n(2, out);
            } else {
                self.bump(out);
            }
        }
    }

    /// Plain (non-raw) string: `"` already peeked, handles `\"` escapes.
    fn string(&mut self, out: &mut String) {
        self.bump(out); // opening quote
        while !self.eof() {
            match self.peek(0) {
                '\\' => self.bump_n(2, out),
                '"' => {
                    self.bump(out);
                    break;
                }
                _ => self.bump(out),
            }
        }
    }

    /// Raw string starting at `r` (any number of `#`): `r"..."`, `r#"..."#`.
    fn raw_string(&mut self, out: &mut String) {
        self.bump(out); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == '#' {
            hashes += 1;
            self.bump(out);
        }
        self.bump(out); // opening quote
        while !self.eof() {
            if self.peek(0) == '"' && (1..=hashes).all(|k| self.peek(k) == '#') {
                self.bump_n(1 + hashes, out);
                break;
            }
            self.bump(out);
        }
    }

    fn char_literal(&mut self, out: &mut String) {
        self.bump(out); // opening quote
        if self.peek(0) == '\\' {
            self.bump_n(2, out);
        } else {
            self.bump(out);
        }
        if self.peek(0) == '\'' {
            self.bump(out);
        }
    }

    fn lifetime(&mut self, out: &mut String) {
        self.bump(out); // `'`
        while is_ident_continue(self.peek(0)) {
            self.bump(out);
        }
    }

    fn number(&mut self, out: &mut String) -> bool {
        let mut float = false;
        if self.peek(0) == '0' && matches!(self.peek(1), 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
            self.bump_n(2, out);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == '_' {
                self.bump(out);
            }
            return false;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == '_' {
            self.bump(out);
        }
        if self.peek(0) == '.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump(out);
            while self.peek(0).is_ascii_digit() || self.peek(0) == '_' {
                self.bump(out);
            }
        } else if self.peek(0) == '.' && self.peek(1) != '.' && !is_ident_start(self.peek(1)) {
            // `1.` with no fraction digits — still a float, but not when
            // followed by `..` (range) or an identifier (method call).
            float = true;
            self.bump(out);
        }
        if matches!(self.peek(0), 'e' | 'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), '+' | '-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump(out);
            if matches!(self.peek(0), '+' | '-') {
                self.bump(out);
            }
            while self.peek(0).is_ascii_digit() || self.peek(0) == '_' {
                self.bump(out);
            }
        }
        // Type suffix (`u64`, `f32`, ...). An `f` suffix marks a float.
        if is_ident_start(self.peek(0)) {
            if self.peek(0) == 'f' {
                float = true;
            }
            while is_ident_continue(self.peek(0)) {
                self.bump(out);
            }
        }
        float
    }
}

pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while !lx.eof() {
        let c = lx.peek(0);
        if c.is_whitespace() {
            let mut scratch = String::new();
            lx.bump(&mut scratch);
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();
        let kind = if c == '/' && lx.peek(1) == '/' {
            lx.line_comment(&mut text);
            TokKind::Comment
        } else if c == '/' && lx.peek(1) == '*' {
            lx.block_comment(&mut text);
            TokKind::Comment
        } else if c == '"' {
            lx.string(&mut text);
            TokKind::Str
        } else if c == 'r' && (lx.peek(1) == '"' || (lx.peek(1) == '#' && raw_ahead(&lx))) {
            lx.raw_string(&mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == '"' {
            lx.bump(&mut text);
            lx.string(&mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == 'r' && (lx.peek(2) == '"' || lx.peek(2) == '#') {
            lx.bump(&mut text);
            lx.raw_string(&mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == '\'' {
            lx.bump(&mut text);
            lx.char_literal(&mut text);
            TokKind::Char
        } else if c == '\'' {
            // `'a'` is a char literal, `'a` is a lifetime. A lifetime is
            // never followed by a closing quote right after its identifier.
            if lx.peek(1) == '\\' || (is_ident_continue(lx.peek(1)) && lx.peek(2) == '\'') {
                lx.char_literal(&mut text);
                TokKind::Char
            } else {
                lx.lifetime(&mut text);
                TokKind::Lifetime
            }
        } else if c.is_ascii_digit() {
            let float = lx.number(&mut text);
            TokKind::Num { float }
        } else if is_ident_start(c) {
            while is_ident_continue(lx.peek(0)) {
                lx.bump(&mut text);
            }
            TokKind::Ident
        } else {
            let mut matched = false;
            for op in OPERATORS {
                if op.chars().enumerate().all(|(k, ch)| lx.peek(k) == ch) {
                    lx.bump_n(op.chars().count(), &mut text);
                    matched = true;
                    break;
                }
            }
            if !matched {
                lx.bump(&mut text);
            }
            TokKind::Punct
        };
        toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

/// After `r#`, is this actually a raw string (`r#"..."`) rather than a raw
/// identifier (`r#match`)? Look past the `#`s for the opening quote.
fn raw_ahead(lx: &Lexer) -> bool {
    let mut k = 1;
    while lx.peek(k) == '#' {
        k += 1;
    }
    lx.peek(k) == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let toks = kinds(r#"let s = "HashMap"; // HashMap here"#);
        assert!(toks
            .iter()
            .all(|(k, t)| t != "HashMap" || matches!(k, TokKind::Str | TokKind::Comment)));
    }

    #[test]
    fn float_detection() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Num { float: true });
        assert_eq!(kinds("2e9")[0].0, TokKind::Num { float: true });
        assert_eq!(kinds("3f64")[0].0, TokKind::Num { float: true });
        assert_eq!(kinds("7u64")[0].0, TokKind::Num { float: false });
        assert_eq!(kinds("0x1E")[0].0, TokKind::Num { float: false });
        // Ranges must not swallow the dots.
        let r = kinds("0..10");
        assert_eq!(r[0].0, TokKind::Num { float: false });
        assert_eq!(r[1].1, "..");
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(kinds("'a>")[0].0, TokKind::Lifetime);
        assert_eq!(kinds("'a'")[0].0, TokKind::Char);
        assert_eq!(kinds(r"'\n'")[0].0, TokKind::Char);
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a >= 1.0");
        assert_eq!(toks[1].1, ">=");
        assert_eq!(kinds("x..=y")[1].1, "..=");
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r##"r#"with "quotes" inside"# after"##);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn line_col_tracking() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
