//! The cross-file pass: an approximate workspace call graph over the
//! per-file summaries, and the three rules that need it.
//!
//! * `nondet-taint` — a nondeterminism source site is flagged iff some
//!   function on its caller chain can also reach a result-emitting sink
//!   (`to_json`, `write_report`, `write_point_record`, ...). The finding
//!   carries the full source→sink chain as flow steps.
//! * `sync-audit` (graph half) — `Ordering::Relaxed` inside a function
//!   that can reach a result sink.
//! * `panic-in-worker` — panic hazards (`.lock().unwrap()`, `RefCell`
//!   borrows) reachable from a `catch_unwind` isolation boundary, where
//!   a panic escapes per-point isolation (poisoned lock) or double-borrow
//!   panics cannot be soundly contained.
//!
//! The graph is a deliberate over-approximation: bare calls resolve to
//! free functions (same file, then `use` imports, then same crate),
//! method calls resolve to every impl method of that name (except
//! [`UBIQUITOUS_METHODS`] — names like `map`/`get`/`load` that are
//! overwhelmingly `std` calls and would flood the graph with false
//! edges), qualified calls through `use`-aliases and crate/module
//! paths. `std`/`core`/`alloc` paths are external and contribute no
//! edges. False edges make the pass conservative (more findings,
//! silenced per-site with a reason); missing edges are possible for
//! trait-object dispatch and shadowed ubiquitous names, which is why
//! the local rules still run unconditionally.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::{RULE_PANIC_WORKER, RULE_SYNC_AUDIT, RULE_TAINT};
use crate::summary::Callee;
use crate::{FileAnalysis, Finding, FlowStep};

/// Calls that emit results: the `xmem-report-v1` serializers and sinks.
/// A function *named* one of these is a sink itself; a function calling
/// one is in the sink-reaching set.
const SINK_CALLS: &[&str] = &[
    "to_json",
    "to_json_with",
    "write_report",
    "write_point_record",
    "flat_cells",
];

const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Method names that are overwhelmingly `std` container / iterator /
/// atomic / IO calls. An unqualified `.name(...)` with one of these
/// names is *not* resolved against workspace impl methods — linking
/// every `(0..n).map(...)` to a workspace `fn map` (or `done.load(..)`
/// to an unrelated `fn load`) floods the graph with false edges and
/// turns the sink-reaching set into "everything". A workspace method
/// that shadows one of these names only loses its *method-syntax* edges;
/// qualified calls (`Machine::map(...)`) still resolve.
const UBIQUITOUS_METHODS: &[&str] = &[
    // Iterator adapters / consumers.
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "and_then",
    "or_else",
    "fold",
    "for_each",
    "zip",
    "chain",
    "rev",
    "enumerate",
    "take",
    "take_while",
    "skip",
    "skip_while",
    "step_by",
    "collect",
    "count",
    "last",
    "nth",
    "next",
    "peekable",
    "peek",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "position",
    "find",
    "find_map",
    "any",
    "all",
    "by_ref",
    "cloned",
    "copied",
    "inspect",
    "windows",
    "chunks",
    "flatten",
    // Container access / mutation.
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "entry",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "extend",
    "append",
    "truncate",
    "resize",
    "reserve",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "dedup",
    "binary_search",
    "split_at",
    "split_off",
    "first",
    "fill",
    "swap",
    "to_vec",
    "as_slice",
    "as_mut_slice",
    // Option/Result plumbing.
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "map_err",
    // Conversions, strings, comparison.
    "clone",
    "to_owned",
    "to_string",
    "into",
    "parse",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "borrow",
    "borrow_mut",
    "trim",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "replace",
    "lines",
    "chars",
    "bytes",
    "split",
    "split_whitespace",
    "join",
    "concat",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    // Atomics, locks, IO, threads, numerics.
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "lock",
    "try_lock",
    "read",
    "write",
    "flush",
    "write_all",
    "write_fmt",
    "read_to_string",
    "spawn",
    "send",
    "recv",
    "abs",
    "powi",
    "powf",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "rem_euclid",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "to_le_bytes",
    "to_be_bytes",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
];

/// A function in the workspace graph: (file index, fn index within file).
type Gid = usize;

struct Graph<'a> {
    files: &'a [FileAnalysis],
    /// gid → (file index, fn index).
    fns: Vec<(usize, usize)>,
    /// edges[g] = calls out of g: (callee gid, call line, call col).
    edges: Vec<Vec<(Gid, u32, u32)>>,
    /// redges[g] = callers of g: (caller gid, line/col of the call site
    /// inside the caller).
    redges: Vec<Vec<(Gid, u32, u32)>>,
    /// Direct sink evidence in g: (sink name, line).
    sink_call: Vec<Option<(String, u32)>>,
    /// g can reach a sink (the up-closure of sink evidence over callers).
    in_e: Vec<bool>,
    /// For g ∈ E without direct evidence: the next call toward the sink.
    next_to_sink: Vec<Option<(Gid, u32)>>,
}

impl<'a> Graph<'a> {
    fn file_of(&self, g: Gid) -> &str {
        &self.files[self.fns[g].0].ctx.rel_path
    }

    fn info(&self, g: Gid) -> &crate::summary::FnInfo {
        let (fi, fj) = self.fns[g];
        &self.files[fi].summary.fns[fj]
    }

    /// Display name: `Type::method` or `free_fn`.
    fn name(&self, g: Gid) -> String {
        let f = self.info(g);
        match &f.self_type {
            Some(ty) => format!("{}::{}", ty, f.name),
            None => f.name.clone(),
        }
    }
}

pub fn run(files: &[FileAnalysis]) -> Vec<Finding> {
    let g = build(files);
    let mut out = Vec::new();
    taint_findings(&g, &mut out);
    relaxed_findings(&g, &mut out);
    panic_findings(&g, &mut out);
    out
}

fn build(files: &[FileAnalysis]) -> Graph<'_> {
    let mut fns = Vec::new();
    let mut base = Vec::with_capacity(files.len());
    for (fi, fa) in files.iter().enumerate() {
        base.push(fns.len());
        for fj in 0..fa.summary.fns.len() {
            fns.push((fi, fj));
        }
    }
    let n = fns.len();

    // Name indexes for resolution.
    let mut free_in_file: BTreeMap<(usize, &str), Vec<Gid>> = BTreeMap::new();
    let mut free_in_crate: BTreeMap<(&str, &str), Vec<Gid>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<Gid>> = BTreeMap::new();
    let mut typed_methods: BTreeMap<(&str, &str), Vec<Gid>> = BTreeMap::new();
    let mut crate_keys: BTreeSet<&str> = BTreeSet::new();
    for (g, &(fi, fj)) in fns.iter().enumerate() {
        let sum = &files[fi].summary;
        crate_keys.insert(&sum.crate_key);
        let f = &sum.fns[fj];
        match &f.self_type {
            Some(ty) => {
                methods.entry(&f.name).or_default().push(g);
                typed_methods
                    .entry((ty.as_str(), f.name.as_str()))
                    .or_default()
                    .push(g);
            }
            None => {
                free_in_file
                    .entry((fi, f.name.as_str()))
                    .or_default()
                    .push(g);
                free_in_crate
                    .entry((sum.crate_key.as_str(), f.name.as_str()))
                    .or_default()
                    .push(g);
            }
        }
    }

    let resolve_path = |fi: usize, segs: &[String]| -> Vec<Gid> {
        // Substitute `use` aliases and `crate` in the leading segment.
        let sum = &files[fi].summary;
        let mut full: Vec<String> = segs.to_vec();
        if full[0] == "crate" {
            full[0] = sum.crate_key.clone();
        } else if let Some((_, path)) = sum
            .uses
            .iter()
            .find(|(alias, _)| alias.as_str() == full[0].as_str())
        {
            let mut expanded: Vec<String> = path.split("::").map(str::to_string).collect();
            expanded.extend(full.into_iter().skip(1));
            full = expanded;
            if full[0] == "crate" {
                full[0] = sum.crate_key.clone();
            }
        }
        if EXTERNAL_ROOTS.contains(&full[0].as_str()) || full.len() < 2 {
            return Vec::new();
        }
        let name = full.last().unwrap().as_str();
        let parent = full[full.len() - 2].as_str();
        if let Some(v) = typed_methods.get(&(parent, name)) {
            return v.clone();
        }
        if crate_keys.contains(parent) {
            return free_in_crate
                .get(&(parent, name))
                .cloned()
                .unwrap_or_default();
        }
        // `module::helper(...)` within the same crate, or a path whose
        // root is another crate with intervening modules.
        let root = full[0].as_str();
        let key = if crate_keys.contains(root) {
            root
        } else {
            sum.crate_key.as_str()
        };
        free_in_crate.get(&(key, name)).cloned().unwrap_or_default()
    };

    let mut edges: Vec<Vec<(Gid, u32, u32)>> = vec![Vec::new(); n];
    let mut redges: Vec<Vec<(Gid, u32, u32)>> = vec![Vec::new(); n];
    let mut sink_call: Vec<Option<(String, u32)>> = vec![None; n];

    for (g, &(fi, fj)) in fns.iter().enumerate() {
        let f = &files[fi].summary.fns[fj];
        if SINK_CALLS.contains(&f.name.as_str()) {
            sink_call[g] = Some((f.name.clone(), f.line));
        }
    }

    for (fi, fa) in files.iter().enumerate() {
        for call in &fa.summary.calls {
            let caller = base[fi] + call.caller;
            let last = match &call.callee {
                Callee::Bare(n) | Callee::Method(n) => n.as_str(),
                Callee::Qualified(segs) => segs.last().map(String::as_str).unwrap_or(""),
            };
            if SINK_CALLS.contains(&last) && sink_call[caller].is_none() {
                sink_call[caller] = Some((last.to_string(), call.line));
            }
            let targets: Vec<Gid> = match &call.callee {
                Callee::Bare(name) => {
                    if let Some(v) = free_in_file.get(&(fi, name.as_str())) {
                        v.clone()
                    } else if let Some((_, path)) =
                        fa.summary.uses.iter().find(|(alias, _)| alias == name)
                    {
                        let segs: Vec<String> = path.split("::").map(str::to_string).collect();
                        resolve_path(fi, &segs)
                    } else {
                        let mut v = free_in_crate
                            .get(&(fa.summary.crate_key.as_str(), name.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        // Glob imports: `use other::*` may bring it in.
                        for (alias, prefix) in &fa.summary.uses {
                            if alias == "*" {
                                let mut segs: Vec<String> =
                                    prefix.split("::").map(str::to_string).collect();
                                segs.push(name.clone());
                                v.extend(resolve_path(fi, &segs));
                            }
                        }
                        v
                    }
                }
                Callee::Method(name) => {
                    if UBIQUITOUS_METHODS.contains(&name.as_str()) {
                        Vec::new()
                    } else {
                        methods.get(name.as_str()).cloned().unwrap_or_default()
                    }
                }
                Callee::Qualified(segs) => resolve_path(fi, segs),
            };
            for t in targets {
                if t != caller {
                    edges[caller].push((t, call.line, call.col));
                    redges[t].push((caller, call.line, call.col));
                }
            }
        }
    }
    for e in edges.iter_mut().chain(redges.iter_mut()) {
        e.sort_unstable();
        e.dedup();
    }

    // E: the up-closure of sink evidence over callers, with the first
    // discovered call-toward-sink recorded for chain reconstruction.
    let mut in_e = vec![false; n];
    let mut next_to_sink: Vec<Option<(Gid, u32)>> = vec![None; n];
    let mut queue: VecDeque<Gid> = (0..n).filter(|&g| sink_call[g].is_some()).collect();
    for &g in &queue {
        in_e[g] = true;
    }
    while let Some(g) = queue.pop_front() {
        for &(caller, line, _) in &redges[g] {
            if !in_e[caller] {
                in_e[caller] = true;
                next_to_sink[caller] = Some((g, line));
                queue.push_back(caller);
            }
        }
    }

    Graph {
        files,
        fns,
        edges,
        redges,
        sink_call,
        in_e,
        next_to_sink,
    }
}

/// The flow steps from `m` (∈ E) down to its sink call, including the
/// terminal "emits via" step. Returns the sink's name.
fn down_chain(g: &Graph, mut m: Gid, flow: &mut Vec<FlowStep>) -> String {
    loop {
        if let Some((sink, line)) = &g.sink_call[m] {
            flow.push(FlowStep {
                path: g.file_of(m).to_string(),
                line: *line,
                note: format!("`{}` emits via `{}(…)`", g.name(m), sink),
            });
            return sink.clone();
        }
        let Some((callee, line)) = g.next_to_sink[m] else {
            return String::new();
        };
        flow.push(FlowStep {
            path: g.file_of(m).to_string(),
            line,
            note: format!("`{}` calls `{}`", g.name(m), g.name(callee)),
        });
        m = callee;
    }
}

/// BFS up the caller chains from `f0` to the nearest function in E.
/// Returns the meeting function and the caller chain `f0 → … → meeting`
/// as flow steps.
fn up_to_sink_reacher(g: &Graph, f0: Gid) -> Option<(Gid, Vec<FlowStep>)> {
    if g.in_e[f0] {
        return Some((f0, Vec::new()));
    }
    let mut parent: BTreeMap<Gid, (Gid, u32)> = BTreeMap::new();
    let mut queue = VecDeque::from([f0]);
    let mut meeting = None;
    'bfs: while let Some(cur) = queue.pop_front() {
        for &(caller, line, _) in &g.redges[cur] {
            if caller == f0 || parent.contains_key(&caller) {
                continue;
            }
            parent.insert(caller, (cur, line));
            if g.in_e[caller] {
                meeting = Some(caller);
                break 'bfs;
            }
            queue.push_back(caller);
        }
    }
    let m = meeting?;
    // Backtrack m → f0, then emit in source-to-sink order.
    let mut rev = Vec::new();
    let mut cur = m;
    while cur != f0 {
        let &(child, line) = parent.get(&cur)?;
        rev.push(FlowStep {
            path: g.file_of(cur).to_string(),
            line,
            note: format!("`{}` called from `{}`", g.name(child), g.name(cur)),
        });
        cur = child;
    }
    rev.reverse();
    Some((m, rev))
}

fn taint_findings(g: &Graph, out: &mut Vec<Finding>) {
    for (fi, fa) in g.files.iter().enumerate() {
        for src in &fa.summary.sources {
            let f0 = g
                .fns
                .iter()
                .position(|&(i, j)| i == fi && j == src.fn_idx)
                .expect("source fn in graph");
            let Some((m, mut flow)) = up_to_sink_reacher(g, f0) else {
                continue;
            };
            let sink = down_chain(g, m, &mut flow);
            let mut finding = Finding::new(
                &fa.ctx.rel_path,
                src.line,
                src.col,
                RULE_TAINT,
                format!(
                    "nondeterminism source `{}` ({}) can reach result sink `{}`",
                    src.what, src.kind, sink
                ),
            );
            finding.flow = flow;
            out.push(finding);
        }
    }
}

fn relaxed_findings(g: &Graph, out: &mut Vec<Finding>) {
    for (fi, fa) in g.files.iter().enumerate() {
        for &(fn_idx, line, col) in &fa.summary.relaxed {
            let f = g
                .fns
                .iter()
                .position(|&(i, j)| i == fi && j == fn_idx)
                .expect("relaxed fn in graph");
            if !g.in_e[f] {
                continue;
            }
            let mut flow = Vec::new();
            let sink = down_chain(g, f, &mut flow);
            let mut finding = Finding::new(
                &fa.ctx.rel_path,
                line,
                col,
                RULE_SYNC_AUDIT,
                format!(
                    "`Ordering::Relaxed` in `{}`, which can reach result sink `{}`",
                    g.name(f),
                    sink
                ),
            );
            finding.flow = flow;
            out.push(finding);
        }
    }
}

fn panic_findings(g: &Graph, out: &mut Vec<Finding>) {
    // Forward reachability from every catch_unwind-containing function.
    let n = g.fns.len();
    let mut from: Vec<Option<(Gid, u32)>> = vec![None; n]; // parent toward root
    let mut reached = vec![false; n];
    let mut roots: Vec<Gid> = Vec::new();
    for (fi, fa) in g.files.iter().enumerate() {
        for &fn_idx in &fa.summary.unwind_roots {
            let r = g
                .fns
                .iter()
                .position(|&(i, j)| i == fi && j == fn_idx)
                .expect("unwind root in graph");
            roots.push(r);
            reached[r] = true;
        }
    }
    roots.sort_unstable();
    let mut queue: VecDeque<Gid> = roots.iter().copied().collect();
    while let Some(cur) = queue.pop_front() {
        for &(callee, line, _) in &g.edges[cur] {
            if !reached[callee] {
                reached[callee] = true;
                from[callee] = Some((cur, line));
                queue.push_back(callee);
            }
        }
    }

    for (fi, fa) in g.files.iter().enumerate() {
        for (fn_idx, line, col, what) in &fa.summary.hazards {
            let h = g
                .fns
                .iter()
                .position(|&(i, j)| i == fi && j == *fn_idx)
                .expect("hazard fn in graph");
            if !reached[h] {
                continue;
            }
            // Chain root → … → h, reconstructed backwards.
            let mut rev = Vec::new();
            let mut cur = h;
            while let Some((parent, call_line)) = from[cur] {
                rev.push(FlowStep {
                    path: g.file_of(parent).to_string(),
                    line: call_line,
                    note: format!("`{}` calls `{}`", g.name(parent), g.name(cur)),
                });
                cur = parent;
            }
            rev.reverse();
            let root_name = g.name(cur);
            let mut finding = Finding::new(
                &fa.ctx.rel_path,
                *line,
                *col,
                RULE_PANIC_WORKER,
                format!(
                    "`{}` can panic across the `catch_unwind` isolation boundary in `{}`",
                    what, root_name
                ),
            );
            finding.flow = rev;
            out.push(finding);
        }
    }
}
