//! Per-file structural summaries: the input to the cross-file taint pass.
//!
//! [`summarize`] walks the token stream once and extracts just enough
//! structure for [`crate::taint`] to build a workspace call graph: which
//! functions the file defines (and for which `impl` type), which calls
//! each function makes, what `use` imports are in scope, plus the
//! rule-relevant sites — nondeterminism sources, `Ordering::Relaxed`
//! uses, panic hazards, and `catch_unwind` boundaries. Summaries are pure
//! functions of file content, which is what makes the incremental cache
//! ([`crate::cache`]) sound.

use crate::lexer::{Tok, TokKind};
use crate::rules;
use crate::FileCtx;

#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileSummary {
    /// Crate identifier as it appears in `use` paths (`xmem_sim`, ...).
    pub crate_key: String,
    pub fns: Vec<FnInfo>,
    pub calls: Vec<CallSite>,
    /// `use` imports: (alias, full path). Alias `*` records a glob prefix.
    pub uses: Vec<(String, String)>,
    pub sources: Vec<SourceSite>,
    /// `Ordering::Relaxed` sites: (fn index, line, col).
    pub relaxed: Vec<(usize, u32, u32)>,
    /// Panic hazards for R8: (fn index, line, col, description).
    pub hazards: Vec<(usize, u32, u32, String)>,
    /// Indices of functions whose body contains `catch_unwind`.
    pub unwind_roots: Vec<usize>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FnInfo {
    pub name: String,
    /// The `impl` type this is a method of, if any.
    pub self_type: Option<String>,
    pub line: u32,
    /// Body line span (start = `fn` line, end = closing-brace line), used
    /// to attribute externally-detected sites to their enclosing function.
    pub span: (u32, u32),
}

/// How a call names its target; resolution happens workspace-wide in
/// [`crate::taint`].
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// `name(...)` — resolved against free functions.
    Bare(String),
    /// `.name(...)` — resolved against every impl method of that name.
    Method(String),
    /// `a::b::name(...)` — resolved through `use` imports and crate paths.
    Qualified(Vec<String>),
}

impl Callee {
    pub fn display(&self) -> String {
        match self {
            Callee::Bare(n) => n.clone(),
            Callee::Method(n) => format!(".{n}"),
            Callee::Qualified(segs) => segs.join("::"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    pub caller: usize,
    pub callee: Callee,
    pub line: u32,
    pub col: u32,
}

/// A nondeterminism source occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSite {
    pub fn_idx: usize,
    pub line: u32,
    pub col: u32,
    /// e.g. `Instant::now()`.
    pub what: String,
    /// Source family: `wall-clock`, `env`, `thread-id`, `ambient-rand`,
    /// `hash-iter`, `unordered-reduce`.
    pub kind: String,
}

/// The crate identifier a workspace-relative path belongs to, normalized
/// to `use`-path form (package `xmem-sim` imports as `xmem_sim`). Paths
/// outside `crates/` (the root package's `src/`, `tests/`, `examples/`)
/// belong to the root crate `xmem`.
pub fn crate_key_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or("");
        return match dir {
            "sim" => "xmem_sim".to_string(),
            "bench" => "xmem_bench".to_string(),
            "compress" => "compress_sim".to_string(),
            other => other.replace('-', "_"),
        };
    }
    "xmem".to_string()
}

/// Identifiers that can never be call targets or callee path segments.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "await"
            | "async"
    )
}

pub fn summarize(toks: &[Tok], mask: &[bool], ctx: &FileCtx) -> FileSummary {
    let mut s = FileSummary {
        crate_key: crate_key_of(&ctx.rel_path),
        ..Default::default()
    };

    let mut depth: i32 = 0;
    // (brace depth of the frame's `{`, payload).
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut fn_stack: Vec<(i32, usize)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut pending_impl: Option<String> = None;
    let mut sig_depth: i32 = 0; // paren/bracket depth inside a pending signature

    let next_code =
        |k: usize| -> Option<&Tok> { toks[k + 1..].iter().find(|t| t.kind != TokKind::Comment) };
    let prev_code =
        |k: usize| -> Option<&Tok> { toks[..k].iter().rev().find(|t| t.kind != TokKind::Comment) };

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Comment {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(fi) = pending_fn.take() {
                        fn_stack.push((depth, fi));
                        pending_impl = None;
                    } else if let Some(ty) = pending_impl.take() {
                        impl_stack.push((depth, ty));
                    }
                }
                "}" => {
                    if fn_stack.last().is_some_and(|&(d, _)| d == depth) {
                        let (_, fi) = fn_stack.pop().unwrap();
                        s.fns[fi].span.1 = t.line;
                    }
                    if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                        impl_stack.pop();
                    }
                    depth -= 1;
                }
                "(" | "[" if pending_fn.is_some() || pending_impl.is_some() => sig_depth += 1,
                ")" | "]" if pending_fn.is_some() || pending_impl.is_some() => sig_depth -= 1,
                ";" if sig_depth == 0 => {
                    // Trait method declaration / type-position `impl` with
                    // no body.
                    if let Some(fi) = pending_fn.take() {
                        s.fns[fi].span.1 = t.line;
                    }
                    pending_impl = None;
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if mask[i] || t.kind != TokKind::Ident {
            i += 1;
            continue;
        }

        match t.text.as_str() {
            "use" if fn_stack.is_empty() => {
                i = collect_use(toks, i + 1, "", &mut s.uses);
                continue;
            }
            "impl" if !type_position_impl(prev_code(i)) => {
                pending_impl = impl_type_name(toks, i);
                sig_depth = 0;
            }
            "fn" => {
                if let Some(name) = next_code(i).filter(|n| n.kind == TokKind::Ident) {
                    let self_type = impl_stack
                        .last()
                        .filter(|&&(d, _)| d == depth)
                        .map(|(_, ty)| ty.clone());
                    s.fns.push(FnInfo {
                        name: name.text.clone(),
                        self_type,
                        line: name.line,
                        span: (name.line, name.line),
                    });
                    pending_fn = Some(s.fns.len() - 1);
                    sig_depth = 0;
                }
            }
            "catch_unwind" if !fn_stack.is_empty() => {
                let fi = fn_stack.last().unwrap().1;
                if !s.unwind_roots.contains(&fi) {
                    s.unwind_roots.push(fi);
                }
            }
            "Relaxed" if !fn_stack.is_empty() && prev_code(i).is_some_and(|p| p.is_punct("::")) => {
                s.relaxed.push((fn_stack.last().unwrap().1, t.line, t.col));
            }
            _ => {}
        }

        if let Some(&(_, caller)) = fn_stack.last() {
            collect_call(toks, i, caller, &impl_stack, &mut s.calls);
            collect_hazard(toks, i, caller, &mut s.hazards);
            if ctx.sim_state {
                collect_source(toks, i, caller, &mut s.sources);
            }
        }
        i += 1;
    }

    if ctx.sim_state {
        attach_reduce_sources(toks, mask, &mut s);
    }
    s
}

/// An `impl` preceded by these tokens is a type-position `impl Trait`,
/// not an impl item.
fn type_position_impl(prev: Option<&Tok>) -> bool {
    match prev {
        Some(p) if p.kind == TokKind::Punct => {
            matches!(
                p.text.as_str(),
                "->" | "(" | "," | ":" | "=" | "<" | "&" | "+"
            )
        }
        Some(p) => p.is_ident("dyn"),
        None => false,
    }
}

/// The self type of an `impl` item: the last path segment before the
/// body, taking the `for`-target when present (`impl Display for Atom`
/// → `Atom`), skipping generic parameter lists.
fn impl_type_name(toks: &[Tok], impl_idx: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    for t in &toks[impl_idx + 1..] {
        match t.kind {
            TokKind::Comment => {}
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" | ";" if angle <= 0 => break,
                _ => {}
            },
            TokKind::Ident if angle <= 0 => match t.text.as_str() {
                "where" => break,
                "for" => last = None,
                "unsafe" | "dyn" | "mut" | "const" => {}
                name => last = Some(name.to_string()),
            },
            _ => {}
        }
    }
    last
}

/// Parses one `use` tree starting at `k` (just past `use` or a group
/// delimiter), appending (alias, path) pairs; returns the index after the
/// tree (past the closing `;` at top level).
fn collect_use(toks: &[Tok], k: usize, prefix: &str, out: &mut Vec<(String, String)>) -> usize {
    let mut path = prefix.to_string();
    let mut last = String::new();
    let mut k = k;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Comment => k += 1,
            TokKind::Ident if t.text == "as" => {
                // `path as Alias`
                if let Some(alias) = toks[k + 1..]
                    .iter()
                    .find(|n| n.kind != TokKind::Comment)
                    .filter(|n| n.kind == TokKind::Ident)
                {
                    out.push((alias.text.clone(), path.clone()));
                }
                // Skip to the end of this tree.
                while k < toks.len()
                    && !(toks[k].kind == TokKind::Punct
                        && matches!(toks[k].text.as_str(), "," | "}" | ";"))
                {
                    k += 1;
                }
                return finish_use(toks, k, None, out);
            }
            TokKind::Ident => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(&t.text);
                last = t.text.clone();
                k += 1;
            }
            TokKind::Punct => match t.text.as_str() {
                "::" => k += 1,
                "*" => {
                    out.push(("*".to_string(), path.clone()));
                    last.clear();
                    k += 1;
                }
                "{" => {
                    k += 1;
                    loop {
                        k = collect_use(toks, k, &path, out);
                        match toks.get(k) {
                            Some(t) if t.is_punct(",") => k += 1,
                            Some(t) if t.is_punct("}") => {
                                k += 1;
                                break;
                            }
                            _ => break,
                        }
                    }
                    return finish_use(toks, k, None, out);
                }
                "," | "}" | ";" => return finish_use(toks, k, named(&last, &path), out),
                _ => k += 1,
            },
            _ => k += 1,
        }
    }
    k
}

fn named(last: &str, path: &str) -> Option<(String, String)> {
    if last.is_empty() || last == "self" {
        // `use a::b::{self, c}` — `self` imports the module under its own
        // name, which call resolution handles via the full path anyway.
        None
    } else {
        Some((last.to_string(), path.to_string()))
    }
}

/// Emits a pending entry and, at top level, consumes the terminating `;`.
fn finish_use(
    toks: &[Tok],
    k: usize,
    entry: Option<(String, String)>,
    out: &mut Vec<(String, String)>,
) -> usize {
    if let Some(e) = entry {
        out.push(e);
    }
    if toks.get(k).is_some_and(|t| t.is_punct(";")) {
        k + 1
    } else {
        k
    }
}

/// Detects a call at token `i` (identifier directly followed by `(`) and
/// classifies it by what precedes the name.
fn collect_call(
    toks: &[Tok],
    i: usize,
    caller: usize,
    impl_stack: &[(i32, String)],
    out: &mut Vec<CallSite>,
) {
    let t = &toks[i];
    if is_keyword(&t.text) {
        return;
    }
    let next = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment);
    if !next.is_some_and(|n| n.is_punct("(")) {
        return;
    }
    let prev = toks[..i].iter().rev().find(|n| n.kind != TokKind::Comment);
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return; // the definition itself
    }
    let callee = if prev.is_some_and(|p| p.is_punct(".")) {
        Callee::Method(t.text.clone())
    } else if prev.is_some_and(|p| p.is_punct("::")) {
        let mut segs = vec![t.text.clone()];
        // Walk back over `seg::`+ pairs.
        let mut k = i;
        loop {
            let Some(sep) = toks[..k].iter().rposition(|n| n.kind != TokKind::Comment) else {
                break;
            };
            if !toks[sep].is_punct("::") {
                break;
            }
            let Some(seg) = toks[..sep].iter().rposition(|n| n.kind != TokKind::Comment) else {
                break;
            };
            if toks[seg].kind != TokKind::Ident {
                break; // `<T as Trait>::f`, turbofish, ... — keep what we have
            }
            segs.push(toks[seg].text.clone());
            k = seg;
        }
        segs.reverse();
        if segs.len() == 1 {
            Callee::Bare(t.text.clone())
        } else {
            if segs[0] == "Self" {
                if let Some((_, ty)) = impl_stack.last() {
                    segs[0] = ty.clone();
                }
            }
            Callee::Qualified(segs)
        }
    } else {
        Callee::Bare(t.text.clone())
    };
    out.push(CallSite {
        caller,
        callee,
        line: t.line,
        col: t.col,
    });
}

const ENV_FNS: &[&str] = &[
    "var", "var_os", "vars", "vars_os", "args", "args_os", "temp_dir",
];

/// Nondeterminism sources, detected at the identifier that names them.
fn collect_source(toks: &[Tok], i: usize, caller: usize, out: &mut Vec<SourceSite>) {
    let t = &toks[i];
    let nc =
        |k: usize| -> Option<&Tok> { toks[k + 1..].iter().find(|n| n.kind != TokKind::Comment) };
    let mut push = |what: String, kind: &str| {
        out.push(SourceSite {
            fn_idx: caller,
            line: t.line,
            col: t.col,
            what,
            kind: kind.to_string(),
        })
    };
    match t.text.as_str() {
        "Instant" | "SystemTime" => {
            // `Instant::now(` — the constructor, not type mentions.
            if path_call_ahead(toks, i, "now") {
                push(format!("{}::now()", t.text), "wall-clock");
            }
        }
        "elapsed" => {
            let after_dot = i > 0 && toks[i - 1].is_punct(".");
            if after_dot && nc(i).is_some_and(|n| n.is_punct("(")) {
                push(".elapsed()".to_string(), "wall-clock");
            }
        }
        "env" => {
            if let Some(f) = qualified_call_ahead(toks, i, ENV_FNS) {
                push(format!("env::{f}()"), "env");
            }
        }
        "thread" => {
            if qualified_call_ahead(toks, i, &["current"]).is_some() {
                push("thread::current()".to_string(), "thread-id");
            }
        }
        "process" => {
            if qualified_call_ahead(toks, i, &["id"]).is_some() {
                push("process::id()".to_string(), "thread-id");
            }
        }
        "thread_rng" => {
            if nc(i).is_some_and(|n| n.is_punct("(")) {
                push("thread_rng()".to_string(), "ambient-rand");
            }
        }
        "RandomState" => push("RandomState".to_string(), "ambient-rand"),
        _ => {}
    }
}

/// Does `<ident at i>::<member>(` follow, for a specific member?
fn path_call_ahead(toks: &[Tok], i: usize, member: &str) -> bool {
    qualified_call_ahead(toks, i, &[member]).is_some()
}

/// If tokens at `i` form `<ident>::<one of members>(`, returns the member.
fn qualified_call_ahead(toks: &[Tok], i: usize, members: &[&str]) -> Option<String> {
    let mut rest = toks[i + 1..].iter().filter(|n| n.kind != TokKind::Comment);
    let (sep, name, open) = (rest.next()?, rest.next()?, rest.next()?);
    if sep.is_punct("::")
        && name.kind == TokKind::Ident
        && members.contains(&name.text.as_str())
        && open.is_punct("(")
    {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Panic hazards R8 looks for inside `catch_unwind`-reachable code:
/// `.lock()…unwrap/expect`, `.into_inner()…unwrap/expect`, and `RefCell`
/// borrows.
fn collect_hazard(toks: &[Tok], i: usize, caller: usize, out: &mut Vec<(usize, u32, u32, String)>) {
    let t = &toks[i];
    if i == 0 || !toks[i - 1].is_punct(".") {
        return;
    }
    match t.text.as_str() {
        "lock" | "into_inner" => {
            let Some(open) = toks[i + 1..]
                .iter()
                .position(|n| n.kind != TokKind::Comment)
                .map(|p| p + i + 1)
                .filter(|&p| toks[p].is_punct("("))
            else {
                return;
            };
            let Some(close) = rules::matching(toks, open, "(", ")") else {
                return;
            };
            let mut rest = toks[close + 1..]
                .iter()
                .filter(|n| n.kind != TokKind::Comment);
            let (dot, m) = (rest.next(), rest.next());
            if dot.is_some_and(|d| d.is_punct("."))
                && m.is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            {
                out.push((
                    caller,
                    t.line,
                    t.col,
                    format!(".{}().{}(…)", t.text, m.unwrap().text),
                ));
            }
        }
        "borrow" | "borrow_mut" => {
            if toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
            {
                out.push((caller, t.line, t.col, format!(".{}()", t.text)));
            }
        }
        _ => {}
    }
}

/// Attributes R10's unordered-float-reduce sites to their enclosing
/// function by line span and records them as taint sources too: the
/// reduced value is order-dependent, so if it reaches a sink the result
/// drifts run-to-run.
fn attach_reduce_sources(toks: &[Tok], mask: &[bool], s: &mut FileSummary) {
    for (line, col, what) in rules::ordered_reduce_sites(toks, mask) {
        if let Some(fi) = enclosing_fn(&s.fns, line) {
            s.sources.push(SourceSite {
                fn_idx: fi,
                line,
                col,
                what,
                kind: "unordered-reduce".to_string(),
            });
        }
    }
    // Unordered iteration anywhere is a hash-iter source even without a
    // float reduction — the iteration order itself can shape results.
    let unordered = rules::unordered_bindings(toks, mask);
    if unordered.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i]
            || t.kind != TokKind::Ident
            || !matches!(
                t.text.as_str(),
                "iter" | "keys" | "values" | "drain" | "into_iter"
            )
        {
            continue;
        }
        if i < 2 || !toks[i - 1].is_punct(".") {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind != TokKind::Ident || !unordered.contains(&recv.text) {
            continue;
        }
        if s.sources
            .iter()
            .any(|src| src.line == t.line && src.col == t.col)
        {
            continue; // already recorded as unordered-reduce
        }
        if let Some(fi) = enclosing_fn(&s.fns, t.line) {
            s.sources.push(SourceSite {
                fn_idx: fi,
                line: t.line,
                col: t.col,
                what: format!("`{}.{}()` (unordered iteration)", recv.text, t.text),
                kind: "hash-iter".to_string(),
            });
        }
    }
}

/// The innermost function whose span contains `line`.
fn enclosing_fn(fns: &[FnInfo], line: u32) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.span.0 <= line && line <= f.span.1)
        .min_by_key(|(_, f)| f.span.1 - f.span.0)
        .map(|(k, _)| k)
}
