//! # workloads — trace generators for the XMem evaluation
//!
//! Two workload families reproduce the paper's evaluation inputs:
//!
//! * [`polybench`] — the 12 tiled linear-algebra/stencil kernels of use
//!   case 1 (§5.3), parameterized by tile size with total work held
//!   constant, annotated with XMem atoms exactly as §5.2(1) prescribes.
//! * [`placement`] — the 27 memory-intensive multi-structure mixes of use
//!   case 2 (§6.3), each structure expressed as an atom carrying its access
//!   pattern and intensity.
//!
//! Workloads emit their events into a [`sink::TraceSink`]; the system
//! driver decides whether the XMem calls reach real hardware tables (XMem
//! runs) or fall on deaf ears (baseline runs).
//!
//! ```
//! use workloads::polybench::{KernelParams, PolybenchKernel};
//! use workloads::sink::CollectSink;
//!
//! let mut sink = CollectSink::new();
//! PolybenchKernel::Gemm.generate(
//!     &KernelParams { n: 16, tile_bytes: 1024, steps: 1, reuse: 200 },
//!     &mut sink,
//! );
//! assert!(sink.memory_ops() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hog;
pub mod placement;
pub mod polybench;
pub mod shared;
pub mod sink;
pub mod trace_file;

pub use crate::hog::{random_hog, stream_hog};
pub use crate::placement::{AccessKind, PlacementWorkload, StructSpec};
pub use crate::polybench::{KernelParams, PolybenchKernel};
pub use crate::shared::{lock_counter, producer_consumer, read_mostly_reader, PcRole};
pub use crate::sink::{CollectSink, HintEvent, LogSink, TraceEvent, TraceSink};
pub use crate::trace_file::{read_trace, write_trace};
