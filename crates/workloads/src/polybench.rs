//! Polybench-style tiled kernel generators (use case 1, §5.3 of the paper).
//!
//! The paper evaluates 12 Polybench kernels, tiled by the PLUTO polyhedral
//! optimizer, over tile sizes from 64 B to 8 MB with *total work held
//! constant*. We reproduce the same setup as access-stream generators: each
//! kernel walks the exact loop nest of its tiled form, emitting per-element
//! loads/stores plus the arithmetic as compute ops, and expresses its
//! optimization intent through XMem exactly as §5.2(1) prescribes —
//! "map the active high-reuse partitions (e.g., tiles) of key data
//! structures to an atom that specifies a high reuse value and the access
//! pattern. When the program is done with one partition, it unmaps the
//! current partition and maps the next partition to the same atom."
//!
//! Every kernel keeps its iteration space fixed regardless of `tile_bytes`,
//! so execution-time differences across tile sizes come purely from memory
//! behaviour — the quantity Fig 4 plots.

use crate::sink::TraceSink;
use xmem_core::addr::addr_to_index;
use xmem_core::attrs::{AccessPattern, AtomAttributes, DataType, Reuse};

/// Element size: all kernels use `f64` data.
const ELEM: u64 = 8;

/// Parameters of one kernel run.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Problem size (matrices are `n × n`, vectors length `n`).
    pub n: usize,
    /// Target tile footprint in bytes (the active working set the software
    /// optimization tries to keep cached).
    pub tile_bytes: u64,
    /// Time steps for the stencil kernels.
    pub steps: usize,
    /// Reuse value expressed for the tile atom.
    pub reuse: u8,
}

impl KernelParams {
    /// A small default: 96×96 matrices, 4 KB tiles, 10 stencil steps.
    pub fn small() -> Self {
        KernelParams {
            n: 96,
            tile_bytes: 4 << 10,
            steps: 10,
            reuse: 192,
        }
    }

    /// Same parameters with a different tile size (the Fig 4 sweep).
    pub fn with_tile(mut self, tile_bytes: u64) -> Self {
        self.tile_bytes = tile_bytes;
        self
    }

    /// Minimum block side for 2D-blocked kernels, in elements. Polyhedral
    /// tilers do not emit degenerate 2- or 3-element blocks (the traffic
    /// amplification from re-streaming the untiled operands would dwarf any
    /// locality effect); tile-size settings below this floor behave as the
    /// smallest realistic block, exactly as PLUTO-generated code would.
    const MIN_BLOCK_SIDE: usize = 16;

    /// Tile side in elements for 2D blocking: the largest `t` with
    /// `t × t × 8 ≤ tile_bytes`, clamped to `[MIN_BLOCK_SIDE, n]`.
    fn tile_side(&self) -> usize {
        let t = ((self.tile_bytes / ELEM) as f64).sqrt() as usize;
        t.clamp(Self::MIN_BLOCK_SIDE.min(self.n), self.n)
    }

    /// Block height in rows for row-blocked kernels: rows of `row_elems`
    /// elements fitting in the tile, clamped to `[1, n]`.
    fn tile_rows(&self, row_elems: usize) -> usize {
        let rows = addr_to_index(self.tile_bytes / ELEM / row_elems as u64);
        rows.clamp(1, self.n)
    }
}

/// A dense row-major matrix (or vector) in simulated virtual memory.
#[derive(Debug, Clone, Copy)]
struct Mat {
    base: u64,
    cols: u64,
}

impl Mat {
    fn alloc<S: TraceSink + ?Sized>(sink: &mut S, rows: usize, cols: usize) -> Mat {
        let base = sink.alloc(rows as u64 * cols as u64 * ELEM, None);
        Mat {
            base,
            cols: cols as u64,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> u64 {
        self.base + (i as u64 * self.cols + j as u64) * ELEM
    }

    fn row_bytes(&self) -> u64 {
        self.cols * ELEM
    }
}

/// The twelve evaluated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolybenchKernel {
    /// `C = A·B + C` (general matrix multiply).
    Gemm,
    /// `D = (A·B)·C` (two matrix multiplies).
    TwoMm,
    /// `G = (A·B)·(C·D)` (three matrix multiplies).
    ThreeMm,
    /// `C = A·Aᵀ + C` (symmetric rank-k update).
    Syrk,
    /// `C = A·Bᵀ + B·Aᵀ + C` (symmetric rank-2k update).
    Syr2k,
    /// `B = A·B`, `A` lower-triangular (triangular matrix multiply).
    Trmm,
    /// `x1 = A·y1`, `x2 = Aᵀ·y2` (matrix-vector, both orientations).
    Mvt,
    /// Rank-2 update followed by two matrix-vector products.
    Gemver,
    /// `y = A·x + B·x` (summed matrix-vector).
    Gesummv,
    /// 5-point Jacobi stencil, time-tiled.
    Jacobi2d,
    /// 9-point in-place Gauss–Seidel stencil, time-tiled.
    Seidel2d,
    /// 7-point 3D heat stencil, time-tiled.
    Heat3d,
    /// Right-looking Cholesky factorization (extended set).
    Cholesky,
    /// LU decomposition without pivoting (extended set).
    Lu,
    /// Floyd–Warshall all-pairs shortest paths (extended set).
    FloydWarshall,
    /// Alternating-direction-implicit 2D solver (extended set).
    Adi,
}

impl PolybenchKernel {
    /// The twelve kernels of the paper's Fig 4, in report order.
    pub fn all() -> [PolybenchKernel; 12] {
        use PolybenchKernel::*;
        [
            Gemm, TwoMm, ThreeMm, Syrk, Syr2k, Trmm, Mvt, Gemver, Gesummv, Jacobi2d, Seidel2d,
            Heat3d,
        ]
    }

    /// The extended suite: the Fig 4 twelve plus four additional tileable
    /// Polybench kernels (factorizations and dynamic programming).
    pub fn extended() -> [PolybenchKernel; 16] {
        use PolybenchKernel::*;
        [
            Gemm,
            TwoMm,
            ThreeMm,
            Syrk,
            Syr2k,
            Trmm,
            Mvt,
            Gemver,
            Gesummv,
            Jacobi2d,
            Seidel2d,
            Heat3d,
            Cholesky,
            Lu,
            FloydWarshall,
            Adi,
        ]
    }

    /// The kernel's display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolybenchKernel::Gemm => "gemm",
            PolybenchKernel::TwoMm => "2mm",
            PolybenchKernel::ThreeMm => "3mm",
            PolybenchKernel::Syrk => "syrk",
            PolybenchKernel::Syr2k => "syr2k",
            PolybenchKernel::Trmm => "trmm",
            PolybenchKernel::Mvt => "mvt",
            PolybenchKernel::Gemver => "gemver",
            PolybenchKernel::Gesummv => "gesummv",
            PolybenchKernel::Jacobi2d => "jacobi-2d",
            PolybenchKernel::Seidel2d => "seidel-2d",
            PolybenchKernel::Heat3d => "heat-3d",
            PolybenchKernel::Cholesky => "cholesky",
            PolybenchKernel::Lu => "lu",
            PolybenchKernel::FloydWarshall => "floyd-warshall",
            PolybenchKernel::Adi => "adi",
        }
    }

    /// Generates the kernel's trace into `sink`.
    pub fn generate<S: TraceSink + ?Sized>(&self, p: &KernelParams, sink: &mut S) {
        match self {
            PolybenchKernel::Gemm => gemm(p, sink),
            PolybenchKernel::TwoMm => two_mm(p, sink),
            PolybenchKernel::ThreeMm => three_mm(p, sink),
            PolybenchKernel::Syrk => syrk(p, sink),
            PolybenchKernel::Syr2k => syr2k(p, sink),
            PolybenchKernel::Trmm => trmm(p, sink),
            PolybenchKernel::Mvt => mvt(p, sink),
            PolybenchKernel::Gemver => gemver(p, sink),
            PolybenchKernel::Gesummv => gesummv(p, sink),
            PolybenchKernel::Jacobi2d => jacobi2d(p, sink),
            PolybenchKernel::Seidel2d => seidel2d(p, sink),
            PolybenchKernel::Heat3d => heat3d(p, sink),
            PolybenchKernel::Cholesky => cholesky(p, sink),
            PolybenchKernel::Lu => lu(p, sink),
            PolybenchKernel::FloydWarshall => floyd_warshall(p, sink),
            PolybenchKernel::Adi => adi(p, sink),
        }
    }
}

/// Creates the shared high-reuse tile atom (§5.2(1)).
fn tile_atom<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) -> xmem_core::atom::AtomId {
    sink.create_atom(
        "tile",
        AtomAttributes::builder()
            .data_type(DataType::Float64)
            .access_pattern(AccessPattern::sequential(ELEM as i64))
            .reuse(Reuse(p.reuse))
            .build(),
    )
}

/// One blocked matrix-multiply pass `C += A·B`, mapping the active `B` block
/// to `atom`. Shared by gemm / 2mm / 3mm.
fn gemm_pass<S: TraceSink + ?Sized>(
    p: &KernelParams,
    sink: &mut S,
    atom: xmem_core::atom::AtomId,
    a: Mat,
    b: Mat,
    c: Mat,
) {
    let n = p.n;
    let t = p.tile_side();
    for kk in (0..n).step_by(t) {
        let kb = t.min(n - kk);
        for jj in (0..n).step_by(t) {
            let jb = t.min(n - jj);
            // Express the new active partition: unmap the old, map the new
            // (MAP to the same range replaces, so a single 2D map suffices).
            sink.map_2d(
                atom,
                b.at(kk, jj),
                jb as u64 * ELEM,
                kb as u64,
                b.row_bytes(),
            );
            sink.activate(atom);
            // PLUTO-style loop order: the innermost loop (j) walks the B
            // tile row contiguously, matching the expressed stride.
            for i in 0..n {
                for k in kk..kk + kb {
                    sink.load(a.at(i, k));
                    for j in jj..jj + jb {
                        sink.load(b.at(k, j));
                        sink.load(c.at(i, j));
                        sink.compute(2);
                        sink.store(c.at(i, j));
                    }
                }
            }
            sink.unmap_2d(b.at(kk, jj), jb as u64 * ELEM, kb as u64, b.row_bytes());
        }
    }
    sink.deactivate(atom);
}

fn gemm<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let c = Mat::alloc(sink, p.n, p.n);
    gemm_pass(p, sink, atom, a, b, c);
}

fn two_mm<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let tmp = Mat::alloc(sink, p.n, p.n);
    let c = Mat::alloc(sink, p.n, p.n);
    let d = Mat::alloc(sink, p.n, p.n);
    gemm_pass(p, sink, atom, a, b, tmp);
    gemm_pass(p, sink, atom, tmp, c, d);
}

fn three_mm<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let c = Mat::alloc(sink, p.n, p.n);
    let d = Mat::alloc(sink, p.n, p.n);
    let e = Mat::alloc(sink, p.n, p.n);
    let f = Mat::alloc(sink, p.n, p.n);
    let g = Mat::alloc(sink, p.n, p.n);
    gemm_pass(p, sink, atom, a, b, e);
    gemm_pass(p, sink, atom, c, d, f);
    gemm_pass(p, sink, atom, e, f, g);
}

fn syrk<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // C[i][j] += A[i][k] * A[j][k]: the block of A-rows [jj..jj+jb] over
    // columns [kk..kk+kb] plays the role of gemm's B tile.
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let c = Mat::alloc(sink, p.n, p.n);
    let n = p.n;
    let t = p.tile_side();
    for kk in (0..n).step_by(t) {
        let kb = t.min(n - kk);
        for jj in (0..n).step_by(t) {
            let jb = t.min(n - jj);
            sink.map_2d(
                atom,
                a.at(jj, kk),
                kb as u64 * ELEM,
                jb as u64,
                a.row_bytes(),
            );
            sink.activate(atom);
            for i in 0..n {
                for j in jj..jj + jb {
                    sink.load(c.at(i, j));
                    for k in kk..kk + kb {
                        sink.load(a.at(i, k));
                        sink.load(a.at(j, k));
                        sink.compute(2);
                    }
                    sink.store(c.at(i, j));
                }
            }
            sink.unmap_2d(a.at(jj, kk), kb as u64 * ELEM, jb as u64, a.row_bytes());
        }
    }
    sink.deactivate(atom);
}

fn syr2k<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // C[i][j] += A[i][k]·B[j][k] + B[i][k]·A[j][k]: both the A-row block and
    // the B-row block are high-reuse — one atom maps both (an atom can map
    // non-contiguous data, §3.2).
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let c = Mat::alloc(sink, p.n, p.n);
    let n = p.n;
    // Two blocks live at once: halve the per-block side (same realistic
    // floor as `tile_side`).
    let t = ((p.tile_bytes / 2 / ELEM) as f64).sqrt() as usize;
    let t = t.clamp(KernelParams::MIN_BLOCK_SIDE.min(n), n);
    for kk in (0..n).step_by(t) {
        let kb = t.min(n - kk);
        for jj in (0..n).step_by(t) {
            let jb = t.min(n - jj);
            sink.map_2d(
                atom,
                a.at(jj, kk),
                kb as u64 * ELEM,
                jb as u64,
                a.row_bytes(),
            );
            sink.map_2d(
                atom,
                b.at(jj, kk),
                kb as u64 * ELEM,
                jb as u64,
                b.row_bytes(),
            );
            sink.activate(atom);
            for i in 0..n {
                for j in jj..jj + jb {
                    sink.load(c.at(i, j));
                    for k in kk..kk + kb {
                        sink.load(a.at(i, k));
                        sink.load(b.at(j, k));
                        sink.load(b.at(i, k));
                        sink.load(a.at(j, k));
                        sink.compute(4);
                    }
                    sink.store(c.at(i, j));
                }
            }
            sink.unmap_2d(a.at(jj, kk), kb as u64 * ELEM, jb as u64, a.row_bytes());
            sink.unmap_2d(b.at(jj, kk), kb as u64 * ELEM, jb as u64, b.row_bytes());
        }
    }
    sink.deactivate(atom);
}

fn trmm<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // B[i][j] += A[i][k] · B[k][j] for k < i (A lower-triangular). The block
    // of B-rows [kk..kk+kb] is the reused tile.
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let n = p.n;
    let t = p.tile_side();
    for kk in (0..n).step_by(t) {
        let kb = t.min(n - kk);
        for jj in (0..n).step_by(t) {
            let jb = t.min(n - jj);
            sink.map_2d(
                atom,
                b.at(kk, jj),
                jb as u64 * ELEM,
                kb as u64,
                b.row_bytes(),
            );
            sink.activate(atom);
            // Innermost j walks the B-tile row contiguously.
            for i in kk + 1..n {
                let hi = (kk + kb).min(i);
                for k in kk..hi {
                    sink.load(a.at(i, k));
                    for j in jj..jj + jb {
                        sink.load(b.at(k, j));
                        sink.load(b.at(i, j));
                        sink.compute(2);
                        sink.store(b.at(i, j));
                    }
                }
            }
            sink.unmap_2d(b.at(kk, jj), jb as u64 * ELEM, kb as u64, b.row_bytes());
        }
    }
    sink.deactivate(atom);
}

fn mvt<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // x1 += A·y1 ; x2 += Aᵀ·y2 — the vector chunk is the reused tile; the
    // matrix streams through once per pass.
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let x1 = Mat::alloc(sink, 1, p.n);
    let y1 = Mat::alloc(sink, 1, p.n);
    let x2 = Mat::alloc(sink, 1, p.n);
    let y2 = Mat::alloc(sink, 1, p.n);
    let n = p.n;
    let t = (p.tile_bytes / ELEM).max(1).min(n as u64) as usize;

    // Pass 1: x1[i] += A[i][j] * y1[j], blocked over j.
    for jj in (0..n).step_by(t) {
        let jb = t.min(n - jj);
        sink.map(atom, y1.at(0, jj), jb as u64 * ELEM);
        sink.activate(atom);
        for i in 0..n {
            sink.load(x1.at(0, i));
            for j in jj..jj + jb {
                sink.load(a.at(i, j));
                sink.load(y1.at(0, j));
                sink.compute(2);
            }
            sink.store(x1.at(0, i));
        }
        sink.unmap(y1.at(0, jj), jb as u64 * ELEM);
    }
    // Pass 2: x2[i] += A[j][i] * y2[j]. PLUTO-style: j outer, i inner, so A
    // is walked row-major and the x2 chunk is the reused working set.
    for ii in (0..n).step_by(t) {
        let ib = t.min(n - ii);
        sink.map(atom, x2.at(0, ii), ib as u64 * ELEM);
        sink.activate(atom);
        for j in 0..n {
            sink.load(y2.at(0, j));
            for i in ii..ii + ib {
                sink.load(a.at(j, i));
                sink.load(x2.at(0, i));
                sink.compute(2);
                sink.store(x2.at(0, i));
            }
        }
        sink.unmap(x2.at(0, ii), ib as u64 * ELEM);
    }
    sink.deactivate(atom);
}

fn gemver<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // A += u1·v1ᵀ + u2·v2ᵀ; x = Aᵀ·y + z; w = A·x.
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let u1 = Mat::alloc(sink, 1, p.n);
    let v1 = Mat::alloc(sink, 1, p.n);
    let u2 = Mat::alloc(sink, 1, p.n);
    let v2 = Mat::alloc(sink, 1, p.n);
    let x = Mat::alloc(sink, 1, p.n);
    let y = Mat::alloc(sink, 1, p.n);
    let z = Mat::alloc(sink, 1, p.n);
    let w = Mat::alloc(sink, 1, p.n);
    let n = p.n;
    let t = (p.tile_bytes / ELEM).max(1).min(n as u64) as usize;

    // Rank-2 update: v1/v2 chunks are the reused data, A streams.
    for jj in (0..n).step_by(t) {
        let jb = t.min(n - jj);
        sink.map(atom, v1.at(0, jj), jb as u64 * ELEM);
        sink.map(atom, v2.at(0, jj), jb as u64 * ELEM);
        sink.activate(atom);
        for i in 0..n {
            sink.load(u1.at(0, i));
            sink.load(u2.at(0, i));
            for j in jj..jj + jb {
                sink.load(a.at(i, j));
                sink.load(v1.at(0, j));
                sink.load(v2.at(0, j));
                sink.compute(4);
                sink.store(a.at(i, j));
            }
        }
        sink.unmap(v1.at(0, jj), jb as u64 * ELEM);
        sink.unmap(v2.at(0, jj), jb as u64 * ELEM);
    }
    // x = Aᵀ·y + z: j outer / i inner walks A row-major; the x chunk is the
    // reused working set.
    for ii in (0..n).step_by(t) {
        let ib = t.min(n - ii);
        sink.map(atom, x.at(0, ii), ib as u64 * ELEM);
        sink.activate(atom);
        for j in 0..n {
            sink.load(y.at(0, j));
            for i in ii..ii + ib {
                sink.load(a.at(j, i));
                sink.load(x.at(0, i));
                sink.compute(2);
                sink.store(x.at(0, i));
            }
        }
        sink.unmap(x.at(0, ii), ib as u64 * ELEM);
    }
    for i in 0..n {
        sink.load(z.at(0, i));
        sink.load(x.at(0, i));
        sink.compute(1);
        sink.store(x.at(0, i));
    }
    // w = A·x (x chunk reused).
    for jj in (0..n).step_by(t) {
        let jb = t.min(n - jj);
        sink.map(atom, x.at(0, jj), jb as u64 * ELEM);
        sink.activate(atom);
        for i in 0..n {
            sink.load(w.at(0, i));
            for j in jj..jj + jb {
                sink.load(a.at(i, j));
                sink.load(x.at(0, j));
                sink.compute(2);
            }
            sink.store(w.at(0, i));
        }
        sink.unmap(x.at(0, jj), jb as u64 * ELEM);
    }
    sink.deactivate(atom);
}

fn gesummv<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // y = α·A·x + β·B·x: the x chunk is reused by every row of A and B.
    let atom = tile_atom(p, sink);
    let a = Mat::alloc(sink, p.n, p.n);
    let b = Mat::alloc(sink, p.n, p.n);
    let x = Mat::alloc(sink, 1, p.n);
    let y = Mat::alloc(sink, 1, p.n);
    let n = p.n;
    let t = (p.tile_bytes / ELEM).max(1).min(n as u64) as usize;
    for jj in (0..n).step_by(t) {
        let jb = t.min(n - jj);
        sink.map(atom, x.at(0, jj), jb as u64 * ELEM);
        sink.activate(atom);
        for i in 0..n {
            sink.load(y.at(0, i));
            for j in jj..jj + jb {
                sink.load(a.at(i, j));
                sink.load(b.at(i, j));
                sink.load(x.at(0, j));
                sink.compute(4);
            }
            sink.store(y.at(0, i));
        }
        sink.unmap(x.at(0, jj), jb as u64 * ELEM);
    }
    sink.deactivate(atom);
}

fn jacobi2d<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // Time-tiled 5-point Jacobi: each row block of the two grids is
    // processed for all `steps` sweeps before moving on (the PLUTO-style
    // time-tiled schedule), so the block is reused `steps` times.
    let atom = tile_atom(p, sink);
    let n = p.n;
    let a = Mat::alloc(sink, n, n);
    let b = Mat::alloc(sink, n, n);
    // Two arrays are live per block: halve the row budget.
    let rows = p.tile_rows(n * 2);
    for bb in (0..n).step_by(rows) {
        let rb = rows.min(n - bb);
        sink.map_2d(atom, a.at(bb, 0), n as u64 * ELEM, rb as u64, a.row_bytes());
        sink.map_2d(atom, b.at(bb, 0), n as u64 * ELEM, rb as u64, b.row_bytes());
        sink.activate(atom);
        for step in 0..p.steps {
            let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
            for i in bb.max(1)..(bb + rb).min(n - 1) {
                for j in 1..n - 1 {
                    sink.load(src.at(i, j));
                    sink.load(src.at(i, j - 1));
                    sink.load(src.at(i, j + 1));
                    sink.load(src.at(i - 1, j));
                    sink.load(src.at(i + 1, j));
                    sink.compute(5);
                    sink.store(dst.at(i, j));
                }
            }
        }
        sink.unmap_2d(a.at(bb, 0), n as u64 * ELEM, rb as u64, a.row_bytes());
        sink.unmap_2d(b.at(bb, 0), n as u64 * ELEM, rb as u64, b.row_bytes());
    }
    sink.deactivate(atom);
}

fn seidel2d<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // In-place 9-point Gauss–Seidel, time-tiled by row blocks.
    let atom = tile_atom(p, sink);
    let n = p.n;
    let a = Mat::alloc(sink, n, n);
    let rows = p.tile_rows(n);
    for bb in (0..n).step_by(rows) {
        let rb = rows.min(n - bb);
        sink.map_2d(atom, a.at(bb, 0), n as u64 * ELEM, rb as u64, a.row_bytes());
        sink.activate(atom);
        for _step in 0..p.steps {
            for i in bb.max(1)..(bb + rb).min(n - 1) {
                for j in 1..n - 1 {
                    for di in -1i64..=1 {
                        for dj in -1i64..=1 {
                            sink.load(a.at((i as i64 + di) as usize, (j as i64 + dj) as usize));
                        }
                    }
                    sink.compute(9);
                    sink.store(a.at(i, j));
                }
            }
        }
        sink.unmap_2d(a.at(bb, 0), n as u64 * ELEM, rb as u64, a.row_bytes());
    }
    sink.deactivate(atom);
}

fn heat3d<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // 7-point 3D heat equation on an m³ grid (m = n^(2/3) to keep total work
    // comparable to the 2D kernels), time-tiled by z-plane blocks.
    let atom = tile_atom(p, sink);
    let m = ((p.n as f64).powf(2.0 / 3.0) as usize).max(8);
    let plane = m * m;
    let a = Mat::alloc(sink, m * m, m); // m planes of m×m
    let b = Mat::alloc(sink, m * m, m);
    let at = |g: Mat, z: usize, y: usize, x: usize| g.at(z * m + y, x);
    // Two grids live: planes per block from the tile budget.
    let planes = (p.tile_bytes / ELEM / (plane as u64 * 2)).max(1) as usize;
    let planes = planes.min(m);
    for zz in (0..m).step_by(planes) {
        let zb = planes.min(m - zz);
        let block_bytes = zb as u64 * plane as u64 * ELEM;
        sink.map(atom, at(a, zz, 0, 0), block_bytes);
        sink.map(atom, at(b, zz, 0, 0), block_bytes);
        sink.activate(atom);
        for step in 0..p.steps {
            let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
            for z in zz.max(1)..(zz + zb).min(m - 1) {
                for y in 1..m - 1 {
                    for x in 1..m - 1 {
                        sink.load(at(src, z, y, x));
                        sink.load(at(src, z, y, x - 1));
                        sink.load(at(src, z, y, x + 1));
                        sink.load(at(src, z, y - 1, x));
                        sink.load(at(src, z, y + 1, x));
                        sink.load(at(src, z - 1, y, x));
                        sink.load(at(src, z + 1, y, x));
                        sink.compute(7);
                        sink.store(at(dst, z, y, x));
                    }
                }
            }
        }
        sink.unmap(at(a, zz, 0, 0), block_bytes);
        sink.unmap(at(b, zz, 0, 0), block_bytes);
    }
    sink.deactivate(atom);
}

fn cholesky<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // Right-looking Cholesky: at step k, column k below the diagonal is the
    // reused working set for the trailing-submatrix update. The column is a
    // strided region — mapped with `map_2d` (width = one element, pitch =
    // one row), showcasing non-contiguous atoms.
    let atom = tile_atom(p, sink);
    let n = p.n;
    let a = Mat::alloc(sink, n, n);
    let t = p.tile_side();
    for k in 0..n {
        // A[k][k] = sqrt(...)
        sink.load(a.at(k, k));
        sink.compute(4);
        sink.store(a.at(k, k));
        if k + 1 >= n {
            break;
        }
        let col_rows = (n - k - 1) as u64;
        sink.map_2d(atom, a.at(k + 1, k), ELEM, col_rows, a.row_bytes());
        sink.activate(atom);
        // Scale column k.
        for i in k + 1..n {
            sink.load(a.at(i, k));
            sink.compute(1);
            sink.store(a.at(i, k));
        }
        // Trailing update, blocked over j to bound the row working set.
        for jj in (k + 1..n).step_by(t) {
            let jhi = (jj + t).min(n);
            for i in k + 1..n {
                sink.load(a.at(i, k));
                for j in jj..jhi.min(i + 1) {
                    sink.load(a.at(j, k));
                    sink.load(a.at(i, j));
                    sink.compute(2);
                    sink.store(a.at(i, j));
                }
            }
        }
        sink.unmap_2d(a.at(k + 1, k), ELEM, col_rows, a.row_bytes());
    }
    sink.deactivate(atom);
}

fn lu<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // LU without pivoting: at step k, row k right of the diagonal is reused
    // by every row of the trailing submatrix.
    let atom = tile_atom(p, sink);
    let n = p.n;
    let a = Mat::alloc(sink, n, n);
    let t = p.tile_side();
    for k in 0..n {
        if k + 1 >= n {
            break;
        }
        let row_len = ((n - k - 1) as u64) * ELEM;
        sink.map(atom, a.at(k, k + 1), row_len);
        sink.activate(atom);
        for i in k + 1..n {
            // L multiplier.
            sink.load(a.at(i, k));
            sink.load(a.at(k, k));
            sink.compute(1);
            sink.store(a.at(i, k));
            // Update row i, blocked over j.
            for jj in (k + 1..n).step_by(t) {
                let jhi = (jj + t).min(n);
                for j in jj..jhi {
                    sink.load(a.at(k, j));
                    sink.load(a.at(i, j));
                    sink.compute(2);
                    sink.store(a.at(i, j));
                }
            }
        }
        sink.unmap(a.at(k, k + 1), row_len);
    }
    sink.deactivate(atom);
}

fn floyd_warshall<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // All-pairs shortest paths: at step k, row k and column k are the
    // reused working set for the whole n x n sweep. Both map to one atom
    // (flexible non-contiguous mapping, §3.2).
    let atom = tile_atom(p, sink);
    let n = p.n;
    let d = Mat::alloc(sink, n, n);
    // Keep total work bounded: the O(n^3) sweep uses a reduced k range,
    // identical across tile sizes.
    let steps = (p.steps).clamp(1, n);
    for k in 0..steps {
        sink.map(atom, d.at(k, 0), n as u64 * ELEM);
        sink.map_2d(atom, d.at(0, k), ELEM, n as u64, d.row_bytes());
        sink.activate(atom);
        for i in 0..n {
            sink.load(d.at(i, k));
            for j in 0..n {
                sink.load(d.at(k, j));
                sink.load(d.at(i, j));
                sink.compute(2);
                sink.store(d.at(i, j));
            }
        }
        sink.unmap(d.at(k, 0), n as u64 * ELEM);
        sink.unmap_2d(d.at(0, k), ELEM, n as u64, d.row_bytes());
    }
    sink.deactivate(atom);
}

fn adi<S: TraceSink + ?Sized>(p: &KernelParams, sink: &mut S) {
    // Alternating-direction-implicit: each time step does a row-wise sweep
    // (forward + back substitution along rows) then a column-wise sweep.
    // The active row/column block is the reused working set.
    let atom = tile_atom(p, sink);
    let n = p.n;
    let u = Mat::alloc(sink, n, n);
    let v = Mat::alloc(sink, n, n);
    let rows = p.tile_rows(n * 2);
    for _step in 0..p.steps.max(1) / 2 + 1 {
        // Row sweep: u -> v.
        for bb in (0..n).step_by(rows) {
            let rb = rows.min(n - bb);
            sink.map_2d(atom, u.at(bb, 0), n as u64 * ELEM, rb as u64, u.row_bytes());
            sink.activate(atom);
            for i in bb..bb + rb {
                for j in 1..n {
                    sink.load(u.at(i, j));
                    sink.load(u.at(i, j - 1));
                    sink.compute(3);
                    sink.store(v.at(i, j));
                }
                for j in (1..n).rev() {
                    sink.load(v.at(i, j));
                    sink.compute(2);
                    sink.store(v.at(i, j - 1));
                }
            }
            sink.unmap_2d(u.at(bb, 0), n as u64 * ELEM, rb as u64, u.row_bytes());
        }
        // Column sweep: v -> u (walk row-major per PLUTO-transposed order).
        for bb in (0..n).step_by(rows) {
            let rb = rows.min(n - bb);
            sink.map_2d(atom, v.at(bb, 0), n as u64 * ELEM, rb as u64, v.row_bytes());
            sink.activate(atom);
            for i in bb.max(1)..bb + rb {
                for j in 0..n {
                    sink.load(v.at(i, j));
                    sink.load(v.at(i - 1, j));
                    sink.compute(3);
                    sink.store(u.at(i, j));
                }
            }
            sink.unmap_2d(v.at(bb, 0), n as u64 * ELEM, rb as u64, v.row_bytes());
        }
    }
    sink.deactivate(atom);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;

    fn params(tile: u64) -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: tile,
            steps: 3,
            reuse: 192,
        }
    }

    #[test]
    fn all_kernels_generate_nonempty_traces() {
        for k in PolybenchKernel::extended() {
            let mut sink = CollectSink::new();
            k.generate(&params(1024), &mut sink);
            assert!(
                sink.memory_ops() > 1000,
                "{} produced only {} memory ops",
                k.name(),
                sink.memory_ops()
            );
            assert!(!sink.events.is_empty(), "{} expressed no atoms", k.name());
        }
    }

    #[test]
    fn work_is_tile_size_invariant() {
        // The defining property of the Fig 4 sweep: the *computation* is
        // identical across tile sizes (memory traffic legitimately varies —
        // that is precisely what blocking changes).
        use cpu_sim::trace::Op;
        for k in PolybenchKernel::extended() {
            let compute = |tile| {
                let mut sink = CollectSink::new();
                k.generate(&params(tile), &mut sink);
                sink.ops
                    .iter()
                    .map(|o| match o {
                        Op::Compute(n) => *n as u64,
                        _ => 0,
                    })
                    .sum::<u64>()
            };
            let small = compute(256);
            let large = compute(64 << 10);
            assert_eq!(
                small,
                large,
                "{}: computation varies with tile size",
                k.name()
            );
            assert!(small > 0, "{}: no compute", k.name());
        }
    }

    #[test]
    fn every_kernel_maps_and_activates() {
        use crate::sink::HintEvent;
        for k in PolybenchKernel::extended() {
            let mut sink = CollectSink::new();
            k.generate(&params(2048), &mut sink);
            let has_map = sink
                .events
                .iter()
                .any(|e| matches!(e, HintEvent::Map { .. } | HintEvent::Map2d { .. }));
            let has_activate = sink
                .events
                .iter()
                .any(|e| matches!(e, HintEvent::Activate(_)));
            assert!(has_map && has_activate, "{} incomplete hints", k.name());
        }
    }

    #[test]
    fn smaller_tiles_mean_more_blocks() {
        use crate::sink::HintEvent;
        let maps = |tile| {
            let mut sink = CollectSink::new();
            PolybenchKernel::Gemm.generate(&params(tile), &mut sink);
            sink.events
                .iter()
                .filter(|e| matches!(e, HintEvent::Map2d { .. }))
                .count()
        };
        assert!(maps(256) > maps(8192));
    }

    #[test]
    fn gemm_access_count_matches_formula() {
        // Per inner iteration: B load + C load + C store = 3 ops; plus one
        // A load per (block, i, k) = n²·(n/t) ops for exact tiling.
        let n = 32usize;
        let t = 16usize; // == MIN_BLOCK_SIDE, so the floor does not kick in
        let p = KernelParams {
            n,
            tile_bytes: (t * t * 8) as u64,
            steps: 1,
            reuse: 10,
        };
        let mut sink = CollectSink::new();
        PolybenchKernel::Gemm.generate(&p, &mut sink);
        let inner = (n * n * n) as u64;
        let blocks = (n / t) as u64;
        let expected = inner * 3 + (n * n) as u64 * blocks;
        assert_eq!(sink.memory_ops(), expected);
    }

    #[test]
    fn hint_overhead_is_negligible() {
        // §4.4(2): XMem ops ≤ 0.2% of instructions.
        for k in PolybenchKernel::all() {
            let mut sink = CollectSink::new();
            k.generate(&params(1024), &mut sink);
            let hints = sink.events.len() as f64;
            let instructions = sink.instructions() as f64;
            assert!(
                hints / instructions < 0.005,
                "{}: hint fraction {}",
                k.name(),
                hints / instructions
            );
        }
    }
}
