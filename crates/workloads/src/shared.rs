//! Shared-data co-run workloads for the coherent multicore experiments.
//!
//! Unlike [`crate::hog`] interference (disjoint address spaces), these
//! generators place selected atoms in a **shared segment**: every core that
//! calls [`crate::sink::TraceSink::create_atom_shared`] with the same key
//! sees the same atom and (under `run_corun`) the same physical frames, so
//! their accesses exercise the MESI bus rather than just shared-L3
//! capacity.
//!
//! Three communication patterns, each one core's half of a co-run:
//!
//! | generator              | sharing pattern | coherence behaviour          |
//! |------------------------|-----------------|------------------------------|
//! | [`producer_consumer`]  | migratory       | M lines ping-pong core→core  |
//! | [`read_mostly_reader`] | read-mostly     | lines settle in S everywhere |
//! | [`lock_counter`]       | contended       | BusUpgr/BusRdX storms        |
//!
//! Every shared atom honestly declares [`DataProps::SHARED`] plus its
//! read/write characteristic, which is exactly the information the
//! coherence-aware placement policy consumes: a read-*write* shared atom is
//! migratory (pinning it in L3 wastes budget on lines that live in private
//! caches), while a read-*only* shared table pins profitably.

use crate::sink::TraceSink;
use xmem_core::attrs::{AccessPattern, AtomAttributes, DataProps, DataType, Reuse, RwChar};

/// Shared-segment key of the producer/consumer buffer.
pub const KEY_PC_BUFFER: u64 = 0x5C_0001;
/// Shared-segment key of the read-mostly table.
pub const KEY_TABLE: u64 = 0x5C_0002;
/// Shared-segment key of the contended counter line.
pub const KEY_LOCK: u64 = 0x5C_0003;

/// Which half of the [`producer_consumer`] pair a core plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcRole {
    /// Writes every line of the buffer, pass after pass.
    Producer,
    /// Reads every line of the buffer, pass after pass.
    Consumer,
}

/// One core's half of a producer/consumer pair over a shared `bytes`-sized
/// buffer: `passes` full sweeps, `compute` ALU ops between line touches.
///
/// The buffer atom is migratory — `SHARED` + `READ_WRITE` with declared
/// reuse `reuse` — so under MESI its lines bounce M→S→I between the two
/// private domains, and coherence-aware placement exempts it from L3
/// pinning.
pub fn producer_consumer<S: TraceSink + ?Sized>(
    sink: &mut S,
    role: PcRole,
    bytes: u64,
    passes: u32,
    compute: u32,
    reuse: Reuse,
) {
    let atom = sink.create_atom_shared(
        KEY_PC_BUFFER,
        "pc_buffer",
        AtomAttributes::builder()
            .data_type(DataType::Float64)
            .props(DataProps::SHARED)
            .rw(RwChar::ReadWrite)
            .access_pattern(AccessPattern::sequential(64))
            .reuse(reuse)
            .build(),
    );
    let base = sink.alloc_shared(KEY_PC_BUFFER, bytes, Some(atom));
    sink.map(atom, base, bytes);
    sink.activate(atom);
    let lines = (bytes / 64).max(1);
    for _ in 0..passes {
        for i in 0..lines {
            match role {
                PcRole::Producer => sink.store(base + i * 64),
                // Consumption is dependent: each read feeds the next.
                PcRole::Consumer => sink.load_dep(base + i * 64),
            }
            sink.compute(compute);
        }
    }
    sink.deactivate(atom);
    sink.unmap(base, bytes);
}

/// One reader over a shared read-only table of `table_bytes`, doing
/// `accesses` dependent lookups (LCG-scattered, seeded by `core` so
/// different cores walk different index streams) with a private scratch
/// write every 16th access.
///
/// The table is `SHARED` + `READ_ONLY` with high declared reuse: under
/// MESI its lines settle in S in every domain (no invalidation traffic),
/// and it remains a profitable L3 pin even under coherence-aware placement.
pub fn read_mostly_reader<S: TraceSink + ?Sized>(
    sink: &mut S,
    core: u64,
    table_bytes: u64,
    accesses: u64,
    compute: u32,
    reuse: Reuse,
) {
    let table = sink.create_atom_shared(
        KEY_TABLE,
        "shared_table",
        AtomAttributes::builder()
            .data_type(DataType::Float64)
            .props(DataProps::SHARED)
            .rw(RwChar::ReadOnly)
            .access_pattern(AccessPattern::NonDet)
            .reuse(reuse)
            .build(),
    );
    let table_base = sink.alloc_shared(KEY_TABLE, table_bytes, Some(table));
    sink.map(table, table_base, table_bytes);
    sink.activate(table);

    let scratch_bytes = 4096u64;
    let scratch = sink.create_atom(
        "reader_scratch",
        AtomAttributes::builder()
            .rw(RwChar::ReadWrite)
            .reuse(Reuse(64))
            .build(),
    );
    let scratch_base = sink.alloc(scratch_bytes, Some(scratch));
    sink.map(scratch, scratch_base, scratch_bytes);
    sink.activate(scratch);

    let lines = (table_bytes / 64).max(1);
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (core.wrapping_mul(0xA076_1D64_78BD_642F));
    for i in 0..accesses {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sink.load_dep(table_base + ((state >> 24) % lines) * 64);
        if i % 16 == 15 {
            sink.store(scratch_base + ((state >> 40) % (scratch_bytes / 64)) * 64);
        }
        sink.compute(compute);
    }

    sink.deactivate(scratch);
    sink.unmap(scratch_base, scratch_bytes);
    sink.deactivate(table);
    sink.unmap(table_base, table_bytes);
}

/// One core's share of a lock-style contended counter: `rounds` iterations
/// of read-modify-write on a single shared line, with `work` ALU ops of
/// private work (over a small private buffer) between acquisitions.
///
/// The counter atom is `SHARED` + `READ_WRITE` over a single line, the
/// worst case for a snooping bus: every write by one core invalidates the
/// other's copy (BusRdX/BusUpgr), so bus transactions scale with `rounds`.
pub fn lock_counter<S: TraceSink + ?Sized>(sink: &mut S, rounds: u64, work: u32) {
    let counter_bytes = 64u64;
    let counter = sink.create_atom_shared(
        KEY_LOCK,
        "lock_counter",
        AtomAttributes::builder()
            .props(DataProps::SHARED)
            .rw(RwChar::ReadWrite)
            .reuse(Reuse(255))
            .build(),
    );
    let counter_base = sink.alloc_shared(KEY_LOCK, counter_bytes, Some(counter));
    sink.map(counter, counter_base, counter_bytes);
    sink.activate(counter);

    let priv_bytes = 2048u64;
    let private = sink.create_atom(
        "lock_private",
        AtomAttributes::builder()
            .access_pattern(AccessPattern::sequential(64))
            .reuse(Reuse(32))
            .build(),
    );
    let priv_base = sink.alloc(priv_bytes, Some(private));
    sink.map(private, priv_base, priv_bytes);
    sink.activate(private);

    let priv_lines = priv_bytes / 64;
    for r in 0..rounds {
        sink.load_dep(counter_base); // acquire: read the counter line
        sink.store(counter_base); // update: forces M locally, I remotely
        sink.load(priv_base + (r % priv_lines) * 64);
        sink.compute(work);
    }

    sink.deactivate(private);
    sink.unmap(priv_base, priv_bytes);
    sink.deactivate(counter);
    sink.unmap(counter_base, counter_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, LogSink, TraceEvent};

    #[test]
    fn producer_and_consumer_emit_mirrored_traffic() {
        let mut p = CollectSink::new();
        producer_consumer(&mut p, PcRole::Producer, 4096, 2, 1, Reuse(200));
        let mut c = CollectSink::new();
        producer_consumer(&mut c, PcRole::Consumer, 4096, 2, 1, Reuse(200));
        assert_eq!(p.memory_ops(), c.memory_ops());
        assert_eq!(p.memory_ops(), 2 * (4096 / 64));
    }

    #[test]
    fn shared_atoms_carry_shared_prop_and_rw_char() {
        let mut log = LogSink::new();
        producer_consumer(&mut log, PcRole::Producer, 4096, 1, 1, Reuse(200));
        read_mostly_reader(&mut log, 0, 4096, 32, 1, Reuse(200));
        let events = log.into_events();
        let shared: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CreateShared { label, attrs, .. } => Some((label.clone(), attrs)),
                _ => None,
            })
            .collect();
        assert_eq!(shared.len(), 2);
        for (_, attrs) in &shared {
            assert!(attrs.props().contains(DataProps::SHARED));
        }
        assert_eq!(shared[0].1.rw(), RwChar::ReadWrite, "buffer is migratory");
        assert_eq!(shared[1].1.rw(), RwChar::ReadOnly, "table is read-mostly");
    }

    #[test]
    fn readers_on_different_cores_walk_different_streams() {
        let run = |core| {
            let mut s = CollectSink::new();
            read_mostly_reader(&mut s, core, 8192, 100, 1, Reuse(200));
            s.ops
        };
        assert_eq!(run(0), run(0), "same core is deterministic");
        assert_ne!(run(0), run(1), "different cores diverge");
    }

    #[test]
    fn lock_counter_hammers_one_line() {
        let mut s = LogSink::new();
        lock_counter(&mut s, 50, 2);
        let events = s.into_events();
        let base = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::AllocShared { base, .. } => Some(*base),
                _ => None,
            })
            .expect("counter allocation");
        let on_counter = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Op(cpu_sim::trace::Op::Store { addr }) if *addr == base)
            })
            .count();
        assert_eq!(on_counter, 50, "one store per round on the shared line");
    }
}
