//! Interference workloads ("cache hogs") for the multi-core co-run
//! experiments — the co-running applications whose presence motivates both
//! of the paper's use cases (§5.1, §6.2).

use crate::sink::TraceSink;
use xmem_core::attrs::{AccessPattern, AtomAttributes, DataType, Reuse};

/// A streaming hog: sweeps a `bytes`-sized buffer line by line for
/// `accesses` loads. With XMem it honestly expresses *zero reuse*, letting
/// the shared cache deprioritize it (Table 1, "bypassing data that has no
/// reuse").
pub fn stream_hog<S: TraceSink + ?Sized>(sink: &mut S, bytes: u64, accesses: u64, compute: u32) {
    let atom = sink.create_atom(
        "hog_stream",
        AtomAttributes::builder()
            .data_type(DataType::Float64)
            .access_pattern(AccessPattern::sequential(64))
            .reuse(Reuse::NONE)
            .build(),
    );
    let base = sink.alloc(bytes, Some(atom));
    sink.map(atom, base, bytes);
    sink.activate(atom);
    let lines = (bytes / 64).max(1);
    for i in 0..accesses {
        sink.load(base + (i % lines) * 64);
        sink.compute(compute);
    }
    sink.deactivate(atom);
    sink.unmap(base, bytes);
}

/// A random-access hog: uniformly random lines over a `bytes` buffer,
/// expressing a non-deterministic pattern.
pub fn random_hog<S: TraceSink + ?Sized>(sink: &mut S, bytes: u64, accesses: u64, compute: u32) {
    let atom = sink.create_atom(
        "hog_random",
        AtomAttributes::builder()
            .access_pattern(AccessPattern::NonDet)
            .reuse(Reuse::NONE)
            .build(),
    );
    let base = sink.alloc(bytes, Some(atom));
    sink.map(atom, base, bytes);
    sink.activate(atom);
    let lines = (bytes / 64).max(1);
    let mut state = 0x243F6A8885A308D3u64 ^ bytes;
    for _ in 0..accesses {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sink.load(base + ((state >> 24) % lines) * 64);
        sink.compute(compute);
    }
    sink.deactivate(atom);
    sink.unmap(base, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;

    #[test]
    fn stream_hog_emits_requested_accesses() {
        let mut s = CollectSink::new();
        stream_hog(&mut s, 64 << 10, 1000, 4);
        assert_eq!(s.memory_ops(), 1000);
        assert_eq!(s.atoms().len(), 1);
    }

    #[test]
    fn random_hog_is_deterministic_and_spread() {
        let run = || {
            let mut s = CollectSink::new();
            random_hog(&mut s, 64 << 10, 500, 2);
            s.ops
        };
        assert_eq!(run(), run());
        let mut s = CollectSink::new();
        random_hog(&mut s, 64 << 10, 500, 2);
        let distinct: std::collections::HashSet<u64> = s
            .ops
            .iter()
            .filter_map(|o| match o {
                cpu_sim::trace::Op::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert!(
            distinct.len() > 300,
            "only {} distinct lines",
            distinct.len()
        );
    }

    #[test]
    fn hogs_express_zero_reuse() {
        let mut s = CollectSink::new();
        stream_hog(&mut s, 4096, 10, 1);
        assert_eq!(s.atoms()[0].1.reuse(), xmem_core::attrs::Reuse::NONE);
    }
}
