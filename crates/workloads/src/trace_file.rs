//! Binary trace files: record a workload's event log once, replay it many
//! times (or on another machine configuration).
//!
//! The format mirrors the atom segment's philosophy (§3.5.2): magic +
//! version header, forward-compatibly versioned, with atom attributes
//! encoded by the exact same codec the segment uses
//! ([`xmem_core::segment::encode_attrs`]).

use crate::sink::TraceEvent;
use cpu_sim::trace::Op;
use std::io::{self, Read, Write};
use xmem_core::atom::AtomId;
use xmem_core::segment::{decode_attrs_bytes, encode_attrs};

/// Magic bytes of a trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"XMEMTRC\0";

/// Format version written (and highest read).
///
/// v2 added the shared-segment events (`CreateShared`/`AllocShared`).
pub const TRACE_VERSION: u32 = 2;

const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_LOAD_DEP: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_CREATE: u8 = 4;
const TAG_ALLOC: u8 = 5;
const TAG_MAP: u8 = 6;
const TAG_UNMAP: u8 = 7;
const TAG_MAP2D: u8 = 8;
const TAG_UNMAP2D: u8 = 9;
const TAG_ACTIVATE: u8 = 10;
const TAG_DEACTIVATE: u8 = 11;
const TAG_CREATE_SHARED: u8 = 12;
const TAG_ALLOC_SHARED: u8 = 13;

/// Writes `events` as a trace to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(events: &[TraceEvent], mut w: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(events.len() * 10 + 16);
    buf.extend_from_slice(TRACE_MAGIC);
    buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for ev in events {
        match ev {
            TraceEvent::Op(Op::Compute(n)) => {
                buf.push(TAG_COMPUTE);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            TraceEvent::Op(Op::Load { addr, dep }) => {
                buf.push(if *dep { TAG_LOAD_DEP } else { TAG_LOAD });
                buf.extend_from_slice(&addr.to_le_bytes());
            }
            TraceEvent::Op(Op::Store { addr }) => {
                buf.push(TAG_STORE);
                buf.extend_from_slice(&addr.to_le_bytes());
            }
            TraceEvent::Create { label, attrs } => {
                buf.push(TAG_CREATE);
                let bytes = label.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                buf.extend_from_slice(bytes);
                encode_attrs(attrs, &mut buf);
            }
            TraceEvent::Alloc { bytes, atom, base } => {
                buf.push(TAG_ALLOC);
                buf.extend_from_slice(&bytes.to_le_bytes());
                buf.push(atom.map(|a| a.raw()).unwrap_or(u8::MAX));
                buf.extend_from_slice(&base.to_le_bytes());
            }
            TraceEvent::Map { atom, start, len } => {
                buf.push(TAG_MAP);
                buf.push(atom.raw());
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            TraceEvent::Unmap { start, len } => {
                buf.push(TAG_UNMAP);
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            TraceEvent::Map2d {
                atom,
                base,
                size_x,
                size_y,
                len_x,
            } => {
                buf.push(TAG_MAP2D);
                buf.push(atom.raw());
                for v in [*base, *size_x, *size_y, *len_x] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            TraceEvent::Unmap2d {
                base,
                size_x,
                size_y,
                len_x,
            } => {
                buf.push(TAG_UNMAP2D);
                for v in [*base, *size_x, *size_y, *len_x] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            TraceEvent::Activate(a) => {
                buf.push(TAG_ACTIVATE);
                buf.push(a.raw());
            }
            TraceEvent::Deactivate(a) => {
                buf.push(TAG_DEACTIVATE);
                buf.push(a.raw());
            }
            TraceEvent::CreateShared { key, label, attrs } => {
                buf.push(TAG_CREATE_SHARED);
                buf.extend_from_slice(&key.to_le_bytes());
                let bytes = label.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                buf.extend_from_slice(bytes);
                encode_attrs(attrs, &mut buf);
            }
            TraceEvent::AllocShared {
                key,
                bytes,
                atom,
                base,
            } => {
                buf.push(TAG_ALLOC_SHARED);
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&bytes.to_le_bytes());
                buf.push(atom.map(|a| a.raw()).unwrap_or(u8::MAX));
                buf.extend_from_slice(&base.to_le_bytes());
            }
        }
    }
    w.write_all(&buf)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(bad("truncated trace"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        // simlint: allow(unwrap, reason = "take(2) yields exactly 2 bytes; the slice-to-array conversion is infallible")
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        // simlint: allow(unwrap, reason = "take(4) yields exactly 4 bytes; the slice-to-array conversion is infallible")
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        // simlint: allow(unwrap, reason = "take(8) yields exactly 8 bytes; the slice-to-array conversion is infallible")
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// I/O errors from the reader, or `InvalidData` for corrupt/newer-version
/// traces.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceEvent>> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let mut c = Cursor {
        bytes: &bytes,
        pos: 0,
    };
    if c.take(8)? != TRACE_MAGIC {
        return Err(bad("not a trace file"));
    }
    let version = c.u32()?;
    if version > TRACE_VERSION {
        return Err(bad("trace version newer than supported"));
    }
    let count = c.u64()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        let tag = c.u8()?;
        let ev = match tag {
            TAG_COMPUTE => TraceEvent::Op(Op::Compute(c.u32()?)),
            TAG_LOAD => TraceEvent::Op(Op::load(c.u64()?)),
            TAG_LOAD_DEP => TraceEvent::Op(Op::load_dep(c.u64()?)),
            TAG_STORE => TraceEvent::Op(Op::store(c.u64()?)),
            TAG_CREATE => {
                let len = c.u16()? as usize;
                let label = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| bad("label not utf-8"))?
                    .to_owned();
                let (attrs, used) =
                    decode_attrs_bytes(&c.bytes[c.pos..]).map_err(|e| bad(&e.to_string()))?;
                c.pos += used;
                TraceEvent::Create { label, attrs }
            }
            TAG_ALLOC => {
                let bytes = c.u64()?;
                let raw = c.u8()?;
                let atom = (raw != u8::MAX).then(|| AtomId::new(raw));
                let base = c.u64()?;
                TraceEvent::Alloc { bytes, atom, base }
            }
            TAG_MAP => TraceEvent::Map {
                atom: AtomId::new(c.u8()?),
                start: c.u64()?,
                len: c.u64()?,
            },
            TAG_UNMAP => TraceEvent::Unmap {
                start: c.u64()?,
                len: c.u64()?,
            },
            TAG_MAP2D => TraceEvent::Map2d {
                atom: AtomId::new(c.u8()?),
                base: c.u64()?,
                size_x: c.u64()?,
                size_y: c.u64()?,
                len_x: c.u64()?,
            },
            TAG_UNMAP2D => TraceEvent::Unmap2d {
                base: c.u64()?,
                size_x: c.u64()?,
                size_y: c.u64()?,
                len_x: c.u64()?,
            },
            TAG_ACTIVATE => TraceEvent::Activate(AtomId::new(c.u8()?)),
            TAG_DEACTIVATE => TraceEvent::Deactivate(AtomId::new(c.u8()?)),
            TAG_CREATE_SHARED => {
                let key = c.u64()?;
                let len = c.u16()? as usize;
                let label = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| bad("label not utf-8"))?
                    .to_owned();
                let (attrs, used) =
                    decode_attrs_bytes(&c.bytes[c.pos..]).map_err(|e| bad(&e.to_string()))?;
                c.pos += used;
                TraceEvent::CreateShared { key, label, attrs }
            }
            TAG_ALLOC_SHARED => {
                let key = c.u64()?;
                let bytes = c.u64()?;
                let raw = c.u8()?;
                let atom = (raw != u8::MAX).then(|| AtomId::new(raw));
                let base = c.u64()?;
                TraceEvent::AllocShared {
                    key,
                    bytes,
                    atom,
                    base,
                }
            }
            other => return Err(bad(&format!("unknown event tag {other}"))),
        };
        events.push(ev);
    }
    Ok(events)
}

/// Replays a recorded trace into a sink, re-binding allocations.
///
/// Recorded `Alloc` events are re-executed through the sink (whose allocator
/// may return different base addresses); every subsequent address is
/// translated from the recorded address space to the actual one.
pub fn replay(events: &[TraceEvent], sink: &mut dyn crate::sink::TraceSink) {
    // (recorded base, len, actual base), sorted by recorded base.
    let mut ranges: Vec<(u64, u64, u64)> = Vec::new();
    let translate = |ranges: &[(u64, u64, u64)], va: u64| -> u64 {
        match ranges.binary_search_by(|&(b, _, _)| b.cmp(&va)) {
            Ok(i) => ranges[i].2,
            Err(0) => va,
            Err(i) => {
                let (b, l, a) = ranges[i - 1];
                if va < b + l {
                    a + (va - b)
                } else {
                    va
                }
            }
        }
    };
    for ev in events {
        match ev {
            TraceEvent::Op(Op::Compute(n)) => sink.compute(*n),
            TraceEvent::Op(Op::Load { addr, dep }) => {
                let a = translate(&ranges, *addr);
                if *dep {
                    sink.load_dep(a)
                } else {
                    sink.load(a)
                }
            }
            TraceEvent::Op(Op::Store { addr }) => sink.store(translate(&ranges, *addr)),
            TraceEvent::Create { label, attrs } => {
                let _ = sink.create_atom(label, attrs.clone());
            }
            TraceEvent::Alloc { bytes, atom, base } => {
                let actual = sink.alloc(*bytes, *atom);
                ranges.push((*base, bytes.next_multiple_of(4096).max(4096), actual));
                ranges.sort_unstable();
            }
            TraceEvent::Map { atom, start, len } => {
                sink.map(*atom, translate(&ranges, *start), *len)
            }
            TraceEvent::Unmap { start, len } => sink.unmap(translate(&ranges, *start), *len),
            TraceEvent::Map2d {
                atom,
                base,
                size_x,
                size_y,
                len_x,
            } => sink.map_2d(*atom, translate(&ranges, *base), *size_x, *size_y, *len_x),
            TraceEvent::Unmap2d {
                base,
                size_x,
                size_y,
                len_x,
            } => sink.unmap_2d(translate(&ranges, *base), *size_x, *size_y, *len_x),
            TraceEvent::Activate(a) => sink.activate(*a),
            TraceEvent::Deactivate(a) => sink.deactivate(*a),
            TraceEvent::CreateShared { key, label, attrs } => {
                let _ = sink.create_atom_shared(*key, label, attrs.clone());
            }
            TraceEvent::AllocShared {
                key,
                bytes,
                atom,
                base,
            } => {
                let actual = sink.alloc_shared(*key, *bytes, *atom);
                ranges.push((*base, bytes.next_multiple_of(4096).max(4096), actual));
                ranges.sort_unstable();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench::{KernelParams, PolybenchKernel};
    use crate::sink::LogSink;

    fn sample_log() -> Vec<TraceEvent> {
        let mut log = LogSink::new();
        PolybenchKernel::Gemm.generate(
            &KernelParams {
                n: 16,
                tile_bytes: 1024,
                steps: 1,
                reuse: 99,
            },
            &mut log,
        );
        log.into_events()
    }

    #[test]
    fn roundtrip_kernel_trace() {
        let events = sample_log();
        let mut buf = Vec::new();
        write_trace(&events, &mut buf).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(read_trace(&b"garbage!"[..]).is_err());
        let events = sample_log();
        let mut buf = Vec::new();
        write_trace(&events, &mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(read_trace(&buf[..cut]).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut buf = Vec::new();
        write_trace(&[], &mut buf).unwrap();
        buf[8..12].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn replay_reproduces_behaviour() {
        use crate::sink::CollectSink;
        let events = sample_log();
        let mut sink = CollectSink::new();
        replay(&events, &mut sink);
        // Same op count and same relative access structure.
        let original_ops = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Op(_)))
            .count();
        assert_eq!(sink.ops.len(), original_ops);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&[], &mut buf).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), Vec::<TraceEvent>::new());
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        use xmem_core::attrs::AtomAttributes;
        let events = vec![
            TraceEvent::Op(Op::Compute(7)),
            TraceEvent::Op(Op::load(0xABCD)),
            TraceEvent::Op(Op::load_dep(0x1234)),
            TraceEvent::Op(Op::store(0x9999)),
            TraceEvent::Create {
                label: "x".into(),
                attrs: AtomAttributes::default(),
            },
            TraceEvent::Alloc {
                bytes: 4096,
                atom: Some(AtomId::new(3)),
                base: 0x10000,
            },
            TraceEvent::Alloc {
                bytes: 64,
                atom: None,
                base: 0x20000,
            },
            TraceEvent::Map {
                atom: AtomId::new(3),
                start: 0x10000,
                len: 4096,
            },
            TraceEvent::Map2d {
                atom: AtomId::new(3),
                base: 1,
                size_x: 2,
                size_y: 3,
                len_x: 4,
            },
            TraceEvent::Unmap2d {
                base: 1,
                size_x: 2,
                size_y: 3,
                len_x: 4,
            },
            TraceEvent::Activate(AtomId::new(3)),
            TraceEvent::Deactivate(AtomId::new(3)),
            TraceEvent::Unmap {
                start: 0x10000,
                len: 4096,
            },
            TraceEvent::CreateShared {
                key: 42,
                label: "shared".into(),
                attrs: AtomAttributes::default(),
            },
            TraceEvent::AllocShared {
                key: 42,
                bytes: 8192,
                atom: Some(AtomId::new(4)),
                base: 0x30000,
            },
        ];
        let mut buf = Vec::new();
        write_trace(&events, &mut buf).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), events);
    }
}
