//! The trace sink: how workloads talk to the simulated machine.
//!
//! A workload is a *generator*: it replays its algorithm's memory behaviour
//! by calling [`TraceSink`] methods — ordinary ops ([`TraceSink::op`]),
//! memory allocation ([`TraceSink::alloc`], the augmented `malloc` of
//! §4.1.2), and the XMem operators of Table 2. The system driver implements
//! the sink twice: once wired to the full XMem machinery, and once as a
//! baseline that executes the ops but ignores every hint — which is exactly
//! the paper's baseline (same binary minus the XMem calls).

use cpu_sim::batch::{OpAttrs, OpBatch, OpKind};
use cpu_sim::trace::Op;
use xmem_core::atom::AtomId;
use xmem_core::attrs::AtomAttributes;

/// Receives the event stream of a running workload.
///
/// All addresses are virtual. Hint methods must be safe to ignore — a sink
/// that only implements `op` and `alloc` (plus no-op hints) runs every
/// workload correctly, just without XMem benefits.
pub trait TraceSink {
    /// Executes one CPU op.
    fn op(&mut self, op: Op);

    /// Executes a buffer of ops in order.
    ///
    /// The default forwards each op to [`TraceSink::op`], so every sink is
    /// batch-correct by construction; sinks with a genuinely batched fast
    /// path (the executing machine) override it. Overrides must observe
    /// the ops in exactly buffer order — the byte-identity invariant of
    /// the batched memory path rests on it.
    fn op_batch(&mut self, batch: &OpBatch) {
        for i in 0..batch.len() {
            self.op(batch.op(i));
        }
    }

    /// Allocates `bytes` of virtual memory on behalf of `atom` (if the data
    /// belongs to one), returning the base address. This is the augmented
    /// `malloc(size, atomID)` interface of §4.1.2.
    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64;

    /// `CreateAtom`: creates (or returns the existing) atom for `label`.
    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId;

    /// `CreateAtom` for data *shared between co-running workloads*: logs
    /// recorded from different generators that use the same `key` refer to
    /// one atom when co-run (see `xmem_sim::multicore`). The default
    /// delegates to [`TraceSink::create_atom`], so on a single-core sink a
    /// shared atom degenerates to an ordinary private one.
    fn create_atom_shared(&mut self, key: u64, label: &str, attrs: AtomAttributes) -> AtomId {
        let _ = key;
        self.create_atom(label, attrs)
    }

    /// Allocation of a *shared segment*: co-run logs using the same `key`
    /// map to one physical allocation (first replayer allocates, the rest
    /// alias it). The default delegates to [`TraceSink::alloc`] — private
    /// memory on a single-core sink.
    fn alloc_shared(&mut self, key: u64, bytes: u64, atom: Option<AtomId>) -> u64 {
        let _ = key;
        self.alloc(bytes, atom)
    }

    /// `AtomMap` over a linear range.
    fn map(&mut self, atom: AtomId, start: u64, len: u64);

    /// `AtomUnmap` over a linear range.
    fn unmap(&mut self, start: u64, len: u64);

    /// `AtomMap2D`: a `size_x`×`size_y`-byte block in rows of `len_x` bytes.
    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64);

    /// `AtomUnmap2D` (same geometry as [`TraceSink::map_2d`]).
    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64);

    /// `AtomActivate`.
    fn activate(&mut self, atom: AtomId);

    /// `AtomDeactivate`.
    fn deactivate(&mut self, atom: AtomId);

    /// Convenience: an independent load.
    fn load(&mut self, addr: u64) {
        self.op(Op::load(addr));
    }

    /// Convenience: a dependent (pointer-chase) load.
    fn load_dep(&mut self, addr: u64) {
        self.op(Op::load_dep(addr));
    }

    /// Convenience: a store.
    fn store(&mut self, addr: u64) {
        self.op(Op::store(addr));
    }

    /// Convenience: `n` compute instructions.
    fn compute(&mut self, n: u32) {
        self.op(Op::Compute(n));
    }
}

/// Buffers ops into an [`OpBatch`] and hands full buffers downstream via
/// [`TraceSink::op_batch`], flushing before any hint so program order is
/// preserved exactly.
///
/// Wrap the executing sink in this to turn a per-op generator into a
/// batched one without touching the generator: ops amortize the dynamic
/// dispatch into one call per [`cpu_sim::batch::BATCH_CAPACITY`] ops,
/// while allocation and XMem hints still land between the right ops.
///
/// Call [`BatchEmitter::flush`] after the generator finishes. Dropping
/// the emitter with buffered ops is a *debug assertion* — a silently
/// deferred tail means ops land after whatever the caller did next — but
/// release builds still flush as a safety net, so no op is ever lost.
///
/// # Examples
///
/// ```
/// use workloads::sink::{BatchEmitter, CollectSink, TraceSink};
///
/// let mut inner = CollectSink::new();
/// {
///     let mut em = BatchEmitter::new(&mut inner);
///     for i in 0..1000u64 {
///         em.load(i * 64);
///     }
///     em.flush(); // explicit tail flush at generator end
/// }
/// assert_eq!(inner.ops.len(), 1000);
/// ```
#[derive(Debug)]
pub struct BatchEmitter<'a, S: TraceSink + ?Sized> {
    sink: &'a mut S,
    batch: OpBatch,
}

impl<'a, S: TraceSink + ?Sized> BatchEmitter<'a, S> {
    /// Wraps `sink` with an empty buffer.
    pub fn new(sink: &'a mut S) -> Self {
        BatchEmitter {
            sink,
            batch: OpBatch::new(),
        }
    }

    /// Sends any buffered ops downstream.
    pub fn flush(&mut self) {
        if !self.batch.is_empty() {
            self.sink.op_batch(&self.batch);
            self.batch.clear();
        }
    }
}

impl<S: TraceSink + ?Sized> Drop for BatchEmitter<'_, S> {
    fn drop(&mut self) {
        // Skip during unwind (the sink may be poisoned).
        if std::thread::panicking() {
            return;
        }
        // Dropping with buffered ops is a caller bug: the tail would land
        // *after* whatever the caller interleaved next. Assert in debug
        // builds; flush as a release-mode safety net so no op is lost.
        debug_assert!(
            self.batch.is_empty(),
            "BatchEmitter dropped with {} unflushed ops; call flush() at generator end",
            self.batch.len()
        );
        self.flush();
    }
}

impl<S: TraceSink + ?Sized> TraceSink for BatchEmitter<'_, S> {
    #[inline]
    fn op(&mut self, op: Op) {
        self.batch.push_op(op, 0);
        if self.batch.is_full() {
            self.flush();
        }
    }

    // The convenience emitters push lanes directly instead of routing
    // through an [`Op`] value; each is exactly its trait-default expansion
    // (`OpAttrs::read()` carries `dep: false`, and a `Compute` push stores
    // the count in the address lane with default attributes).
    #[inline]
    fn load(&mut self, addr: u64) {
        self.batch.push(OpKind::Load, addr, OpAttrs::read(), 0);
        if self.batch.is_full() {
            self.flush();
        }
    }

    #[inline]
    fn load_dep(&mut self, addr: u64) {
        self.batch
            .push(OpKind::Load, addr, OpAttrs::read().with_dep(true), 0);
        if self.batch.is_full() {
            self.flush();
        }
    }

    #[inline]
    fn store(&mut self, addr: u64) {
        self.batch.push(OpKind::Store, addr, OpAttrs::write(), 0);
        if self.batch.is_full() {
            self.flush();
        }
    }

    #[inline]
    fn compute(&mut self, n: u32) {
        self.batch
            .push(OpKind::Compute, n as u64, OpAttrs::default(), 0);
        if self.batch.is_full() {
            self.flush();
        }
    }

    fn op_batch(&mut self, batch: &OpBatch) {
        self.flush();
        self.sink.op_batch(batch);
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.flush();
        self.sink.alloc(bytes, atom)
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        self.flush();
        self.sink.create_atom(label, attrs)
    }

    fn create_atom_shared(&mut self, key: u64, label: &str, attrs: AtomAttributes) -> AtomId {
        self.flush();
        self.sink.create_atom_shared(key, label, attrs)
    }

    fn alloc_shared(&mut self, key: u64, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.flush();
        self.sink.alloc_shared(key, bytes, atom)
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.flush();
        self.sink.map(atom, start, len);
    }

    fn unmap(&mut self, start: u64, len: u64) {
        self.flush();
        self.sink.unmap(start, len);
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.flush();
        self.sink.map_2d(atom, base, size_x, size_y, len_x);
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.flush();
        self.sink.unmap_2d(base, size_x, size_y, len_x);
    }

    fn activate(&mut self, atom: AtomId) {
        self.flush();
        self.sink.activate(atom);
    }

    fn deactivate(&mut self, atom: AtomId) {
        self.flush();
        self.sink.deactivate(atom);
    }
}

/// Forces the scalar path of the wrapped sink: every incoming batch is
/// unbundled into per-op [`TraceSink::op`] calls (the trait default), and
/// the wrapped sink's own `op_batch` override is never invoked.
///
/// This is the reference arm of the byte-identity tests: a run through
/// `Scalarize<Machine>` must produce a report identical to the batched run.
#[derive(Debug)]
pub struct Scalarize<'a, S: TraceSink + ?Sized> {
    sink: &'a mut S,
}

impl<'a, S: TraceSink + ?Sized> Scalarize<'a, S> {
    /// Wraps `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        Scalarize { sink }
    }
}

impl<S: TraceSink + ?Sized> TraceSink for Scalarize<'_, S> {
    // No op_batch override: the trait default unbundles batches through
    // `op`, which is exactly the point.
    fn op(&mut self, op: Op) {
        self.sink.op(op);
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.sink.alloc(bytes, atom)
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        self.sink.create_atom(label, attrs)
    }

    fn create_atom_shared(&mut self, key: u64, label: &str, attrs: AtomAttributes) -> AtomId {
        self.sink.create_atom_shared(key, label, attrs)
    }

    fn alloc_shared(&mut self, key: u64, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.sink.alloc_shared(key, bytes, atom)
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.sink.map(atom, start, len);
    }

    fn unmap(&mut self, start: u64, len: u64) {
        self.sink.unmap(start, len);
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.sink.map_2d(atom, base, size_x, size_y, len_x);
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.sink.unmap_2d(base, size_x, size_y, len_x);
    }

    fn activate(&mut self, atom: AtomId) {
        self.sink.activate(atom);
    }

    fn deactivate(&mut self, atom: AtomId) {
        self.sink.deactivate(atom);
    }
}

/// One fully-ordered trace event (op or hint), as recorded by [`LogSink`].
///
/// Unlike [`CollectSink`] (which separates ops from hints), the log keeps
/// program order across both kinds — required to *replay* a workload, e.g.
/// when interleaving several cores' traces in a multi-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A CPU op.
    Op(Op),
    /// `CreateAtom` (atom identified by its creation index).
    Create {
        /// Label of the atom.
        label: String,
        /// Its attributes.
        attrs: AtomAttributes,
    },
    /// `CreateAtom` for cross-workload shared data: co-run logs using the
    /// same `key` resolve to one atom (the first replayed creation wins;
    /// later ones alias it).
    CreateShared {
        /// Cross-log sharing key.
        key: u64,
        /// Label of the atom.
        label: String,
        /// Its attributes.
        attrs: AtomAttributes,
    },
    /// An allocation; `base` is the VA the generator observed.
    Alloc {
        /// Requested size.
        bytes: u64,
        /// Owning atom.
        atom: Option<AtomId>,
        /// VA handed out during recording.
        base: u64,
    },
    /// A shared-segment allocation: co-run logs using the same `key` alias
    /// one physical allocation.
    AllocShared {
        /// Cross-log sharing key.
        key: u64,
        /// Requested size.
        bytes: u64,
        /// Owning atom.
        atom: Option<AtomId>,
        /// VA handed out during recording (still per-log private VA space;
        /// the replayer maps all of them onto the one shared segment).
        base: u64,
    },
    /// `AtomMap`.
    Map {
        /// Target atom.
        atom: AtomId,
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// `AtomUnmap`.
    Unmap {
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// `AtomMap2D`.
    Map2d {
        /// Target atom.
        atom: AtomId,
        /// Block base.
        base: u64,
        /// Block width in bytes.
        size_x: u64,
        /// Block height in rows.
        size_y: u64,
        /// Row pitch in bytes.
        len_x: u64,
    },
    /// `AtomUnmap2D`.
    Unmap2d {
        /// Block base.
        base: u64,
        /// Block width in bytes.
        size_x: u64,
        /// Block height in rows.
        size_y: u64,
        /// Row pitch in bytes.
        len_x: u64,
    },
    /// `AtomActivate`.
    Activate(AtomId),
    /// `AtomDeactivate`.
    Deactivate(AtomId),
}

/// A sink that records the *ordered* event log of a workload so it can be
/// replayed later (see [`TraceEvent`]).
///
/// # Examples
///
/// ```
/// use workloads::sink::{LogSink, TraceSink, TraceEvent};
///
/// let mut log = LogSink::new();
/// log.compute(3);
/// log.load(0x40);
/// assert_eq!(log.events().len(), 2);
/// assert!(matches!(log.events()[1], TraceEvent::Op(_)));
/// ```
#[derive(Debug, Default)]
pub struct LogSink {
    events: Vec<TraceEvent>,
    atoms: Vec<String>,
    next_va: u64,
}

impl LogSink {
    /// Creates an empty log.
    pub fn new() -> Self {
        LogSink {
            next_va: 1 << 20,
            ..Default::default()
        }
    }

    /// The recorded events in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the event log.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for LogSink {
    fn op(&mut self, op: Op) {
        self.events.push(TraceEvent::Op(op));
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        self.events.push(TraceEvent::Alloc { bytes, atom, base });
        base
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|l| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push(label.to_owned());
        self.events.push(TraceEvent::Create {
            label: label.to_owned(),
            attrs,
        });
        id
    }

    fn create_atom_shared(&mut self, key: u64, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|l| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push(label.to_owned());
        self.events.push(TraceEvent::CreateShared {
            key,
            label: label.to_owned(),
            attrs,
        });
        id
    }

    fn alloc_shared(&mut self, key: u64, bytes: u64, atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        self.events.push(TraceEvent::AllocShared {
            key,
            bytes,
            atom,
            base,
        });
        base
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.events.push(TraceEvent::Map { atom, start, len });
    }

    fn unmap(&mut self, start: u64, len: u64) {
        self.events.push(TraceEvent::Unmap { start, len });
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.events.push(TraceEvent::Map2d {
            atom,
            base,
            size_x,
            size_y,
            len_x,
        });
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.events.push(TraceEvent::Unmap2d {
            base,
            size_x,
            size_y,
            len_x,
        });
    }

    fn activate(&mut self, atom: AtomId) {
        self.events.push(TraceEvent::Activate(atom));
    }

    fn deactivate(&mut self, atom: AtomId) {
        self.events.push(TraceEvent::Deactivate(atom));
    }
}

/// A sink that records everything, for tests and trace inspection.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Ops in program order.
    pub ops: Vec<Op>,
    /// Hint events in program order.
    pub events: Vec<HintEvent>,
    next_atom: u8,
    atoms: Vec<(String, AtomAttributes)>,
    next_va: u64,
}

/// A recorded hint call.
#[derive(Debug, Clone, PartialEq)]
pub enum HintEvent {
    /// An allocation and the VA it returned.
    Alloc {
        /// Requested bytes.
        bytes: u64,
        /// Owning atom, if any.
        atom: Option<AtomId>,
        /// Returned base address.
        base: u64,
    },
    /// A linear map.
    Map {
        /// Target atom.
        atom: AtomId,
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// A linear unmap.
    Unmap {
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// A 2D map.
    Map2d {
        /// Target atom.
        atom: AtomId,
        /// Block base.
        base: u64,
        /// Block width in bytes.
        size_x: u64,
        /// Block height in rows.
        size_y: u64,
        /// Row pitch in bytes.
        len_x: u64,
    },
    /// A 2D unmap.
    Unmap2d {
        /// Block base.
        base: u64,
        /// Block width in bytes.
        size_x: u64,
        /// Block height in rows.
        size_y: u64,
        /// Row pitch in bytes.
        len_x: u64,
    },
    /// An activation.
    Activate(AtomId),
    /// A deactivation.
    Deactivate(AtomId),
}

impl CollectSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CollectSink {
            next_va: 1 << 20,
            ..Default::default()
        }
    }

    /// The atoms created so far, in ID order.
    pub fn atoms(&self) -> &[(String, AtomAttributes)] {
        &self.atoms
    }

    /// Total instructions represented by the recorded ops.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(|o| o.instructions()).sum()
    }

    /// Number of memory ops recorded.
    pub fn memory_ops(&self) -> u64 {
        self.ops.iter().filter(|o| o.is_memory()).count() as u64
    }
}

impl TraceSink for CollectSink {
    fn op(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        self.events.push(HintEvent::Alloc { bytes, atom, base });
        base
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|(l, _)| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.next_atom);
        self.next_atom += 1;
        self.atoms.push((label.to_owned(), attrs));
        id
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.events.push(HintEvent::Map { atom, start, len });
    }

    fn unmap(&mut self, start: u64, len: u64) {
        self.events.push(HintEvent::Unmap { start, len });
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.events.push(HintEvent::Map2d {
            atom,
            base,
            size_x,
            size_y,
            len_x,
        });
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.events.push(HintEvent::Unmap2d {
            base,
            size_x,
            size_y,
            len_x,
        });
    }

    fn activate(&mut self, atom: AtomId) {
        self.events.push(HintEvent::Activate(atom));
    }

    fn deactivate(&mut self, atom: AtomId) {
        self.events.push(HintEvent::Deactivate(atom));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_records_ops_and_events() {
        let mut s = CollectSink::new();
        let a = s.create_atom("x", AtomAttributes::default());
        let base = s.alloc(100, Some(a));
        s.map(a, base, 100);
        s.activate(a);
        s.load(base);
        s.store(base + 8);
        s.compute(3);
        s.deactivate(a);
        assert_eq!(s.ops.len(), 3);
        assert_eq!(s.instructions(), 5);
        assert_eq!(s.memory_ops(), 2);
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn create_atom_dedups_by_label() {
        let mut s = CollectSink::new();
        let a = s.create_atom("same", AtomAttributes::default());
        let b = s.create_atom("same", AtomAttributes::default());
        let c = s.create_atom("other", AtomAttributes::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(s.atoms().len(), 2);
    }

    #[test]
    fn batch_emitter_preserves_program_order_across_hints() {
        // Record the same program directly and through a BatchEmitter; the
        // fully-ordered logs must be identical (hints land between the
        // right ops even when the buffer is mid-fill).
        let program = |s: &mut dyn TraceSink| {
            let a = s.create_atom("t", AtomAttributes::default());
            let base = s.alloc(4096, Some(a));
            for i in 0..300u64 {
                s.load(base + i * 64);
            }
            s.map(a, base, 4096);
            s.activate(a);
            for i in 0..300u64 {
                s.store(base + i * 64);
                s.compute(1);
            }
            s.deactivate(a);
        };
        let mut direct = LogSink::new();
        program(&mut direct);
        let mut batched = LogSink::new();
        {
            let mut em = BatchEmitter::new(&mut batched);
            program(&mut em);
        }
        assert_eq!(direct.events(), batched.events());
    }

    #[test]
    fn batch_emitter_flushes_at_capacity() {
        let mut inner = CollectSink::new();
        let mut em = BatchEmitter::new(&mut inner);
        for i in 0..cpu_sim::batch::BATCH_CAPACITY as u64 {
            em.load(i * 64);
        }
        // A full buffer flushed itself without waiting for drop.
        em.flush();
        assert_eq!(em.sink.ops.len(), cpu_sim::batch::BATCH_CAPACITY);
    }

    #[test]
    fn scalarize_unbundles_batches() {
        let mut inner = CollectSink::new();
        {
            let mut scalar = Scalarize::new(&mut inner);
            let mut em = BatchEmitter::new(&mut scalar);
            for i in 0..700u64 {
                em.load(i * 64);
            }
            em.flush();
        }
        assert_eq!(inner.ops.len(), 700);
    }

    #[test]
    fn non_multiple_of_capacity_emits_every_op() {
        // 700 is not a multiple of BATCH_CAPACITY (= 256): the trailing
        // partial batch of 188 ops must reach the sink via the explicit
        // flush, in order and with the right kinds.
        assert_ne!(700 % cpu_sim::batch::BATCH_CAPACITY, 0);
        let mut inner = CollectSink::new();
        {
            let mut em = BatchEmitter::new(&mut inner);
            for i in 0..700u64 {
                if i % 2 == 0 {
                    em.load(i * 64);
                } else {
                    em.store(i * 64);
                }
            }
            em.flush();
        }
        assert_eq!(inner.ops.len(), 700);
        for (i, op) in inner.ops.iter().enumerate() {
            match op {
                Op::Load { addr, .. } => assert_eq!(*addr, i as u64 * 64),
                Op::Store { addr, .. } => assert_eq!(*addr, i as u64 * 64),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unflushed ops")]
    fn dropping_with_buffered_ops_asserts_in_debug() {
        let mut inner = CollectSink::new();
        let mut em = BatchEmitter::new(&mut inner);
        em.load(0x40); // one buffered op, never flushed
        drop(em);
    }

    #[test]
    fn allocs_are_page_aligned_and_disjoint() {
        let mut s = CollectSink::new();
        let a = s.alloc(1, None);
        let b = s.alloc(10000, None);
        let c = s.alloc(1, None);
        assert_eq!(a % 4096, 0);
        assert!(b >= a + 4096);
        assert!(c >= b + 12288);
    }
}
