//! The 27 memory-intensive workloads of use case 2 (§6.3 of the paper).
//!
//! The paper evaluates OS-based DRAM placement on 27 workloads from SPEC
//! CPU2006, Rodinia, and Parboil (L3 MPKI > 1). Those suites are external
//! and proprietary; per the substitution rule we model each workload as a
//! *mix of data structures with the access semantics that characterize the
//! original* — streaming arrays (high row-buffer locality), strided walks,
//! random access, and pointer chasing — with relative sizes, access shares,
//! and intensities chosen to match the published memory behaviour of each
//! benchmark (e.g. `libquantum` ≈ one huge sequential stream; `mcf` ≈
//! pointer-chasing dominated). Fig 7/8's *shape* — who gains from
//! structure-aware placement and who cannot — depends exactly on these
//! semantics.
//!
//! Each data structure is expressed as one atom carrying its access pattern
//! and intensity; the OS placement algorithm (§6.2) consumes those
//! attributes.

use crate::sink::TraceSink;
use xmem_core::attrs::{AccessIntensity, AccessPattern, AtomAttributes, DataType, RwChar};

/// How a data structure is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Sequential line-granular streaming (high RBL when isolated).
    Stream,
    /// Strided walk with the given byte stride (> one line).
    Strided(i64),
    /// Uniformly random line accesses (no RBL, wants bank parallelism).
    Random,
    /// Serially dependent random accesses (pointer chasing; latency-bound).
    PointerChase,
}

impl AccessKind {
    fn pattern(self) -> AccessPattern {
        match self {
            AccessKind::Stream => AccessPattern::sequential(64),
            AccessKind::Strided(s) => AccessPattern::Regular { stride: s },
            AccessKind::Random => AccessPattern::NonDet,
            AccessKind::PointerChase => AccessPattern::NonDet,
        }
    }
}

/// One data structure in a workload mix.
#[derive(Debug, Clone, Copy)]
pub struct StructSpec {
    /// Name (for the atom label).
    pub name: &'static str,
    /// Footprint in KiB.
    pub kib: u64,
    /// Access behaviour.
    pub kind: AccessKind,
    /// Relative share of accesses (weights across the mix).
    pub weight: u32,
    /// Fraction of accesses that are writes, in percent.
    pub write_pct: u32,
}

/// A complete placement workload.
#[derive(Debug, Clone)]
pub struct PlacementWorkload {
    /// The benchmark this mix models.
    pub name: &'static str,
    /// The data structures.
    pub structs: Vec<StructSpec>,
    /// Compute instructions between consecutive memory accesses (sets the
    /// memory intensity — all 27 mixes are memory bound, MPKI > 1).
    pub compute_per_access: u32,
    /// Total memory accesses to generate.
    pub accesses: u64,
}

const S: fn(&'static str, u64, AccessKind, u32, u32) -> StructSpec =
    |name, kib, kind, weight, write_pct| StructSpec {
        name,
        kib,
        kind,
        weight,
        write_pct,
    };

impl PlacementWorkload {
    /// The 27 workload mixes, modeled on the paper's SPEC/Rodinia/Parboil
    /// selection. Sizes are scaled to the simulated machine (footprints of
    /// a few MB against a 1 MB L3) preserving each benchmark's character.
    pub fn all() -> Vec<PlacementWorkload> {
        use AccessKind::*;
        let w = |name, structs: Vec<StructSpec>, compute, accesses| PlacementWorkload {
            name,
            structs,
            compute_per_access: compute,
            accesses,
        };
        vec![
            // ---- SPEC CPU2006-like ----
            // libquantum: one dominant sequential sweep over a huge vector.
            w(
                "libquantum",
                vec![
                    S("reg", 8192, Stream, 15, 25),
                    S("work", 512, Stream, 1, 10),
                ],
                105,
                400_000,
            ),
            // lbm: two large grids streamed with writes.
            w(
                "lbm",
                vec![
                    S("src", 6144, Stream, 8, 0),
                    S("dst", 6144, Stream, 8, 100),
                    S("obst", 2048, Strided(4096), 3, 0),
                ],
                87,
                400_000,
            ),
            // milc: large strided lattice + streaming.
            w(
                "milc",
                vec![
                    S("lattice", 8192, Strided(4096), 8, 30),
                    S("gauge", 4096, Stream, 6, 0),
                ],
                122,
                350_000,
            ),
            // mcf: pointer chasing over arcs/nodes.
            w(
                "mcf",
                vec![
                    S("arcs", 6144, PointerChase, 10, 10),
                    S("nodes", 2048, Random, 5, 20),
                ],
                70,
                250_000,
            ),
            // soplex: sparse matrix (random) + dense vectors (stream).
            w(
                "soplex",
                vec![
                    S("cols", 4096, Random, 6, 10),
                    S("vec", 2048, Stream, 7, 30),
                    S("rows", 3072, Strided(2048), 4, 10),
                ],
                105,
                350_000,
            ),
            // gcc: mixed pools, moderately random.
            w(
                "gcc",
                vec![
                    S("ir", 3072, Random, 6, 30),
                    S("strings", 1024, Stream, 3, 10),
                    S("tables", 2048, Strided(2048), 3, 10),
                ],
                140,
                300_000,
            ),
            // bwaves: big stencil-ish streams.
            w(
                "bwaves",
                vec![
                    S("q", 6144, Stream, 8, 40),
                    S("rhs", 6144, Stream, 8, 40),
                    S("blk", 3072, Strided(8192), 4, 10),
                ],
                105,
                400_000,
            ),
            // GemsFDTD: multiple field arrays streamed together.
            w(
                "gems",
                vec![
                    S("ex", 4096, Stream, 5, 30),
                    S("ey", 4096, Stream, 5, 30),
                    S("ez", 4096, Stream, 5, 30),
                    S("bc", 2048, Strided(4096), 4, 20),
                ],
                105,
                380_000,
            ),
            // omnetpp: event heap + message pools, random.
            w(
                "omnetpp",
                vec![
                    S("heap", 3072, Random, 8, 30),
                    S("msgs", 3072, PointerChase, 5, 20),
                    S("fes", 2048, Stream, 4, 10),
                ],
                105,
                280_000,
            ),
            // leslie3d: many medium streams.
            w(
                "leslie3d",
                vec![
                    S("u", 3072, Stream, 5, 30),
                    S("v", 3072, Stream, 5, 30),
                    S("w", 3072, Stream, 5, 30),
                    S("p", 3072, Strided(8192), 3, 10),
                ],
                105,
                380_000,
            ),
            // sphinx3: acoustic model scans (stream) + hash lookups.
            w(
                "sphinx3",
                vec![
                    S("gauden", 6144, Stream, 9, 0),
                    S("dict", 1536, Random, 4, 5),
                ],
                122,
                340_000,
            ),
            // xalancbmk: DOM pointer chasing.
            w(
                "xalancbmk",
                vec![
                    S("dom", 5120, PointerChase, 10, 15),
                    S("text", 2048, Random, 4, 10),
                ],
                87,
                250_000,
            ),
            // cactusADM: 3D grid sweeps, large strides at plane boundaries.
            w(
                "cactus",
                vec![
                    S("grid", 8192, Strided(2048), 10, 40),
                    S("coeff", 1024, Stream, 3, 0),
                ],
                122,
                360_000,
            ),
            // zeusmp: multiple grid streams.
            w(
                "zeusmp",
                vec![
                    S("d", 4096, Stream, 6, 35),
                    S("e", 4096, Stream, 6, 35),
                    S("v3", 4096, Strided(4096), 4, 20),
                ],
                105,
                380_000,
            ),
            // astar: graph random walks + open list.
            w(
                "astar",
                vec![
                    S("grid", 4096, Random, 8, 15),
                    S("open", 1024, Random, 4, 40),
                    S("cost", 3072, Stream, 5, 30),
                ],
                105,
                280_000,
            ),
            // gobmk: board evaluations, small working random pools.
            w(
                "gobmk",
                vec![
                    S("board", 2048, Random, 6, 25),
                    S("cache", 2048, Random, 4, 25),
                    S("patterns", 3072, Stream, 5, 0),
                ],
                140,
                300_000,
            ),
            // ---- Rodinia-like ----
            // kmeans: features streamed repeatedly + centroids (hot, small).
            w(
                "kmeans",
                vec![
                    S("features", 8192, Stream, 12, 0),
                    S("member", 2048, Strided(2048), 4, 60),
                    S("centroids", 256, Random, 2, 50),
                ],
                105,
                400_000,
            ),
            // bfs (Rodinia): frontier random + edge lists.
            w(
                "bfsRod",
                vec![
                    S("edges", 6144, PointerChase, 9, 0),
                    S("visited", 2048, Random, 5, 50),
                ],
                70,
                250_000,
            ),
            // hotspot: two grids streamed (power, temp).
            w(
                "hotspot",
                vec![
                    S("temp", 4096, Stream, 7, 50),
                    S("power", 4096, Stream, 7, 0),
                    S("border", 2048, Strided(8192), 3, 10),
                ],
                105,
                380_000,
            ),
            // srad: image streamed with neighbor strides.
            w(
                "srad",
                vec![
                    S("image", 6144, Stream, 9, 40),
                    S("coeff", 3072, Strided(4096), 5, 30),
                ],
                105,
                360_000,
            ),
            // streamcluster (sc): distance computations, random points.
            w(
                "sc",
                vec![
                    S("points", 6144, Random, 10, 5),
                    S("centers", 512, Random, 5, 30),
                ],
                87,
                280_000,
            ),
            // pathfinder: row-by-row dynamic programming streams.
            w(
                "pathfinder",
                vec![
                    S("wall", 6144, Stream, 10, 0),
                    S("result", 1024, Stream, 4, 60),
                    S("prev", 2048, Strided(4096), 4, 20),
                ],
                105,
                380_000,
            ),
            // lavaMD: neighbor-box particle access, blocked random.
            w(
                "lavaMD",
                vec![
                    S("particles", 4096, Random, 8, 30),
                    S("boxes", 2048, Strided(8192), 4, 10),
                ],
                122,
                320_000,
            ),
            // ---- Parboil-like ----
            // histo: streamed input + random histogram updates.
            w(
                "histo",
                vec![
                    S("input", 6144, Stream, 9, 0),
                    S("bins", 2048, Random, 6, 80),
                ],
                87,
                330_000,
            ),
            // spmv: row pointers stream, column-index gathers random.
            w(
                "spmv",
                vec![
                    S("vals", 5120, Stream, 7, 0),
                    S("x", 2048, Random, 7, 0),
                    S("rowptr", 2048, Strided(2048), 3, 0),
                    S("y", 1024, Stream, 2, 70),
                ],
                87,
                340_000,
            ),
            // stencil (Parboil): 3D 7-point, two grids.
            w(
                "stencil",
                vec![
                    S("a", 5120, Stream, 8, 0),
                    S("b", 5120, Stream, 8, 70),
                    S("halo", 2048, Strided(8192), 3, 10),
                ],
                105,
                380_000,
            ),
            // cutcp: lattice random scatter + atom list stream.
            w(
                "cutcp",
                vec![
                    S("lattice", 5120, Random, 8, 60),
                    S("atoms", 2048, Stream, 5, 0),
                    S("bins", 2048, Strided(4096), 4, 10),
                ],
                105,
                320_000,
            ),
        ]
    }

    /// Finds a workload by name.
    pub fn by_name(name: &str) -> Option<PlacementWorkload> {
        Self::all().into_iter().find(|w| w.name == name)
    }

    /// Generates the workload trace: allocate + express every structure,
    /// then issue the interleaved access stream.
    pub fn generate<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        // Intensity ranking: proportional to access weight (the paper's
        // AccessIntensity is a relative ranking between atoms, §3.3).
        let max_weight = self.structs.iter().map(|s| s.weight).max().unwrap_or(1);
        let mut bases = Vec::with_capacity(self.structs.len());
        for spec in &self.structs {
            let attrs = AtomAttributes::builder()
                .data_type(DataType::Float64)
                .access_pattern(spec.kind.pattern())
                .rw(if spec.write_pct == 0 {
                    RwChar::ReadOnly
                } else {
                    RwChar::ReadWrite
                })
                .intensity(AccessIntensity(
                    (spec.weight * 255 / max_weight).min(255) as u8
                ))
                .build();
            let atom = sink.create_atom(spec.name, attrs);
            let bytes = spec.kib << 10;
            let base = sink.alloc(bytes, Some(atom));
            sink.map(atom, base, bytes);
            sink.activate(atom);
            bases.push(base);
        }

        // Deterministic weighted interleave with per-structure cursors.
        let total_weight: u32 = self.structs.iter().map(|s| s.weight).sum();
        let mut cursors = vec![0u64; self.structs.len()];
        let mut rngs: Vec<u64> = (0..self.structs.len())
            .map(|i| 0x9E3779B97F4A7C15u64 ^ (i as u64) << 32 ^ self.accesses)
            .collect();
        let mut acc = 0u64;
        let mut pick = 0u64;
        while acc < self.accesses {
            // Weighted round-robin: spread each structure's turns evenly.
            pick = (pick + 1) % total_weight as u64;
            let mut cum = 0u32;
            let mut idx = 0usize;
            for (i, s) in self.structs.iter().enumerate() {
                cum += s.weight;
                if (pick as u32) < cum {
                    idx = i;
                    break;
                }
            }
            let spec = &self.structs[idx];
            let bytes = spec.kib << 10;
            let base = bases[idx];
            let cursor = &mut cursors[idx];
            let addr = match spec.kind {
                AccessKind::Stream => {
                    let a = base + (*cursor * 64) % bytes;
                    *cursor += 1;
                    a
                }
                AccessKind::Strided(stride) => {
                    let s = stride.unsigned_abs().max(64);
                    let a = base + (*cursor * s) % bytes;
                    *cursor += 1;
                    a
                }
                AccessKind::Random | AccessKind::PointerChase => {
                    let r = splitmix64(&mut rngs[idx]);
                    base + (r % (bytes / 64)) * 64
                }
            };
            let is_write = (splitmix64(&mut rngs[idx]) % 100) < spec.write_pct as u64;
            if is_write {
                sink.store(addr);
            } else if spec.kind == AccessKind::PointerChase {
                sink.load_dep(addr);
            } else {
                sink.load(addr);
            }
            sink.compute(self.compute_per_access);
            acc += 1;
        }

        for (spec, base) in self.structs.iter().zip(&bases) {
            let atom = sink.create_atom(spec.name, AtomAttributes::default());
            sink.deactivate(atom);
            sink.unmap(*base, spec.kib << 10);
        }
    }

    /// Total footprint of the mix in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.structs.iter().map(|s| s.kib << 10).sum()
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, HintEvent};
    use cpu_sim::trace::Op;

    #[test]
    fn twenty_seven_workloads() {
        assert_eq!(PlacementWorkload::all().len(), 27);
        let names: std::collections::HashSet<_> =
            PlacementWorkload::all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 27, "names must be unique");
    }

    #[test]
    fn by_name_finds_mcf() {
        let w = PlacementWorkload::by_name("mcf").unwrap();
        assert!(w.structs.iter().any(|s| s.kind == AccessKind::PointerChase));
        assert!(PlacementWorkload::by_name("nonexistent").is_none());
    }

    #[test]
    fn generate_produces_requested_accesses() {
        let mut w = PlacementWorkload::by_name("libquantum").unwrap();
        w.accesses = 5000;
        let mut sink = CollectSink::new();
        w.generate(&mut sink);
        assert_eq!(sink.memory_ops(), 5000);
    }

    #[test]
    fn every_structure_expressed_as_atom() {
        for mut w in PlacementWorkload::all() {
            w.accesses = 100;
            let mut sink = CollectSink::new();
            w.generate(&mut sink);
            assert_eq!(sink.atoms().len(), w.structs.len(), "{}", w.name);
            let maps = sink
                .events
                .iter()
                .filter(|e| matches!(e, HintEvent::Map { .. }))
                .count();
            assert_eq!(maps, w.structs.len(), "{}", w.name);
        }
    }

    #[test]
    fn pointer_chase_emits_dependent_loads() {
        let mut w = PlacementWorkload::by_name("mcf").unwrap();
        w.accesses = 2000;
        let mut sink = CollectSink::new();
        w.generate(&mut sink);
        let dep_loads = sink
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Load { dep: true, .. }))
            .count();
        assert!(dep_loads > 200, "only {dep_loads} dependent loads");
    }

    #[test]
    fn stream_structures_access_sequentially() {
        let mut w = PlacementWorkload::by_name("libquantum").unwrap();
        w.accesses = 1000;
        let mut sink = CollectSink::new();
        w.generate(&mut sink);
        // The dominant structure's accesses are line-sequential: collect
        // loads into its range and check deltas.
        let base = match sink.events[0] {
            HintEvent::Alloc { base, .. } => base,
            _ => panic!("expected alloc event"),
        };
        let addrs: Vec<u64> = sink
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Load { addr, .. } | Op::Store { addr }
                    if *addr >= base && *addr < base + (8192 << 10) =>
                {
                    Some(*addr)
                }
                _ => None,
            })
            .collect();
        assert!(addrs.len() > 500);
        let sequential = addrs.windows(2).filter(|w| w[1] == w[0] + 64).count();
        assert!(
            sequential as f64 > addrs.len() as f64 * 0.9,
            "{} of {} sequential",
            sequential,
            addrs.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut w = PlacementWorkload::by_name("soplex").unwrap();
        w.accesses = 3000;
        let run = || {
            let mut sink = CollectSink::new();
            w.generate(&mut sink);
            sink.ops
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_fractions_roughly_respected() {
        let mut w = PlacementWorkload::by_name("histo").unwrap();
        w.accesses = 20_000;
        let mut sink = CollectSink::new();
        w.generate(&mut sink);
        let stores = sink
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Store { .. }))
            .count() as f64;
        let total = sink.memory_ops() as f64;
        // histo: bins (weight 6 of 15) at 80% writes → ~32% overall.
        let frac = stores / total;
        assert!((0.15..0.5).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn footprints_exceed_l3() {
        // All mixes must be memory-intensive against a 1 MB L3.
        for w in PlacementWorkload::all() {
            assert!(
                w.footprint_bytes() > 2 << 20,
                "{} footprint too small",
                w.name
            );
        }
    }
}
