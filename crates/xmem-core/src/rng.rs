//! A tiny deterministic PRNG (SplitMix64) for seeded policies and tests.
//!
//! The build environment is offline, so the simulators cannot pull in the
//! `rand` crate; every randomized component (the §6.3 randomized frame
//! policy, the property tests) instead seeds one of these. SplitMix64 is
//! the standard 64-bit mixer from Steele et al., "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): one add and three
//! xor-shift-multiply rounds per draw, passes BigCrush, and is trivially
//! reproducible across platforms.

/// A 64-bit SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use xmem_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `percent / 100`.
    #[inline]
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
