//! Error types for the XMem system.

use crate::atom::AtomId;
use std::error::Error;
use std::fmt;

/// Errors returned by XMem operations.
///
/// Note that per the paper's design (§2.1), XMem is *hint-based*: a failed or
/// ignored hint never affects program correctness. These errors therefore
/// signal misuse of the library API (e.g. creating more atoms than the ID
/// space allows), not functional failures of the simulated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XMemError {
    /// The per-process atom ID space (256 atoms with 8-bit IDs) is exhausted.
    TooManyAtoms {
        /// The configured per-process limit.
        limit: usize,
    },
    /// An operation referenced an atom ID that was never created.
    UnknownAtom(AtomId),
    /// A mapping touched a virtual address with no physical translation.
    UnmappedVirtualAddress(u64),
    /// A physical address fell outside the configured physical memory.
    PhysicalAddressOutOfRange {
        /// The offending physical address.
        pa: u64,
        /// The configured physical memory size in bytes.
        phys_bytes: u64,
    },
    /// An atom-segment blob had a version this implementation cannot parse.
    ///
    /// Per §3.5.2, unknown *newer* formats are ignorable (hints only); this
    /// error carries the version so callers can decide to skip.
    UnsupportedSegmentVersion {
        /// Version found in the blob.
        found: u32,
        /// Highest version this implementation understands.
        supported: u32,
    },
    /// An atom-segment blob failed to deserialize.
    MalformedSegment(String),
}

impl fmt::Display for XMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XMemError::TooManyAtoms { limit } => {
                write!(f, "per-process atom limit of {limit} exceeded")
            }
            XMemError::UnknownAtom(id) => write!(f, "unknown {id}"),
            XMemError::UnmappedVirtualAddress(va) => {
                write!(f, "virtual address {va:#x} has no physical mapping")
            }
            XMemError::PhysicalAddressOutOfRange { pa, phys_bytes } => write!(
                f,
                "physical address {pa:#x} outside configured memory of {phys_bytes} bytes"
            ),
            XMemError::UnsupportedSegmentVersion { found, supported } => write!(
                f,
                "atom segment version {found} newer than supported version {supported}"
            ),
            XMemError::MalformedSegment(msg) => write!(f, "malformed atom segment: {msg}"),
        }
    }
}

impl Error for XMemError {}

/// Convenience alias for results of XMem operations.
pub type Result<T> = std::result::Result<T, XMemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            XMemError::TooManyAtoms { limit: 256 }.to_string(),
            "per-process atom limit of 256 exceeded"
        );
        assert_eq!(
            XMemError::UnknownAtom(AtomId::new(5)).to_string(),
            "unknown atom#5"
        );
        assert!(XMemError::UnmappedVirtualAddress(0x1000)
            .to_string()
            .contains("0x1000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XMemError>();
    }
}
