//! Atom Status Table (AST) — §4.2(2) of the paper.
//!
//! A per-process bitmap recording whether each atom is active. Because
//! `CreateAtom` assigns atom IDs consecutively from 0, the table is indexed
//! directly by atom ID. With 256 atoms per application the AST is 32 bytes.

use crate::atom::AtomId;

/// Per-process active/inactive bitmap for atoms.
///
/// # Examples
///
/// ```
/// use xmem_core::ast::AtomStatusTable;
/// use xmem_core::atom::AtomId;
///
/// let mut ast = AtomStatusTable::new();
/// let id = AtomId::new(3);
/// assert!(!ast.is_active(id));
/// ast.activate(id);
/// assert!(ast.is_active(id));
/// ast.deactivate(id);
/// assert!(!ast.is_active(id));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomStatusTable {
    /// 256 bits = 4 × u64 words (32 bytes, matching §4.4(1)).
    bits: [u64; AtomId::MAX_ATOMS / 64],
}

impl Default for AtomStatusTable {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomStatusTable {
    /// Creates a table with every atom inactive.
    pub fn new() -> Self {
        AtomStatusTable {
            bits: [0; AtomId::MAX_ATOMS / 64],
        }
    }

    /// Marks `id` active.
    #[inline]
    pub fn activate(&mut self, id: AtomId) {
        self.bits[id.index() / 64] |= 1u64 << (id.index() % 64);
    }

    /// Marks `id` inactive.
    #[inline]
    pub fn deactivate(&mut self, id: AtomId) {
        self.bits[id.index() / 64] &= !(1u64 << (id.index() % 64));
    }

    /// Returns whether `id` is active.
    #[inline]
    pub fn is_active(&self, id: AtomId) -> bool {
        self.bits[id.index() / 64] >> (id.index() % 64) & 1 == 1
    }

    /// Iterates over the IDs of all active atoms in ascending order.
    pub fn active_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        (0..AtomId::MAX_ATOMS as u16)
            .map(|i| AtomId::new(i as u8))
            .filter(move |id| self.is_active(*id))
    }

    /// Number of active atoms.
    pub fn active_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Deactivates every atom (used on process teardown).
    pub fn clear(&mut self) {
        self.bits = [0; AtomId::MAX_ATOMS / 64];
    }

    /// Storage size of this table in bytes (32 B in the paper).
    pub const fn storage_bytes() -> u64 {
        (AtomId::MAX_ATOMS / 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper() {
        // §4.4(1): "the AST is only 32B per application".
        assert_eq!(AtomStatusTable::storage_bytes(), 32);
    }

    #[test]
    fn activate_deactivate_all_ids() {
        let mut ast = AtomStatusTable::new();
        for raw in 0..=255u8 {
            let id = AtomId::new(raw);
            assert!(!ast.is_active(id));
            ast.activate(id);
            assert!(ast.is_active(id));
        }
        assert_eq!(ast.active_count(), 256);
        for raw in 0..=255u8 {
            ast.deactivate(AtomId::new(raw));
        }
        assert_eq!(ast.active_count(), 0);
    }

    #[test]
    fn activate_is_idempotent() {
        let mut ast = AtomStatusTable::new();
        ast.activate(AtomId::new(63));
        ast.activate(AtomId::new(63));
        assert_eq!(ast.active_count(), 1);
        ast.deactivate(AtomId::new(63));
        ast.deactivate(AtomId::new(63));
        assert_eq!(ast.active_count(), 0);
    }

    #[test]
    fn active_atoms_in_order() {
        let mut ast = AtomStatusTable::new();
        for raw in [5u8, 1, 200, 64] {
            ast.activate(AtomId::new(raw));
        }
        let ids: Vec<u8> = ast.active_atoms().map(|a| a.raw()).collect();
        assert_eq!(ids, vec![1, 5, 64, 200]);
    }

    #[test]
    fn clear_resets() {
        let mut ast = AtomStatusTable::new();
        ast.activate(AtomId::new(0));
        ast.activate(AtomId::new(255));
        ast.clear();
        assert_eq!(ast.active_count(), 0);
    }
}
