//! A flat sorted-vector map for hot simulator lookup paths.
//!
//! The determinism rules (DESIGN.md, enforced by simlint) ban hash maps
//! from sim-state structs because their iteration order varies run to run.
//! `BTreeMap` satisfies the rules but costs pointer-chasing on every
//! lookup, which shows up directly in the per-access simulation loop
//! (page-table translate, TLB probe). [`FlatMap`] is the replacement for
//! *small or scan-friendly* hot maps: two parallel vectors sorted by key,
//! binary-search lookups, and — the property the determinism argument
//! rests on — iteration in strictly ascending key order, exactly like the
//! `BTreeMap` it replaces. Any tie-breaking scan written against the old
//! map (e.g. the TLB's LRU victim search) sees the same candidate order
//! and picks the same victim.
//!
//! Inserts shift the tail (`O(n)`), so this is *not* a general-purpose
//! map: it fits tables that are probed far more often than they grow
//! (page tables fill mostly in ascending VPN order, making inserts an
//! amortized push), and small fixed-capacity structures (a 64-entry TLB).

/// A map from `K` to `V` stored as two parallel key-sorted vectors.
///
/// # Examples
///
/// ```
/// use xmem_core::flatmap::FlatMap;
///
/// let mut m = FlatMap::new();
/// m.insert(5u64, "five");
/// m.insert(1, "one");
/// assert_eq!(m.get(&5), Some(&"five"));
/// // Iteration is in ascending key order, like BTreeMap.
/// let keys: Vec<u64> = m.iter().map(|(&k, _)| k).collect();
/// assert_eq!(keys, vec![1, 5]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatMap<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K: Ord, V> FlatMap<K, V> {
    /// An empty map.
    pub const fn new() -> Self {
        FlatMap {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty map with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        FlatMap {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.keys.binary_search(key) {
            Ok(i) => Some(&self.vals[i]),
            Err(_) => None,
        }
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.keys.binary_search(key) {
            Ok(i) => Some(&mut self.vals[i]),
            Err(_) => None,
        }
    }

    /// `true` when `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    /// Inserts `key → val`, returning the previous value if the key was
    /// present. Ascending-key inserts append in `O(1)`; out-of-order
    /// inserts shift the tail.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        match self.keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.vals[i], val)),
            Err(i) => {
                self.keys.insert(i, key);
                self.vals.insert(i, val);
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.keys.binary_search(key) {
            Ok(i) => {
                self.keys.remove(i);
                Some(self.vals.remove(i))
            }
            Err(_) => None,
        }
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.vals.iter())
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.keys.iter()
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.vals.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove() {
        let mut m = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3u64, 30), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(3, 33), Some(30));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&2), None);
        *m.get_mut(&1).unwrap() += 1;
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.contains_key(&3) && !m.contains_key(&1));
    }

    #[test]
    fn matches_btreemap_under_random_workload() {
        // The determinism argument: FlatMap must behave observably like
        // the BTreeMap it replaces, including iteration order.
        let mut rng = SplitMix64::new(0xF1A7);
        let mut flat = FlatMap::new();
        let mut btree = BTreeMap::new();
        for _ in 0..2000 {
            let k = rng.below(64);
            match rng.below(3) {
                0 => {
                    assert_eq!(flat.insert(k, k * 7), btree.insert(k, k * 7));
                }
                1 => {
                    assert_eq!(flat.remove(&k), btree.remove(&k));
                }
                _ => {
                    assert_eq!(flat.get(&k), btree.get(&k));
                }
            }
            assert_eq!(flat.len(), btree.len());
        }
        let f: Vec<(u64, u64)> = flat.iter().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = btree.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(f, b, "iteration order must match BTreeMap");
    }

    #[test]
    fn min_scan_tie_break_matches_btreemap() {
        // The TLB victim scan relies on ascending-key order to break
        // stamp ties; verify both maps agree when values collide.
        let pairs = [(9u64, 5u64), (2, 5), (7, 1), (4, 1)];
        let mut flat = FlatMap::new();
        let mut btree = BTreeMap::new();
        for (k, v) in pairs {
            flat.insert(k, v);
            btree.insert(k, v);
        }
        let fv = flat.iter().min_by_key(|(_, &v)| v).map(|(&k, _)| k);
        let bv = btree.iter().min_by_key(|(_, &v)| v).map(|(&k, _)| k);
        assert_eq!(fv, bv);
        assert_eq!(fv, Some(4));
    }
}
