//! Atom Management Unit (AMU) — §4.2(4) of the paper.
//!
//! The AMU is the hardware unit that (i) manages the
//! [AAM](crate::aam::AtomAddressMap) and [AST](crate::ast::AtomStatusTable)
//! in response to XMem ISA instructions and (ii) serves `ATOM_LOOKUP`
//! requests from other hardware components, caching results in an
//! [ALB](crate::alb::AtomLookasideBuffer).
//!
//! For `ATOM_MAP`, the AMU asks the MMU (the [`Mmu`] trait here) to translate
//! the virtual ranges to physical ranges page by page, then updates the AAM.
//! Higher-dimensional (2D/3D) mappings are linearized by the AMU at AAM
//! granularity and the resulting physical extents are recorded so that
//! components needing accurate extent information (the XMem prefetcher and
//! the cache pinning logic of §5) can retrieve them.

use crate::aam::{AamConfig, AtomAddressMap};
use crate::addr::{PhysAddr, VaRange, VirtAddr};
use crate::alb::{AlbStats, AtomLookasideBuffer};
use crate::ast::AtomStatusTable;
use crate::atom::AtomId;
use crate::error::{Result, XMemError};
use crate::isa::XmemInst;

/// Virtual→physical translation service (implemented by the OS page table in
/// `os-sim`, or [`IdentityMmu`] for flat-memory tests).
pub trait Mmu {
    /// Translates a virtual address, or `None` if unmapped.
    fn translate(&self, va: VirtAddr) -> Option<PhysAddr>;

    /// The page size translations are valid within.
    fn page_size(&self) -> u64;
}

/// An MMU where physical = virtual (for unit tests and single-address-space
/// experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMmu {
    page_size: u64,
}

impl IdentityMmu {
    /// Creates an identity MMU with 4 KB pages.
    pub fn new() -> Self {
        IdentityMmu { page_size: 4096 }
    }
}

impl Mmu for IdentityMmu {
    fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        Some(PhysAddr::new(va.raw()))
    }

    fn page_size(&self) -> u64 {
        if self.page_size == 0 {
            4096
        } else {
            self.page_size
        }
    }
}

/// A contiguous physical extent an atom is mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaExtent {
    /// Start physical address (aligned down to AAM granularity).
    pub start: PhysAddr,
    /// Length in bytes (multiple of AAM granularity).
    pub len: u64,
}

/// Configuration of the AMU (geometry of the tables it manages).
#[derive(Debug, Clone, Copy)]
pub struct AmuConfig {
    /// AAM geometry.
    pub aam: AamConfig,
    /// ALB entries (256 in the paper).
    pub alb_entries: usize,
    /// Page size (4 KB).
    pub page_size: u64,
}

impl Default for AmuConfig {
    fn default() -> Self {
        AmuConfig {
            aam: AamConfig::default(),
            alb_entries: 256,
            page_size: 4096,
        }
    }
}

/// The Atom Management Unit.
///
/// # Examples
///
/// ```
/// use xmem_core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
/// use xmem_core::aam::AamConfig;
/// use xmem_core::addr::{PhysAddr, VaRange, VirtAddr};
/// use xmem_core::atom::AtomId;
/// use xmem_core::isa::XmemInst;
///
/// let mut amu = AtomManagementUnit::new(AmuConfig {
///     aam: AamConfig { phys_bytes: 1 << 20, ..Default::default() },
///     ..Default::default()
/// });
/// let mmu = IdentityMmu::new();
/// let a = AtomId::new(0);
/// amu.execute(
///     &XmemInst::Map { atom: a, range: VaRange::new(VirtAddr::new(0x1000), 0x1000) },
///     &mmu,
/// )?;
/// amu.execute(&XmemInst::Activate(a), &mmu)?;
/// assert_eq!(amu.active_atom_at(PhysAddr::new(0x1800)), Some(a));
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug)]
pub struct AtomManagementUnit {
    aam: AtomAddressMap,
    ast: AtomStatusTable,
    alb: AtomLookasideBuffer,
    page_size: u64,
    /// Recorded physical extents per atom (the "broadcast" of §4.2(4)).
    extents: Vec<Vec<PaExtent>>,
    /// Bumped whenever the active-atom set or a mapping changes; consumers
    /// (e.g. the cache pinning logic) re-evaluate when they observe a new
    /// epoch.
    epoch: u64,
    /// ALB entries invalidated by mapping changes (one per page touched);
    /// a telemetry counter for remap churn.
    alb_invalidations: u64,
}

impl AtomManagementUnit {
    /// Creates an AMU with empty tables.
    pub fn new(config: AmuConfig) -> Self {
        AtomManagementUnit {
            aam: AtomAddressMap::new(config.aam),
            ast: AtomStatusTable::new(),
            alb: AtomLookasideBuffer::new(config.alb_entries, config.page_size),
            page_size: config.page_size,
            extents: vec![Vec::new(); AtomId::MAX_ATOMS],
            epoch: 0,
            alb_invalidations: 0,
        }
    }

    /// The current change epoch (see struct docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Executes one XMem ISA instruction.
    ///
    /// # Errors
    ///
    /// Propagates translation failures ([`XMemError::UnmappedVirtualAddress`])
    /// and AAM range errors.
    pub fn execute(&mut self, inst: &XmemInst, mmu: &dyn Mmu) -> Result<()> {
        match *inst {
            XmemInst::Map { atom, range } => self.map_linear(atom, range, mmu),
            XmemInst::Unmap { range } => self.unmap_linear(range, mmu),
            XmemInst::Map2d {
                atom,
                base,
                size_x,
                size_y,
                len_x,
            } => {
                for row in Self::rows_2d(base, size_x, size_y, len_x) {
                    self.map_linear(atom, row, mmu)?;
                }
                Ok(())
            }
            XmemInst::Unmap2d {
                base,
                size_x,
                size_y,
                len_x,
            } => {
                for row in Self::rows_2d(base, size_x, size_y, len_x) {
                    self.unmap_linear(row, mmu)?;
                }
                Ok(())
            }
            XmemInst::Map3d {
                atom,
                base,
                size_x,
                size_y,
                size_z,
                len_x,
                len_y,
            } => {
                for z in 0..size_z {
                    let plane = base + z * len_x * len_y;
                    for row in Self::rows_2d(plane, size_x, size_y, len_x) {
                        self.map_linear(atom, row, mmu)?;
                    }
                }
                Ok(())
            }
            XmemInst::Activate(atom) => {
                self.ast.activate(atom);
                self.epoch += 1;
                Ok(())
            }
            XmemInst::Deactivate(atom) => {
                self.ast.deactivate(atom);
                self.epoch += 1;
                Ok(())
            }
        }
    }

    /// The rows of a 2D block as linear VA ranges.
    fn rows_2d(
        base: VirtAddr,
        size_x: u64,
        size_y: u64,
        len_x: u64,
    ) -> impl Iterator<Item = VaRange> {
        (0..size_y).map(move |y| VaRange::new(base + y * len_x, size_x))
    }

    /// Maps a linear VA range, translating page by page.
    fn map_linear(&mut self, atom: AtomId, range: VaRange, mmu: &dyn Mmu) -> Result<()> {
        self.for_each_pa_run(range, mmu, |this, pa, len| {
            this.aam.map_range(pa, len, atom)?;
            this.invalidate_alb_range(pa, len);
            // Mapping replaces any previous owner (many-to-one invariant):
            // trim every atom's recorded extents over this range first.
            this.remove_extent_all(pa, len);
            this.record_extent(atom, pa, len);
            Ok(())
        })?;
        self.epoch += 1;
        Ok(())
    }

    /// Invalidates every ALB entry whose page overlaps `[pa, pa+len)`.
    fn invalidate_alb_range(&mut self, pa: PhysAddr, len: u64) {
        let first = pa.align_down(self.page_size);
        let mut page = first;
        let end = pa.raw() + len;
        while page.raw() < end {
            self.alb.invalidate_page(page);
            self.alb_invalidations += 1;
            page += self.page_size;
        }
    }

    /// Trims `[pa, pa+len)` from every atom's extent record.
    fn remove_extent_all(&mut self, pa: PhysAddr, len: u64) {
        for idx in 0..self.extents.len() {
            if !self.extents[idx].is_empty() {
                self.remove_extent(AtomId::new(idx as u8), pa, len);
            }
        }
    }

    /// Unmaps a linear VA range.
    fn unmap_linear(&mut self, range: VaRange, mmu: &dyn Mmu) -> Result<()> {
        self.for_each_pa_run(range, mmu, |this, pa, len| {
            // Multiple atoms may own pieces of the run: trim them all.
            this.remove_extent_all(pa, len);
            this.aam.unmap_range(pa, len)?;
            this.invalidate_alb_range(pa, len);
            Ok(())
        })?;
        self.epoch += 1;
        Ok(())
    }

    /// Invokes `f(pa, len)` for each physically contiguous run of the VA
    /// range (split at page boundaries, merged when frames are contiguous).
    fn for_each_pa_run(
        &mut self,
        range: VaRange,
        mmu: &dyn Mmu,
        mut f: impl FnMut(&mut Self, PhysAddr, u64) -> Result<()>,
    ) -> Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        let page = self.page_size;
        let mut va = range.start();
        let end = range.end();
        let mut run_start: Option<PhysAddr> = None;
        let mut run_len = 0u64;
        while va < end {
            let pa = mmu
                .translate(va)
                .ok_or(XMemError::UnmappedVirtualAddress(va.raw()))?;
            let in_page = page - va.page_offset(page);
            let chunk = in_page.min(end - va);
            match run_start {
                Some(start) if start.raw() + run_len == pa.raw() => {
                    run_len += chunk;
                }
                Some(start) => {
                    f(self, start, run_len)?;
                    run_start = Some(pa);
                    run_len = chunk;
                    let _ = start;
                }
                None => {
                    run_start = Some(pa);
                    run_len = chunk;
                }
            }
            va += chunk;
        }
        if let Some(start) = run_start {
            f(self, start, run_len)?;
        }
        Ok(())
    }

    fn record_extent(&mut self, atom: AtomId, pa: PhysAddr, len: u64) {
        let gran = self.aam.config().granularity;
        let start = pa.align_down(gran);
        let len = (pa.raw() + len).next_multiple_of(gran) - start.raw();
        let list = &mut self.extents[atom.index()];
        // Merge with the previous extent when contiguous (common case:
        // sequential rows of a tile land in contiguous frames).
        if let Some(last) = list.last_mut() {
            if last.start.raw() + last.len == start.raw() {
                last.len += len;
                return;
            }
        }
        list.push(PaExtent { start, len });
    }

    fn remove_extent(&mut self, atom: AtomId, pa: PhysAddr, len: u64) {
        let gran = self.aam.config().granularity;
        let start = pa.align_down(gran).raw();
        let end = (pa.raw() + len).next_multiple_of(gran);
        let list = &mut self.extents[atom.index()];
        let mut result = Vec::with_capacity(list.len());
        for e in list.drain(..) {
            let e_start = e.start.raw();
            let e_end = e_start + e.len;
            if e_end <= start || e_start >= end {
                result.push(e);
                continue;
            }
            if e_start < start {
                result.push(PaExtent {
                    start: PhysAddr::new(e_start),
                    len: start - e_start,
                });
            }
            if e_end > end {
                result.push(PaExtent {
                    start: PhysAddr::new(end),
                    len: e_end - end,
                });
            }
        }
        *list = result;
    }

    /// Serves an `ATOM_LOOKUP`: the atom mapped at `pa` *if it is active*.
    ///
    /// This is the query interface used by caches, prefetchers, and memory
    /// controllers (step ④ in Figure 1 of the paper). Inactive atoms are
    /// invisible, per the activation invariant of §3.2.
    #[inline]
    pub fn active_atom_at(&mut self, pa: PhysAddr) -> Option<AtomId> {
        let atom = self.alb.lookup(pa, &self.aam)?;
        self.ast.is_active(atom).then_some(atom)
    }

    /// Like [`Self::active_atom_at`] but bypassing the ALB (no stats impact);
    /// used by software (OS) queries where ALB modelling is irrelevant.
    pub fn active_atom_at_uncached(&self, pa: PhysAddr) -> Option<AtomId> {
        let atom = self.aam.lookup(pa)?;
        self.ast.is_active(atom).then_some(atom)
    }

    /// The atom mapped at `pa` regardless of active state.
    pub fn atom_at_uncached(&self, pa: PhysAddr) -> Option<AtomId> {
        self.aam.lookup(pa)
    }

    /// Whether `atom` is currently active.
    pub fn is_active(&self, atom: AtomId) -> bool {
        self.ast.is_active(atom)
    }

    /// IDs of all currently active atoms.
    pub fn active_atoms(&self) -> Vec<AtomId> {
        self.ast.active_atoms().collect()
    }

    /// Total bytes of physical memory currently mapped to `atom` — the
    /// system's view of the atom's working-set size (§3.3(3)).
    pub fn mapped_bytes(&self, atom: AtomId) -> u64 {
        self.extents[atom.index()].iter().map(|e| e.len).sum()
    }

    /// The recorded physical extents of `atom` (used by the XMem prefetcher
    /// and pinning logic, which need accurate extent information).
    pub fn extents(&self, atom: AtomId) -> &[PaExtent] {
        &self.extents[atom.index()]
    }

    /// ALB statistics (for the §4.2 coverage measurement).
    pub fn alb_stats(&self) -> AlbStats {
        self.alb.stats()
    }

    /// ALB entries invalidated by mapping changes so far (one count per
    /// page invalidated; context-switch flushes are not included).
    pub fn alb_invalidations(&self) -> u64 {
        self.alb_invalidations
    }

    /// Flushes the ALB, as required on a context switch (§4.4(4)).
    pub fn flush_alb(&mut self) {
        self.alb.flush();
    }

    /// Read access to the AAM (e.g. for storage accounting).
    pub fn aam(&self) -> &AtomAddressMap {
        &self.aam
    }

    /// Read access to the AST.
    pub fn ast(&self) -> &AtomStatusTable {
        &self.ast
    }

    /// Clears all mappings and statuses (process teardown).
    pub fn clear(&mut self) {
        let cfg = *self.aam.config();
        self.aam = AtomAddressMap::new(cfg);
        self.ast.clear();
        self.alb.flush();
        for list in &mut self.extents {
            list.clear();
        }
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_amu() -> AtomManagementUnit {
        AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: 1 << 20,
                granularity: 512,
                id_bits: 8,
            },
            alb_entries: 8,
            page_size: 4096,
        })
    }

    #[test]
    fn map_activate_lookup() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(1);
        amu.execute(
            &XmemInst::Map {
                atom: a,
                range: VaRange::new(VirtAddr::new(0x2000), 0x1000),
            },
            &mmu,
        )
        .unwrap();
        // Inactive atoms are invisible.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x2800)), None);
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x2800)), Some(a));
        amu.execute(&XmemInst::Deactivate(a), &mmu).unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x2800)), None);
    }

    #[test]
    fn unmap_clears() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(2);
        amu.execute(
            &XmemInst::Map {
                atom: a,
                range: VaRange::new(VirtAddr::new(0), 0x2000),
            },
            &mmu,
        )
        .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        amu.execute(
            &XmemInst::Unmap {
                range: VaRange::new(VirtAddr::new(0), 0x1000),
            },
            &mmu,
        )
        .unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x800)), None);
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x1800)), Some(a));
        assert_eq!(amu.mapped_bytes(a), 0x1000);
    }

    #[test]
    fn map_2d_covers_rows_only() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(3);
        // A 512-byte-wide, 2-row tile in a structure with 8 KB rows.
        amu.execute(
            &XmemInst::Map2d {
                atom: a,
                base: VirtAddr::new(0x10000),
                size_x: 512,
                size_y: 2,
                len_x: 8192,
            },
            &mmu,
        )
        .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x10000)), Some(a));
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x10000 + 8192)), Some(a));
        // Middle of the row, outside the tile width: unmapped.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x10000 + 4096)), None);
        assert_eq!(amu.mapped_bytes(a), 1024);
    }

    #[test]
    fn map_3d_covers_planes() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(4);
        amu.execute(
            &XmemInst::Map3d {
                atom: a,
                base: VirtAddr::new(0x40000),
                size_x: 512,
                size_y: 2,
                size_z: 2,
                len_x: 4096,
                len_y: 4,
            },
            &mmu,
        )
        .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        // Plane 1 starts at base + len_x * len_y = 0x40000 + 16384.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x40000 + 16384)), Some(a));
        assert_eq!(amu.mapped_bytes(a), 4 * 512);
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let e0 = amu.epoch();
        amu.execute(&XmemInst::Activate(AtomId::new(0)), &mmu)
            .unwrap();
        assert!(amu.epoch() > e0);
        let e1 = amu.epoch();
        amu.execute(
            &XmemInst::Map {
                atom: AtomId::new(0),
                range: VaRange::new(VirtAddr::new(0), 512),
            },
            &mmu,
        )
        .unwrap();
        assert!(amu.epoch() > e1);
    }

    #[test]
    fn extents_merge_contiguous() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(5);
        for i in 0..4u64 {
            amu.execute(
                &XmemInst::Map {
                    atom: a,
                    range: VaRange::new(VirtAddr::new(i * 512), 512),
                },
                &mmu,
            )
            .unwrap();
        }
        assert_eq!(amu.extents(a).len(), 1);
        assert_eq!(amu.extents(a)[0].len, 2048);
    }

    #[test]
    fn remap_moves_atom() {
        // Remapping data to a new atom (phase change, §3.2) replaces the old.
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let (a, b) = (AtomId::new(1), AtomId::new(2));
        let r = VaRange::new(VirtAddr::new(0x3000), 0x1000);
        amu.execute(&XmemInst::Map { atom: a, range: r }, &mmu)
            .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        amu.execute(&XmemInst::Activate(b), &mmu).unwrap();
        amu.execute(&XmemInst::Map { atom: b, range: r }, &mmu)
            .unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x3000)), Some(b));
    }

    #[test]
    fn unmapped_va_is_error() {
        struct NoMmu;
        impl Mmu for NoMmu {
            fn translate(&self, _va: VirtAddr) -> Option<PhysAddr> {
                None
            }
            fn page_size(&self) -> u64 {
                4096
            }
        }
        let mut amu = small_amu();
        let err = amu
            .execute(
                &XmemInst::Map {
                    atom: AtomId::new(0),
                    range: VaRange::new(VirtAddr::new(0x1000), 8),
                },
                &NoMmu,
            )
            .unwrap_err();
        assert!(matches!(err, XMemError::UnmappedVirtualAddress(0x1000)));
    }

    #[test]
    fn alb_invalidated_across_whole_unmapped_run() {
        // Regression: a multi-page unmap must invalidate the ALB entry of
        // *every* covered page, not just the first one of the merged run.
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(1);
        let range = VaRange::new(VirtAddr::new(0x10_000), 64 << 10);
        amu.execute(&XmemInst::Map { atom: a, range }, &mmu)
            .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        // Warm the ALB with a page in the *middle* of the range.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x18_000)), Some(a));
        amu.execute(&XmemInst::Unmap { range }, &mmu).unwrap();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x18_000)), None);
        assert_eq!(amu.mapped_bytes(a), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut amu = small_amu();
        let mmu = IdentityMmu::new();
        let a = AtomId::new(1);
        amu.execute(
            &XmemInst::Map {
                atom: a,
                range: VaRange::new(VirtAddr::new(0), 4096),
            },
            &mmu,
        )
        .unwrap();
        amu.execute(&XmemInst::Activate(a), &mmu).unwrap();
        amu.clear();
        assert_eq!(amu.active_atom_at(PhysAddr::new(0)), None);
        assert_eq!(amu.mapped_bytes(a), 0);
        assert!(!amu.is_active(a));
    }
}
