//! Global Attribute Table (GAT) — §4.2(3) of the paper.
//!
//! The GAT is the OS-managed, kernel-space table holding the immutable
//! attributes of every atom in an application. It is filled at program load
//! time from the binary's atom segment (see [`crate::segment`]) and read by
//! the hardware [attribute translator](crate::translate) to build the
//! per-component private attribute tables.

use crate::atom::{AtomId, StaticAtom};
use crate::attrs::AtomAttributes;
use crate::error::{Result, XMemError};

/// The OS-managed table of atom attributes for one process.
///
/// # Examples
///
/// ```
/// use xmem_core::gat::GlobalAttributeTable;
/// use xmem_core::atom::{AtomId, StaticAtom};
/// use xmem_core::attrs::AtomAttributes;
///
/// let mut gat = GlobalAttributeTable::new();
/// gat.insert(StaticAtom::new(AtomId::new(0), "A", AtomAttributes::default()))?;
/// assert!(gat.attrs(AtomId::new(0)).is_some());
/// assert!(gat.attrs(AtomId::new(1)).is_none());
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalAttributeTable {
    entries: Vec<Option<StaticAtom>>,
}

impl GlobalAttributeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GlobalAttributeTable {
            entries: Vec::new(),
        }
    }

    /// Inserts (or replaces) the record for an atom.
    ///
    /// # Errors
    ///
    /// Returns [`XMemError::TooManyAtoms`] if the ID exceeds the 8-bit atom
    /// ID space (cannot actually happen through [`AtomId`], kept for
    /// robustness against future wider IDs).
    pub fn insert(&mut self, atom: StaticAtom) -> Result<()> {
        let idx = atom.id().index();
        if idx >= AtomId::MAX_ATOMS {
            return Err(XMemError::TooManyAtoms {
                limit: AtomId::MAX_ATOMS,
            });
        }
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx] = Some(atom);
        Ok(())
    }

    /// The attributes of `id`, if the atom exists.
    pub fn attrs(&self, id: AtomId) -> Option<&AtomAttributes> {
        self.entries
            .get(id.index())
            .and_then(|e| e.as_ref())
            .map(|a| a.attrs())
    }

    /// The full static record of `id`, if the atom exists.
    pub fn atom(&self, id: AtomId) -> Option<&StaticAtom> {
        self.entries.get(id.index()).and_then(|e| e.as_ref())
    }

    /// Iterates over all atoms in ID order.
    pub fn iter(&self) -> impl Iterator<Item = &StaticAtom> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// Number of atoms in the table.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns `true` if no atoms are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bytes, using the paper's 19 B/atom encoding
    /// (§4.4(1): "each GAT needs only 2.8KB assuming 256 atoms").
    pub fn storage_bytes(&self) -> u64 {
        self.len() as u64 * AtomAttributes::ENCODED_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Reuse;

    fn atom(id: u8) -> StaticAtom {
        StaticAtom::new(
            AtomId::new(id),
            format!("a{id}"),
            AtomAttributes::builder().reuse(Reuse(id)).build(),
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut gat = GlobalAttributeTable::new();
        gat.insert(atom(0)).unwrap();
        gat.insert(atom(5)).unwrap();
        assert_eq!(gat.attrs(AtomId::new(0)).unwrap().reuse(), Reuse(0));
        assert_eq!(gat.attrs(AtomId::new(5)).unwrap().reuse(), Reuse(5));
        assert!(gat.attrs(AtomId::new(3)).is_none());
        assert_eq!(gat.len(), 2);
        assert!(!gat.is_empty());
    }

    #[test]
    fn replace_keeps_len() {
        let mut gat = GlobalAttributeTable::new();
        gat.insert(atom(1)).unwrap();
        gat.insert(atom(1)).unwrap();
        assert_eq!(gat.len(), 1);
    }

    #[test]
    fn storage_matches_paper_at_256_atoms() {
        let mut gat = GlobalAttributeTable::new();
        for i in 0..=255u8 {
            gat.insert(atom(i)).unwrap();
        }
        // 256 atoms * 19 B = 4864 B ≈ 4.8 KB... the paper says 2.8 KB for
        // "256 atoms"; 19 B * 150 ≈ 2.8 KB. We reproduce the arithmetic the
        // text actually gives (19 B per atom) and note the discrepancy in
        // EXPERIMENTS.md. The invariant we test: linear in atom count.
        assert_eq!(gat.storage_bytes(), 256 * 19);
    }

    #[test]
    fn iter_in_id_order() {
        let mut gat = GlobalAttributeTable::new();
        gat.insert(atom(9)).unwrap();
        gat.insert(atom(2)).unwrap();
        let ids: Vec<u8> = gat.iter().map(|a| a.id().raw()).collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
