//! # xmem-core — Expressive Memory (XMem)
//!
//! A faithful reimplementation of the XMem cross-layer interface from
//! *"A Case for Richer Cross-Layer Abstractions: Bridging the Semantic Gap
//! with Expressive Memory"* (ISCA 2018).
//!
//! XMem lets an application express higher-level program semantics — what
//! its data structures are, how they are accessed, how much reuse they have —
//! through a new hardware/software abstraction called the **atom**. The
//! expressed semantics flow through well-defined tables to every system and
//! architectural component that optimizes memory performance:
//!
//! ```text
//!  application ──CreateAtom──▶ XMemLib ──compile──▶ AtomSegment (binary)
//!        │                                              │ load time
//!        │ AtomMap / AtomActivate (ISA insts)           ▼
//!        ▼                                      GAT (OS, kernel space)
//!  AMU: AAM + AST + ALB  ◀──ATOM_LOOKUP──┐              │ translator
//!        ▲                               │              ▼
//!  caches, prefetchers, memory controller┴──── per-component PATs
//! ```
//!
//! ## Quick start
//!
//! ```
//! use xmem_core::prelude::*;
//!
//! # fn main() -> xmem_core::error::Result<()> {
//! // 1. The application creates an atom describing a high-reuse tile.
//! let mut lib = XMemLib::new();
//! let tile = lib.create_atom(
//!     xmem_core::call_site!(),
//!     "tile",
//!     AtomAttributes::builder()
//!         .data_type(DataType::Float64)
//!         .access_pattern(AccessPattern::sequential(8))
//!         .reuse(Reuse(200))
//!         .build(),
//! )?;
//!
//! // 2. At runtime it maps the atom over the tile's address range and
//! //    activates it.
//! let mut amu = AtomManagementUnit::new(AmuConfig {
//!     aam: AamConfig { phys_bytes: 1 << 20, ..Default::default() },
//!     ..Default::default()
//! });
//! let mmu = IdentityMmu::new();
//! lib.atom_map(&mut amu, &mmu, tile, VirtAddr::new(0x10000), 64 * 1024)?;
//! lib.atom_activate(&mut amu, &mmu, tile)?;
//!
//! // 3. Any hardware component can now discover the semantics of an address.
//! assert_eq!(amu.active_atom_at(PhysAddr::new(0x12345)), Some(tile));
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`atom`] | §3.1–3.2 | [`AtomId`](atom::AtomId), invariants |
//! | [`attrs`] | §3.3 | the three attribute classes |
//! | [`xmemlib`] | §4.1.1, Table 2 | the application API |
//! | [`isa`] | §4.1.3 | `ATOM_MAP`/`ATOM_ACTIVATE` instructions |
//! | [`segment`] | §3.5.2 | the versioned atom segment |
//! | [`gat`], [`pat`], [`translate`] | §4.2(3) | attribute tables + translator |
//! | [`aam`], [`ast`], [`alb`], [`amu`] | §4.2(1,2,4) | the hardware tables |
//! | [`process`] | §4.3–4.4 | context switches |
//! | [`overhead`] | §4.4 | storage overhead arithmetic |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aam;
pub mod addr;
pub mod alb;
pub mod amu;
pub mod ast;
pub mod atom;
pub mod attrs;
pub mod error;
pub mod flatmap;
pub mod gat;
pub mod isa;
pub mod overhead;
pub mod pat;
pub mod process;
pub mod rng;
pub mod segment;
pub mod translate;
pub mod xmemlib;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::aam::{AamConfig, AtomAddressMap};
    pub use crate::addr::{PhysAddr, VaRange, VirtAddr};
    pub use crate::amu::{AmuConfig, AtomManagementUnit, IdentityMmu, Mmu};
    pub use crate::ast::AtomStatusTable;
    pub use crate::atom::{AtomId, AtomState, StaticAtom};
    pub use crate::attrs::{
        AccessIntensity, AccessPattern, AtomAttributes, DataProps, DataType, Reuse, RwChar,
    };
    pub use crate::error::XMemError;
    pub use crate::gat::GlobalAttributeTable;
    pub use crate::pat::Pat;
    pub use crate::segment::AtomSegment;
    pub use crate::translate::AttributeTranslator;
    pub use crate::xmemlib::{CallSite, XMemLib};
}
