//! Atom Address Map (AAM) — §4.2(1) of the paper.
//!
//! The AAM answers "which atom (if any) does this physical address belong
//! to?". To avoid a per-address table, the paper maps atoms at a configurable
//! *address range unit* granularity — by default 8 cache lines (512 B), so
//! each consecutive 512 B of physical memory maps to at most one atom. With
//! 8-bit atom IDs that is a 0.2% storage overhead; with 6-bit IDs at 1 KB
//! granularity it drops to 0.07%.
//!
//! The table is indexed directly by physical address (physical page index ×
//! units-per-page + unit-in-page), which is what makes the hardware lookup a
//! single array read.
//!
//! **Encoding note**: one atom-ID encoding must be reserved to mean "no
//! atom"; we reserve the all-ones ID (255 for 8-bit IDs). [`crate::xmemlib`]
//! therefore allocates at most 255 atoms per process.

use crate::addr::{addr_to_index, PhysAddr};
use crate::atom::AtomId;
use crate::error::{Result, XMemError};

/// Reserved "no atom" encoding in AAM entries.
const NO_ATOM: u8 = u8::MAX;

/// Configuration of the AAM geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AamConfig {
    /// Size of simulated physical memory, in bytes.
    pub phys_bytes: u64,
    /// Address range unit: the smallest granularity at which atoms map to
    /// physical memory. The paper's default is 512 B (8 cache lines).
    pub granularity: u64,
    /// Bits per stored atom ID (8 by default; 6 in the paper's low-overhead
    /// variant). Affects only the storage-overhead arithmetic — the simulator
    /// always stores a byte per unit.
    pub id_bits: u8,
}

impl Default for AamConfig {
    fn default() -> Self {
        AamConfig {
            // Scaled-down default physical memory for fast simulation. The
            // paper's example uses 8 GB; see `crate::overhead` for the
            // full-size arithmetic.
            phys_bytes: 1 << 30,
            granularity: 512,
            id_bits: 8,
        }
    }
}

impl AamConfig {
    /// Number of address range units covering physical memory.
    pub fn units(&self) -> u64 {
        self.phys_bytes.div_ceil(self.granularity)
    }

    /// Theoretical storage of the table in bytes (`units × id_bits / 8`).
    pub fn storage_bytes(&self) -> u64 {
        (self.units() * self.id_bits as u64).div_ceil(8)
    }

    /// Storage overhead as a fraction of physical memory.
    ///
    /// # Examples
    ///
    /// The paper's default (512 B units, 8-bit IDs) costs 0.2% of physical
    /// memory, and the 1 KB/6-bit variant costs about 0.07%:
    ///
    /// ```
    /// use xmem_core::aam::AamConfig;
    ///
    /// let default = AamConfig { phys_bytes: 8 << 30, granularity: 512, id_bits: 8 };
    /// assert!((default.overhead_fraction() - 0.002).abs() < 1e-4);
    ///
    /// let small = AamConfig { phys_bytes: 8 << 30, granularity: 1024, id_bits: 6 };
    /// assert!((small.overhead_fraction() - 0.00073).abs() < 1e-4);
    /// ```
    pub fn overhead_fraction(&self) -> f64 {
        self.storage_bytes() as f64 / self.phys_bytes as f64
    }
}

/// The physical-address-indexed atom map.
///
/// # Examples
///
/// ```
/// use xmem_core::aam::{AamConfig, AtomAddressMap};
/// use xmem_core::addr::PhysAddr;
/// use xmem_core::atom::AtomId;
///
/// let mut aam = AtomAddressMap::new(AamConfig {
///     phys_bytes: 1 << 20,
///     ..AamConfig::default()
/// });
/// aam.map_range(PhysAddr::new(0x1000), 0x800, AtomId::new(3))?;
/// assert_eq!(aam.lookup(PhysAddr::new(0x1200)), Some(AtomId::new(3)));
/// assert_eq!(aam.lookup(PhysAddr::new(0x800)), None);
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AtomAddressMap {
    config: AamConfig,
    /// One byte per address range unit; `NO_ATOM` means unmapped.
    units: Vec<u8>,
}

impl AtomAddressMap {
    /// Creates an all-unmapped AAM for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is zero or not a power of two.
    pub fn new(config: AamConfig) -> Self {
        assert!(
            config.granularity.is_power_of_two(),
            "AAM granularity must be a power of two"
        );
        AtomAddressMap {
            units: vec![NO_ATOM; config.units() as usize],
            config,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &AamConfig {
        &self.config
    }

    #[inline]
    fn unit_index(&self, pa: PhysAddr) -> Result<usize> {
        if pa.raw() >= self.config.phys_bytes {
            return Err(XMemError::PhysicalAddressOutOfRange {
                pa: pa.raw(),
                phys_bytes: self.config.phys_bytes,
            });
        }
        Ok(addr_to_index(pa.raw() / self.config.granularity))
    }

    /// Latest atom associated with `pa`, or `None`.
    ///
    /// Out-of-range addresses return `None` (hints are best-effort).
    #[inline]
    pub fn lookup(&self, pa: PhysAddr) -> Option<AtomId> {
        let idx = addr_to_index(pa.raw() / self.config.granularity);
        match self.units.get(idx) {
            Some(&raw) if raw != NO_ATOM => Some(AtomId::new(raw)),
            _ => None,
        }
    }

    /// Maps every unit overlapping `[pa, pa+len)` to `atom`.
    ///
    /// Partial units are mapped whole — this is the paper's *approximate
    /// mapping*: it may cause optimization inaccuracy at range edges but
    /// never affects correctness.
    ///
    /// # Errors
    ///
    /// Returns [`XMemError::PhysicalAddressOutOfRange`] if any part of the
    /// range falls outside physical memory, or an error if `atom` uses the
    /// reserved all-ones encoding.
    pub fn map_range(&mut self, pa: PhysAddr, len: u64, atom: AtomId) -> Result<()> {
        if atom.raw() == NO_ATOM {
            return Err(XMemError::UnknownAtom(atom));
        }
        self.for_each_unit(pa, len, |slot| *slot = atom.raw())
    }

    /// Unmaps every unit overlapping `[pa, pa+len)`.
    ///
    /// # Errors
    ///
    /// Returns [`XMemError::PhysicalAddressOutOfRange`] if any part of the
    /// range falls outside physical memory.
    pub fn unmap_range(&mut self, pa: PhysAddr, len: u64) -> Result<()> {
        self.for_each_unit(pa, len, |slot| *slot = NO_ATOM)
    }

    fn for_each_unit(&mut self, pa: PhysAddr, len: u64, mut f: impl FnMut(&mut u8)) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let first = self.unit_index(pa)?;
        let last = self.unit_index(PhysAddr::new(pa.raw() + len - 1))?;
        for slot in &mut self.units[first..=last] {
            f(slot);
        }
        Ok(())
    }

    /// Unmaps every unit currently mapped to `atom` (linear scan; used when a
    /// whole atom is unmapped without an address range, e.g. on process exit).
    pub fn unmap_atom(&mut self, atom: AtomId) {
        for slot in &mut self.units {
            if *slot == atom.raw() {
                *slot = NO_ATOM;
            }
        }
    }

    /// Number of units currently mapped to `atom`.
    pub fn mapped_units(&self, atom: AtomId) -> usize {
        self.units.iter().filter(|&&u| u == atom.raw()).count()
    }

    /// Total bytes of physical memory currently mapped to `atom`.
    ///
    /// This is how the system infers an active atom's *working set size*
    /// (§3.3(3): "working set size, which is inferred from the size of data
    /// the atom is mapped to").
    pub fn mapped_bytes(&self, atom: AtomId) -> u64 {
        self.mapped_units(atom) as u64 * self.config.granularity
    }

    /// Atom IDs for all units in the physical page containing `pa`
    /// (what an [ALB](crate::alb::AtomLookasideBuffer) entry caches).
    pub fn page_entry(&self, pa: PhysAddr, page_size: u64) -> Vec<Option<AtomId>> {
        let page_base = pa.align_down(page_size);
        let units_per_page = (page_size / self.config.granularity).max(1);
        (0..units_per_page)
            .map(|i| self.lookup(page_base + i * self.config.granularity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_aam() -> AtomAddressMap {
        AtomAddressMap::new(AamConfig {
            phys_bytes: 64 * 1024,
            granularity: 512,
            id_bits: 8,
        })
    }

    #[test]
    fn map_lookup_unmap() {
        let mut aam = small_aam();
        let a = AtomId::new(7);
        aam.map_range(PhysAddr::new(1024), 2048, a).unwrap();
        assert_eq!(aam.lookup(PhysAddr::new(1024)), Some(a));
        assert_eq!(aam.lookup(PhysAddr::new(3071)), Some(a));
        assert_eq!(aam.lookup(PhysAddr::new(3072)), None);
        assert_eq!(aam.lookup(PhysAddr::new(1023)), None);
        aam.unmap_range(PhysAddr::new(1024), 2048).unwrap();
        assert_eq!(aam.lookup(PhysAddr::new(2000)), None);
    }

    #[test]
    fn approximate_mapping_rounds_to_units() {
        let mut aam = small_aam();
        let a = AtomId::new(1);
        // Map 1 byte in the middle of a unit: the whole 512 B unit maps.
        aam.map_range(PhysAddr::new(700), 1, a).unwrap();
        assert_eq!(aam.lookup(PhysAddr::new(512)), Some(a));
        assert_eq!(aam.lookup(PhysAddr::new(1023)), Some(a));
        assert_eq!(aam.lookup(PhysAddr::new(1024)), None);
    }

    #[test]
    fn many_to_one_last_writer_wins() {
        // §3.2: any VA maps to at most one atom; remapping replaces.
        let mut aam = small_aam();
        aam.map_range(PhysAddr::new(0), 4096, AtomId::new(1))
            .unwrap();
        aam.map_range(PhysAddr::new(512), 512, AtomId::new(2))
            .unwrap();
        assert_eq!(aam.lookup(PhysAddr::new(0)), Some(AtomId::new(1)));
        assert_eq!(aam.lookup(PhysAddr::new(600)), Some(AtomId::new(2)));
        assert_eq!(aam.lookup(PhysAddr::new(1024)), Some(AtomId::new(1)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut aam = small_aam();
        let err = aam
            .map_range(PhysAddr::new(64 * 1024 - 256), 512, AtomId::new(0))
            .unwrap_err();
        assert!(matches!(err, XMemError::PhysicalAddressOutOfRange { .. }));
        // Lookup out of range is a soft None.
        assert_eq!(aam.lookup(PhysAddr::new(1 << 40)), None);
    }

    #[test]
    fn reserved_id_rejected() {
        let mut aam = small_aam();
        let err = aam
            .map_range(PhysAddr::new(0), 512, AtomId::new(u8::MAX))
            .unwrap_err();
        assert!(matches!(err, XMemError::UnknownAtom(_)));
    }

    #[test]
    fn mapped_bytes_tracks_working_set() {
        let mut aam = small_aam();
        let a = AtomId::new(3);
        aam.map_range(PhysAddr::new(0), 8192, a).unwrap();
        assert_eq!(aam.mapped_bytes(a), 8192);
        aam.unmap_range(PhysAddr::new(0), 4096).unwrap();
        assert_eq!(aam.mapped_bytes(a), 4096);
        aam.unmap_atom(a);
        assert_eq!(aam.mapped_bytes(a), 0);
    }

    #[test]
    fn page_entry_shape() {
        let mut aam = small_aam();
        aam.map_range(PhysAddr::new(4096), 512, AtomId::new(9))
            .unwrap();
        let entry = aam.page_entry(PhysAddr::new(4100), 4096);
        assert_eq!(entry.len(), 8); // 4096 / 512
        assert_eq!(entry[0], Some(AtomId::new(9)));
        assert_eq!(entry[1], None);
    }

    #[test]
    fn zero_len_map_is_noop() {
        let mut aam = small_aam();
        aam.map_range(PhysAddr::new(0), 0, AtomId::new(1)).unwrap();
        assert_eq!(aam.lookup(PhysAddr::new(0)), None);
    }

    #[test]
    fn paper_storage_overhead_numbers() {
        // "0.2% storage overhead assuming an 8-bit Atom ID" at 512 B units,
        // i.e. 16 MB on an 8 GB system.
        let cfg = AamConfig {
            phys_bytes: 8 << 30,
            granularity: 512,
            id_bits: 8,
        };
        assert_eq!(cfg.storage_bytes(), 16 << 20);
        assert!((cfg.overhead_fraction() - 0.001953).abs() < 1e-5);
    }
}
