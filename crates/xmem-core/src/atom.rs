//! The Atom abstraction (§3.1–§3.2 of the paper).
//!
//! An atom is the basic unit of expressing and conveying program semantics:
//! a set of immutable [`AtomAttributes`], a (dynamic) mapping to virtual
//! address ranges, and an active/inactive state. The invariants of §3.2 —
//! homogeneity, many-to-one VA→atom mapping, immutable attributes, flexible
//! mapping, and activation/deactivation — are enforced by the types in this
//! module together with [`crate::amu::AtomManagementUnit`].

use crate::attrs::AtomAttributes;
use std::fmt;

/// A per-process atom identifier.
///
/// The paper assigns atom IDs consecutively from 0 within a process and uses
/// 8-bit IDs by default (up to 256 atoms per application; every evaluated
/// workload used fewer than 10). We mirror that: the ID is a `u8`.
///
/// # Examples
///
/// ```
/// use xmem_core::atom::AtomId;
/// let id = AtomId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AtomId(u8);

impl AtomId {
    /// The maximum number of atoms per process with 8-bit IDs.
    pub const MAX_ATOMS: usize = 256;

    /// Creates an atom ID from its raw index.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        AtomId(raw)
    }

    /// The raw 8-bit value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The ID as a table index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// Whether an atom's attributes are currently valid for the data it maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AtomState {
    /// The system must ignore the atom's attributes.
    #[default]
    Inactive,
    /// The attributes are valid for all currently mapped data.
    Active,
}

impl AtomState {
    /// Returns `true` for [`AtomState::Active`].
    #[inline]
    pub const fn is_active(self) -> bool {
        matches!(self, AtomState::Active)
    }
}

/// A statically created atom: ID plus immutable attributes.
///
/// This is the compile-time view (what the compiler summarizes into the atom
/// segment of the binary, §3.5.2). The runtime state — address mapping and
/// active status — lives in the hardware tables
/// ([`crate::aam::AtomAddressMap`], [`crate::ast::AtomStatusTable`]), not
/// here, mirroring the paper's split between static summarization and
/// hardware runtime tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAtom {
    id: AtomId,
    /// An optional human-readable label (e.g. the data structure name).
    /// Purely diagnostic; the hardware never sees it.
    label: String,
    attrs: AtomAttributes,
}

impl StaticAtom {
    /// Creates a static atom record.
    pub fn new(id: AtomId, label: impl Into<String>, attrs: AtomAttributes) -> Self {
        StaticAtom {
            id,
            label: label.into(),
            attrs,
        }
    }

    /// The atom's ID.
    pub fn id(&self) -> AtomId {
        self.id
    }

    /// The diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The immutable attributes.
    pub fn attrs(&self) -> &AtomAttributes {
        &self.attrs
    }
}

impl fmt::Display for StaticAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Reuse;

    #[test]
    fn atom_id_roundtrip() {
        for raw in [0u8, 1, 127, 255] {
            let id = AtomId::new(raw);
            assert_eq!(id.raw(), raw);
            assert_eq!(id.index(), raw as usize);
        }
    }

    #[test]
    fn atom_state_default_inactive() {
        assert!(!AtomState::default().is_active());
        assert!(AtomState::Active.is_active());
    }

    #[test]
    fn static_atom_accessors() {
        let attrs = AtomAttributes::builder().reuse(Reuse(9)).build();
        let a = StaticAtom::new(AtomId::new(2), "tileA", attrs.clone());
        assert_eq!(a.id(), AtomId::new(2));
        assert_eq!(a.label(), "tileA");
        assert_eq!(a.attrs(), &attrs);
        assert_eq!(a.to_string(), "atom#2 (tileA)");
    }
}
