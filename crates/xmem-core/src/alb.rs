//! Atom Lookaside Buffer (ALB) — §4.2(4) of the paper.
//!
//! The ALB caches recent `ATOM_LOOKUP` results so the AMU does not touch the
//! in-memory AAM on every query — exactly like a TLB caches page-table walks.
//! Tags are physical page indices; the data is the vector of atom IDs for all
//! address-range units in that page. The paper reports that a 256-entry ALB
//! covers 98.9% of lookups; [`AlbStats`] lets the benchmark harness reproduce
//! that measurement.

use crate::aam::AtomAddressMap;
use crate::addr::{addr_to_index, PhysAddr};
use crate::atom::AtomId;

/// Hit/miss statistics for the ALB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlbStats {
    /// Lookups served from the buffer.
    pub hits: u64,
    /// Lookups that had to walk the AAM.
    pub misses: u64,
}

impl AlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One ALB entry: a page's worth of unit→atom mappings.
#[derive(Debug, Clone)]
struct AlbEntry {
    page_index: u64,
    /// Atom ID per address-range unit in the page.
    units: Vec<Option<AtomId>>,
    /// Monotonic timestamp for LRU replacement.
    last_used: u64,
}

/// A fully-associative, LRU atom lookaside buffer.
///
/// # Examples
///
/// ```
/// use xmem_core::aam::{AamConfig, AtomAddressMap};
/// use xmem_core::alb::AtomLookasideBuffer;
/// use xmem_core::addr::PhysAddr;
/// use xmem_core::atom::AtomId;
///
/// let mut aam = AtomAddressMap::new(AamConfig { phys_bytes: 1 << 20, ..Default::default() });
/// aam.map_range(PhysAddr::new(0), 4096, AtomId::new(1))?;
///
/// let mut alb = AtomLookasideBuffer::new(256, 4096);
/// assert_eq!(alb.lookup(PhysAddr::new(64), &aam), Some(AtomId::new(1)));
/// assert_eq!(alb.stats().misses, 1);
/// assert_eq!(alb.lookup(PhysAddr::new(128), &aam), Some(AtomId::new(1)));
/// assert_eq!(alb.stats().hits, 1);
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AtomLookasideBuffer {
    entries: Vec<AlbEntry>,
    capacity: usize,
    page_size: u64,
    clock: u64,
    stats: AlbStats,
}

impl AtomLookasideBuffer {
    /// Creates an ALB with `capacity` entries covering pages of `page_size`
    /// bytes. The paper's configuration is 256 entries over 4 KB pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_size` is not a power of two.
    pub fn new(capacity: usize, page_size: u64) -> Self {
        assert!(capacity > 0, "ALB capacity must be non-zero");
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        AtomLookasideBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_size,
            clock: 0,
            stats: AlbStats::default(),
        }
    }

    /// Number of entries the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the atom for `pa`, filling from `aam` on a miss.
    pub fn lookup(&mut self, pa: PhysAddr, aam: &AtomAddressMap) -> Option<AtomId> {
        self.clock += 1;
        let page_index = pa.page_index(self.page_size);
        let unit_in_page = addr_to_index(pa.page_offset(self.page_size) / aam.config().granularity);

        if let Some(entry) = self.entries.iter_mut().find(|e| e.page_index == page_index) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return entry.units.get(unit_in_page).copied().flatten();
        }

        // Miss: walk the AAM for the whole page and install the entry.
        self.stats.misses += 1;
        let units = aam.page_entry(pa, self.page_size);
        let result = units.get(unit_in_page).copied().flatten();
        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                // simlint: allow(unwrap, reason = "constructor asserts capacity > 0 and entries is full here")
                .expect("capacity > 0");
            self.entries.swap_remove(victim);
        }
        self.entries.push(AlbEntry {
            page_index,
            units,
            last_used: self.clock,
        });
        result
    }

    /// Invalidates any cached entry covering `pa` (called by the AMU when an
    /// `ATOM_MAP`/`ATOM_UNMAP` touches the page, keeping the ALB coherent).
    pub fn invalidate_page(&mut self, pa: PhysAddr) {
        let page_index = pa.page_index(self.page_size);
        self.entries.retain(|e| e.page_index != page_index);
    }

    /// Flushes all entries (on context switch, §4.4(4)).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of currently resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> AlbStats {
        self.stats
    }

    /// Resets the statistics (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = AlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aam::AamConfig;

    fn aam_with_atom() -> AtomAddressMap {
        let mut aam = AtomAddressMap::new(AamConfig {
            phys_bytes: 1 << 20,
            granularity: 512,
            id_bits: 8,
        });
        aam.map_range(PhysAddr::new(0), 8192, AtomId::new(4))
            .unwrap();
        aam
    }

    #[test]
    fn hit_after_miss() {
        let aam = aam_with_atom();
        let mut alb = AtomLookasideBuffer::new(4, 4096);
        assert_eq!(alb.lookup(PhysAddr::new(100), &aam), Some(AtomId::new(4)));
        assert_eq!(alb.lookup(PhysAddr::new(4000), &aam), Some(AtomId::new(4)));
        assert_eq!(alb.stats().hits, 1);
        assert_eq!(alb.stats().misses, 1);
        assert!((alb.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let aam = aam_with_atom();
        let mut alb = AtomLookasideBuffer::new(2, 4096);
        alb.lookup(PhysAddr::new(0), &aam); // page 0
        alb.lookup(PhysAddr::new(4096), &aam); // page 1
        alb.lookup(PhysAddr::new(0), &aam); // touch page 0
        alb.lookup(PhysAddr::new(8192), &aam); // page 2 evicts page 1
        assert_eq!(alb.len(), 2);
        let misses_before = alb.stats().misses;
        alb.lookup(PhysAddr::new(0), &aam); // page 0 still resident
        assert_eq!(alb.stats().misses, misses_before);
        alb.lookup(PhysAddr::new(4096), &aam); // page 1 was evicted
        assert_eq!(alb.stats().misses, misses_before + 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let aam = aam_with_atom();
        let mut alb = AtomLookasideBuffer::new(4, 4096);
        alb.lookup(PhysAddr::new(0), &aam);
        alb.lookup(PhysAddr::new(4096), &aam);
        alb.invalidate_page(PhysAddr::new(64));
        assert_eq!(alb.len(), 1);
        alb.flush();
        assert!(alb.is_empty());
    }

    #[test]
    fn stale_entry_avoided_via_invalidate() {
        let mut aam = aam_with_atom();
        let mut alb = AtomLookasideBuffer::new(4, 4096);
        assert_eq!(alb.lookup(PhysAddr::new(0), &aam), Some(AtomId::new(4)));
        aam.unmap_range(PhysAddr::new(0), 4096).unwrap();
        alb.invalidate_page(PhysAddr::new(0));
        assert_eq!(alb.lookup(PhysAddr::new(0), &aam), None);
    }

    #[test]
    fn zero_lookups_hit_rate() {
        let alb = AtomLookasideBuffer::new(4, 4096);
        assert_eq!(alb.stats().hit_rate(), 0.0);
    }
}
