//! Per-process XMem state and the context-switch cost model (§4.3, §4.4(4)).
//!
//! XMem adds one register to the context-switch state: a pointer to the
//! process' AST and GAT (stored consecutively). The ALB and the PATs are
//! flushed on a switch. The paper quantifies this at roughly two extra
//! instructions (≤ 1 ns) plus ~700 ns of flush effects, against a typical
//! 3–5 µs OS context switch.

use crate::ast::AtomStatusTable;
use crate::gat::GlobalAttributeTable;
use crate::segment::AtomSegment;
use std::fmt;

/// A process identifier in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The per-process software-visible XMem state: the GAT (attributes loaded
/// from the binary's atom segment) and the AST image saved across switches.
#[derive(Debug, Clone, Default)]
pub struct XMemProcess {
    /// Process identifier.
    pub pid: ProcessId,
    /// The OS-managed attribute table for this process.
    pub gat: GlobalAttributeTable,
    /// Saved AST image (restored into the AMU when scheduled in).
    pub ast: AtomStatusTable,
}

impl XMemProcess {
    /// Creates the process state by loading an atom segment, as the OS does
    /// at program load time (§3.5.2).
    ///
    /// # Errors
    ///
    /// Propagates GAT insertion failures (atom IDs out of range).
    pub fn load(pid: ProcessId, segment: &AtomSegment) -> crate::error::Result<Self> {
        let mut gat = GlobalAttributeTable::new();
        for atom in segment.atoms() {
            gat.insert(atom.clone())?;
        }
        Ok(XMemProcess {
            pid,
            gat,
            ast: AtomStatusTable::new(),
        })
    }
}

/// The fixed costs XMem adds to a context switch (§4.4(4)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSwitchCost {
    /// Extra instructions to save/restore the AST+GAT pointer register.
    pub extra_instructions: u64,
    /// Time for those instructions, in nanoseconds.
    pub register_ns: f64,
    /// Time to flush the ALB and PATs, in nanoseconds.
    pub flush_ns: f64,
}

impl Default for ContextSwitchCost {
    fn default() -> Self {
        // The paper's numbers: 2 instructions ≤ 1 ns; flush ~700 ns.
        ContextSwitchCost {
            extra_instructions: 2,
            register_ns: 1.0,
            flush_ns: 700.0,
        }
    }
}

impl ContextSwitchCost {
    /// Total added nanoseconds per context switch.
    pub fn total_ns(&self) -> f64 {
        self.register_ns + self.flush_ns
    }

    /// The added cost as a fraction of a typical `switch_ns` OS context
    /// switch (3–5 µs per the paper).
    pub fn overhead_fraction(&self, switch_ns: f64) -> f64 {
        self.total_ns() / switch_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{AtomId, StaticAtom};
    use crate::attrs::AtomAttributes;

    #[test]
    fn load_from_segment() {
        let mut seg = AtomSegment::new();
        seg.push(StaticAtom::new(
            AtomId::new(0),
            "a",
            AtomAttributes::default(),
        ));
        seg.push(StaticAtom::new(
            AtomId::new(1),
            "b",
            AtomAttributes::default(),
        ));
        let proc = XMemProcess::load(ProcessId(3), &seg).unwrap();
        assert_eq!(proc.pid, ProcessId(3));
        assert_eq!(proc.gat.len(), 2);
        assert_eq!(proc.ast.active_count(), 0);
    }

    #[test]
    fn switch_cost_matches_paper() {
        let cost = ContextSwitchCost::default();
        assert_eq!(cost.extra_instructions, 2);
        assert!((cost.total_ns() - 701.0).abs() < 1e-9);
        // ~701 ns against a 4 µs switch: well under 20%.
        assert!(cost.overhead_fraction(4000.0) < 0.2);
    }
}
