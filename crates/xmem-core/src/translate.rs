//! The Attribute Translator and per-component primitives (§3.4, §4.2(3)).
//!
//! Atom attributes are expressed by the *application* in architecture-
//! agnostic terms. Hardware components, however, are driven by simple
//! structures and need only a few bits of directly actionable state
//! (Challenge 2 of the paper). The Attribute Translator is the hardware
//! runtime that converts the high-level attributes stored in the
//! [GAT](crate::gat::GlobalAttributeTable) into *specific primitives* for
//! each component, saved privately in that component's
//! [PAT](crate::pat::Pat) at program load time and on context switches.
//!
//! One primitive type is defined per component class the paper's use cases
//! exercise (cache, prefetcher, DRAM/OS placement) plus compression, which
//! Table 1 highlights.

use crate::attrs::{AccessPattern, AtomAttributes, DataProps, DataType, RwChar};

/// What the cache needs to know about an atom (use case 1, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachePrimitive {
    /// Relative reuse (drives pinning priority).
    pub reuse: u8,
    /// Whether this atom is worth considering for pinning at all.
    pub pin_candidate: bool,
    /// Whether data should bypass the cache entirely (no reuse streaming).
    pub bypass: bool,
}

/// What the prefetcher needs to know about an atom (§5.2(4)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetcherPrimitive {
    /// Stride to prefetch with, if the access pattern is regular.
    pub stride: Option<i64>,
}

/// What the OS / memory controller needs for DRAM placement (use case 2, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementPrimitive {
    /// High expected row-buffer locality: regular pattern with a stride small
    /// enough that consecutive accesses fall in the same DRAM row.
    pub high_rbl: bool,
    /// Relative access intensity (0 = cold).
    pub intensity: u8,
    /// The data is read-only while its atom is active.
    pub read_only: bool,
    /// Spread this atom across banks/channels to maximize parallelism
    /// (irregular or non-deterministic access).
    pub spread_for_mlp: bool,
}

/// Compression algorithm selection (Table 1, "Cache/memory compression").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionAlgo {
    /// No compression hint available.
    #[default]
    Generic,
    /// Sparse-data encoding (zero-run length).
    SparseEncoding,
    /// Floating-point-specific compression.
    FpSpecific,
    /// Delta-based compression for pointers/indices.
    DeltaPointer,
}

/// What a compression engine needs to know about an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionPrimitive {
    /// The algorithm best suited to the atom's data.
    pub algo: CompressionAlgo,
    /// Whether the data tolerates lossy approximation.
    pub approximable: bool,
}

/// Row-buffer size assumed when classifying strides as row-friendly.
/// (8 KB per the DDR3 configuration of Table 3: 1 KB/chip × 8 chips is
/// common; we use the row byte-count the DRAM model also defaults to.)
const DEFAULT_ROW_BYTES: i64 = 8192;

/// The hardware attribute translator.
///
/// Stateless: its configuration is just the row size used for RBL
/// classification.
///
/// # Examples
///
/// ```
/// use xmem_core::translate::AttributeTranslator;
/// use xmem_core::attrs::{AtomAttributes, AccessPattern, Reuse};
///
/// let t = AttributeTranslator::new();
/// let attrs = AtomAttributes::builder()
///     .access_pattern(AccessPattern::sequential(8))
///     .reuse(Reuse(100))
///     .build();
/// let cache = t.for_cache(&attrs);
/// assert!(cache.pin_candidate);
/// let pf = t.for_prefetcher(&attrs);
/// assert_eq!(pf.stride, Some(8));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AttributeTranslator {
    row_bytes: i64,
}

impl Default for AttributeTranslator {
    fn default() -> Self {
        Self::new()
    }
}

impl AttributeTranslator {
    /// Creates a translator with the default row-size assumption.
    pub fn new() -> Self {
        AttributeTranslator {
            row_bytes: DEFAULT_ROW_BYTES,
        }
    }

    /// Creates a translator that classifies strides against a specific DRAM
    /// row size.
    pub fn with_row_bytes(row_bytes: u64) -> Self {
        AttributeTranslator {
            row_bytes: row_bytes as i64,
        }
    }

    /// Translates attributes into the cache's primitive.
    pub fn for_cache(&self, attrs: &AtomAttributes) -> CachePrimitive {
        let reuse = attrs.reuse().0;
        CachePrimitive {
            reuse,
            pin_candidate: reuse > 0,
            bypass: reuse == 0 && attrs.access_pattern().is_prefetchable(),
        }
    }

    /// Translates attributes into the prefetcher's primitive.
    pub fn for_prefetcher(&self, attrs: &AtomAttributes) -> PrefetcherPrimitive {
        PrefetcherPrimitive {
            stride: attrs.access_pattern().stride(),
        }
    }

    /// Translates attributes into the OS/memory-controller placement
    /// primitive.
    pub fn for_placement(&self, attrs: &AtomAttributes) -> PlacementPrimitive {
        let high_rbl = match attrs.access_pattern() {
            AccessPattern::Regular { stride } => stride != 0 && stride.abs() < self.row_bytes / 8,
            _ => false,
        };
        PlacementPrimitive {
            high_rbl,
            intensity: attrs.intensity().0,
            read_only: attrs.rw() == RwChar::ReadOnly,
            spread_for_mlp: !high_rbl,
        }
    }

    /// Translates attributes into the compression engine's primitive.
    pub fn for_compression(&self, attrs: &AtomAttributes) -> CompressionPrimitive {
        let props = attrs.props();
        let algo = if props.contains(DataProps::SPARSE) {
            CompressionAlgo::SparseEncoding
        } else if props.contains(DataProps::POINTER) || props.contains(DataProps::INDEX) {
            CompressionAlgo::DeltaPointer
        } else {
            match attrs.data_type() {
                Some(DataType::Float32) | Some(DataType::Float64) => CompressionAlgo::FpSpecific,
                _ => CompressionAlgo::Generic,
            }
        };
        CompressionPrimitive {
            algo,
            approximable: props.contains(DataProps::APPROXIMABLE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AccessIntensity, Reuse};

    fn seq_attrs(reuse: u8) -> AtomAttributes {
        AtomAttributes::builder()
            .access_pattern(AccessPattern::sequential(8))
            .reuse(Reuse(reuse))
            .build()
    }

    #[test]
    fn cache_primitive_pinning() {
        let t = AttributeTranslator::new();
        assert!(t.for_cache(&seq_attrs(1)).pin_candidate);
        assert!(!t.for_cache(&seq_attrs(0)).pin_candidate);
        // Zero-reuse streaming data should bypass.
        assert!(t.for_cache(&seq_attrs(0)).bypass);
        // Zero-reuse but irregular: don't bypass (unknown behavior).
        let irr = AtomAttributes::builder()
            .access_pattern(AccessPattern::Irregular)
            .build();
        assert!(!t.for_cache(&irr).bypass);
    }

    #[test]
    fn prefetcher_primitive_stride() {
        let t = AttributeTranslator::new();
        assert_eq!(t.for_prefetcher(&seq_attrs(0)).stride, Some(8));
        let nd = AtomAttributes::default();
        assert_eq!(t.for_prefetcher(&nd).stride, None);
    }

    #[test]
    fn placement_rbl_classification() {
        let t = AttributeTranslator::new();
        // Small stride: row friendly.
        let p = t.for_placement(&seq_attrs(0));
        assert!(p.high_rbl);
        assert!(!p.spread_for_mlp);
        // Huge stride (> row/8): jumps rows, not RBL friendly.
        let big = AtomAttributes::builder()
            .access_pattern(AccessPattern::Regular { stride: 65536 })
            .build();
        assert!(!t.for_placement(&big).high_rbl);
        // Non-deterministic: spread.
        let nd = AtomAttributes::default();
        let p = t.for_placement(&nd);
        assert!(!p.high_rbl);
        assert!(p.spread_for_mlp);
    }

    #[test]
    fn placement_carries_intensity_and_rw() {
        let t = AttributeTranslator::new();
        let a = AtomAttributes::builder()
            .intensity(AccessIntensity(42))
            .rw(RwChar::ReadOnly)
            .build();
        let p = t.for_placement(&a);
        assert_eq!(p.intensity, 42);
        assert!(p.read_only);
    }

    #[test]
    fn compression_algorithm_selection() {
        let t = AttributeTranslator::new();
        let sparse = AtomAttributes::builder().props(DataProps::SPARSE).build();
        assert_eq!(
            t.for_compression(&sparse).algo,
            CompressionAlgo::SparseEncoding
        );
        let ptr = AtomAttributes::builder().props(DataProps::POINTER).build();
        assert_eq!(t.for_compression(&ptr).algo, CompressionAlgo::DeltaPointer);
        let fp = AtomAttributes::builder()
            .data_type(DataType::Float64)
            .build();
        assert_eq!(t.for_compression(&fp).algo, CompressionAlgo::FpSpecific);
        let other = AtomAttributes::default();
        assert_eq!(t.for_compression(&other).algo, CompressionAlgo::Generic);
        let approx = AtomAttributes::builder()
            .props(DataProps::APPROXIMABLE)
            .build();
        assert!(t.for_compression(&approx).approximable);
    }

    #[test]
    fn custom_row_bytes_changes_classification() {
        // Stride 512: row friendly at 8 KB rows, not at 2 KB rows (512 >= 2048/8).
        let stride512 = AtomAttributes::builder()
            .access_pattern(AccessPattern::Regular { stride: 512 })
            .build();
        assert!(
            AttributeTranslator::new()
                .for_placement(&stride512)
                .high_rbl
        );
        let tight = AttributeTranslator::with_row_bytes(2048);
        assert!(!tight.for_placement(&stride512).high_rbl);
    }
}
