//! Private Attribute Tables (PATs) — §4.2(3) of the paper.
//!
//! Each hardware component that benefits from XMem keeps a small private
//! table of *translated* primitives, indexed by atom ID. The table is filled
//! by the [attribute translator](crate::translate) at program load time and
//! reloaded (flushed + refilled) on a context switch.

use crate::atom::AtomId;
use crate::gat::GlobalAttributeTable;

/// A per-component private attribute table holding primitives of type `T`.
///
/// # Examples
///
/// ```
/// use xmem_core::pat::Pat;
/// use xmem_core::gat::GlobalAttributeTable;
/// use xmem_core::translate::AttributeTranslator;
/// use xmem_core::atom::{AtomId, StaticAtom};
/// use xmem_core::attrs::{AtomAttributes, Reuse};
///
/// let mut gat = GlobalAttributeTable::new();
/// gat.insert(StaticAtom::new(
///     AtomId::new(0),
///     "t",
///     AtomAttributes::builder().reuse(Reuse(5)).build(),
/// ))?;
///
/// let translator = AttributeTranslator::new();
/// let mut pat = Pat::new();
/// pat.fill_from_gat(&gat, |attrs| translator.for_cache(attrs));
/// assert_eq!(pat.get(AtomId::new(0)).unwrap().reuse, 5);
/// assert!(pat.get(AtomId::new(1)).is_none());
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pat<T> {
    entries: Vec<Option<T>>,
}

impl<T> Default for Pat<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pat<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Pat {
            entries: Vec::new(),
        }
    }

    /// The primitive for `id`, if one was installed.
    #[inline]
    pub fn get(&self, id: AtomId) -> Option<&T> {
        self.entries.get(id.index()).and_then(|e| e.as_ref())
    }

    /// Installs a primitive for `id`.
    pub fn set(&mut self, id: AtomId, value: T) {
        if id.index() >= self.entries.len() {
            self.entries.resize_with(id.index() + 1, || None);
        }
        self.entries[id.index()] = Some(value);
    }

    /// Number of installed primitives.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns `true` if no primitives are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes all entries (context switch, §4.4(4)).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Fills the table by translating every atom in `gat` with `translate`.
    ///
    /// This models the translator pass at program load / context switch.
    pub fn fill_from_gat(
        &mut self,
        gat: &GlobalAttributeTable,
        mut translate: impl FnMut(&crate::attrs::AtomAttributes) -> T,
    ) {
        self.flush();
        for atom in gat.iter() {
            self.set(atom.id(), translate(atom.attrs()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::StaticAtom;
    use crate::attrs::{AtomAttributes, Reuse};
    use crate::translate::AttributeTranslator;

    #[test]
    fn set_get_flush() {
        let mut pat: Pat<u32> = Pat::new();
        assert!(pat.is_empty());
        pat.set(AtomId::new(10), 99);
        assert_eq!(pat.get(AtomId::new(10)), Some(&99));
        assert_eq!(pat.get(AtomId::new(9)), None);
        assert_eq!(pat.len(), 1);
        pat.flush();
        assert!(pat.is_empty());
        assert_eq!(pat.get(AtomId::new(10)), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut pat: Pat<&str> = Pat::new();
        pat.set(AtomId::new(0), "a");
        pat.set(AtomId::new(0), "b");
        assert_eq!(pat.get(AtomId::new(0)), Some(&"b"));
        assert_eq!(pat.len(), 1);
    }

    #[test]
    fn fill_from_gat_translates_all() {
        let mut gat = GlobalAttributeTable::new();
        for i in 0..3u8 {
            gat.insert(StaticAtom::new(
                AtomId::new(i),
                format!("a{i}"),
                AtomAttributes::builder().reuse(Reuse(i * 10)).build(),
            ))
            .unwrap();
        }
        let t = AttributeTranslator::new();
        let mut pat = Pat::new();
        pat.fill_from_gat(&gat, |a| t.for_cache(a));
        assert_eq!(pat.len(), 3);
        assert_eq!(pat.get(AtomId::new(2)).unwrap().reuse, 20);
        assert!(!pat.get(AtomId::new(0)).unwrap().pin_candidate);
        assert!(pat.get(AtomId::new(1)).unwrap().pin_candidate);
    }
}
