//! The atom segment of a program binary (§3.5.2 of the paper).
//!
//! At compile time, the compiler summarizes all statically created atoms into
//! a table stored in a dedicated *atom segment* of the object file. At load
//! time the OS reads the segment into the [GAT](crate::gat). The segment
//! carries a **version identifier** so the information format can evolve
//! across architecture generations: newer formats are simply ignored by older
//! systems (hints only — skipping them is always safe), and older formats
//! remain parseable forever.
//!
//! The encoding is a small hand-rolled binary format (magic, version, count,
//! then one record per atom) so that the versioning story is explicit and
//! testable.

use crate::atom::{AtomId, StaticAtom};
use crate::attrs::{
    AccessIntensity, AccessPattern, AtomAttributes, DataProps, DataType, Reuse, RwChar,
};
use crate::error::{Result, XMemError};

/// Magic bytes identifying an atom segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"XMEMATOM";

/// The format version this implementation writes and the highest it reads.
pub const SEGMENT_VERSION: u32 = 1;

/// The compile-time summary of a program's atoms.
///
/// # Examples
///
/// ```
/// use xmem_core::segment::AtomSegment;
/// use xmem_core::atom::{AtomId, StaticAtom};
/// use xmem_core::attrs::AtomAttributes;
///
/// let mut seg = AtomSegment::new();
/// seg.push(StaticAtom::new(AtomId::new(0), "table", AtomAttributes::default()));
/// let bytes = seg.to_bytes();
/// let parsed = AtomSegment::from_bytes(&bytes)?;
/// assert_eq!(parsed.atoms().len(), 1);
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AtomSegment {
    atoms: Vec<StaticAtom>,
}

impl AtomSegment {
    /// Creates an empty segment.
    pub fn new() -> Self {
        AtomSegment { atoms: Vec::new() }
    }

    /// Appends an atom record.
    pub fn push(&mut self, atom: StaticAtom) {
        self.atoms.push(atom);
    }

    /// The atom records in creation order.
    pub fn atoms(&self) -> &[StaticAtom] {
        &self.atoms
    }

    /// s to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.atoms.len() * 40);
        out.extend_from_slice(SEGMENT_MAGIC);
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.atoms.len() as u32).to_le_bytes());
        for atom in &self.atoms {
            out.push(atom.id().raw());
            let label = atom.label().as_bytes();
            out.extend_from_slice(&(label.len() as u16).to_le_bytes());
            out.extend_from_slice(label);
            encode_attrs(atom.attrs(), &mut out);
        }
        out
    }

    /// Parses a segment from bytes.
    ///
    /// # Errors
    ///
    /// * [`XMemError::UnsupportedSegmentVersion`] for formats newer than
    ///   [`SEGMENT_VERSION`] — callers may treat this as "no hints".
    /// * [`XMemError::MalformedSegment`] for truncated or corrupt data.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != SEGMENT_MAGIC {
            return Err(XMemError::MalformedSegment("bad magic".into()));
        }
        let version = r.u32()?;
        if version > SEGMENT_VERSION {
            return Err(XMemError::UnsupportedSegmentVersion {
                found: version,
                supported: SEGMENT_VERSION,
            });
        }
        let count = r.u32()? as usize;
        if count > AtomId::MAX_ATOMS {
            return Err(XMemError::MalformedSegment(format!(
                "atom count {count} exceeds maximum"
            )));
        }
        let mut atoms = Vec::with_capacity(count);
        for _ in 0..count {
            let id = AtomId::new(r.u8()?);
            let label_len = r.u16()? as usize;
            let label = std::str::from_utf8(r.take(label_len)?)
                .map_err(|_| XMemError::MalformedSegment("label not utf-8".into()))?
                .to_owned();
            let attrs = decode_attrs(&mut r)?;
            atoms.push(StaticAtom::new(id, label, attrs));
        }
        Ok(AtomSegment { atoms })
    }
}

/// Encodes one attribute record in the segment's binary format (public so
/// other serializers — e.g. trace files — reuse the exact same encoding).
pub fn encode_attrs(attrs: &AtomAttributes, out: &mut Vec<u8>) {
    out.push(match attrs.data_type() {
        None => 0xFF,
        Some(DataType::Int8) => 0,
        Some(DataType::Int16) => 1,
        Some(DataType::Int32) => 2,
        Some(DataType::Int64) => 3,
        Some(DataType::Float32) => 4,
        Some(DataType::Float64) => 5,
        Some(DataType::Char8) => 6,
        Some(DataType::Other) => 7,
    });
    out.extend_from_slice(&attrs.props().bits().to_le_bytes());
    let (tag, stride) = match attrs.access_pattern() {
        AccessPattern::Regular { stride } => (0u8, stride),
        AccessPattern::Irregular => (1, 0),
        AccessPattern::NonDet => (2, 0),
    };
    out.push(tag);
    out.extend_from_slice(&stride.to_le_bytes());
    out.push(match attrs.rw() {
        RwChar::ReadOnly => 0,
        RwChar::ReadWrite => 1,
        RwChar::WriteOnly => 2,
    });
    out.push(attrs.intensity().0);
    out.push(attrs.reuse().0);
}

/// Decodes one attribute record, returning it and the bytes consumed.
///
/// # Errors
///
/// Returns [`XMemError::MalformedSegment`] on truncated or invalid input.
pub fn decode_attrs_bytes(bytes: &[u8]) -> Result<(AtomAttributes, usize)> {
    let mut r = Reader { bytes, pos: 0 };
    let attrs = decode_attrs(&mut r)?;
    Ok((attrs, r.pos))
}

fn decode_attrs(r: &mut Reader<'_>) -> Result<AtomAttributes> {
    let mut b = AtomAttributes::builder();
    let dt = r.u8()?;
    if dt != 0xFF {
        b = b.data_type(match dt {
            0 => DataType::Int8,
            1 => DataType::Int16,
            2 => DataType::Int32,
            3 => DataType::Int64,
            4 => DataType::Float32,
            5 => DataType::Float64,
            6 => DataType::Char8,
            7 => DataType::Other,
            other => {
                return Err(XMemError::MalformedSegment(format!(
                    "unknown data type tag {other}"
                )))
            }
        });
    }
    b = b.props(DataProps::from_bits(r.u32()?));
    let tag = r.u8()?;
    let stride = r.i64()?;
    b = b.access_pattern(match tag {
        0 => AccessPattern::Regular { stride },
        1 => AccessPattern::Irregular,
        2 => AccessPattern::NonDet,
        other => {
            return Err(XMemError::MalformedSegment(format!(
                "unknown pattern tag {other}"
            )))
        }
    });
    b = b.rw(match r.u8()? {
        0 => RwChar::ReadOnly,
        1 => RwChar::ReadWrite,
        2 => RwChar::WriteOnly,
        other => {
            return Err(XMemError::MalformedSegment(format!(
                "unknown rw tag {other}"
            )))
        }
    });
    b = b.intensity(AccessIntensity(r.u8()?));
    b = b.reuse(Reuse(r.u8()?));
    Ok(b.build())
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(XMemError::MalformedSegment("unexpected end".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        // simlint: allow(unwrap, reason = "take(2) yields exactly 2 bytes; the slice-to-array conversion is infallible")
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        // simlint: allow(unwrap, reason = "take(4) yields exactly 4 bytes; the slice-to-array conversion is infallible")
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        // simlint: allow(unwrap, reason = "take(8) yields exactly 8 bytes; the slice-to-array conversion is infallible")
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> AtomSegment {
        let mut seg = AtomSegment::new();
        seg.push(StaticAtom::new(
            AtomId::new(0),
            "matrix_a",
            AtomAttributes::builder()
                .data_type(DataType::Float64)
                .access_pattern(AccessPattern::sequential(8))
                .reuse(Reuse(200))
                .build(),
        ));
        seg.push(StaticAtom::new(
            AtomId::new(1),
            "edges",
            AtomAttributes::builder()
                .data_type(DataType::Int32)
                .props(DataProps::INDEX | DataProps::SPARSE)
                .access_pattern(AccessPattern::Irregular)
                .rw(RwChar::ReadOnly)
                .intensity(AccessIntensity(90))
                .build(),
        ));
        seg
    }

    #[test]
    fn roundtrip() {
        let seg = sample_segment();
        let parsed = AtomSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(parsed, seg);
    }

    #[test]
    fn bad_magic() {
        let err = AtomSegment::from_bytes(b"NOTMAGIC\x01\x00\x00\x00").unwrap_err();
        assert!(matches!(err, XMemError::MalformedSegment(_)));
    }

    #[test]
    fn newer_version_rejected_gracefully() {
        let mut bytes = sample_segment().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = AtomSegment::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            XMemError::UnsupportedSegmentVersion {
                found: 99,
                supported: SEGMENT_VERSION
            }
        );
    }

    #[test]
    fn truncated_is_malformed() {
        let bytes = sample_segment().to_bytes();
        for cut in [4, 12, 20, bytes.len() - 1] {
            let err = AtomSegment::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, XMemError::MalformedSegment(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn unknown_future_props_bits_roundtrip() {
        // A future writer sets property bits we don't know: they survive.
        let mut seg = AtomSegment::new();
        seg.push(StaticAtom::new(
            AtomId::new(0),
            "x",
            AtomAttributes::builder()
                .props(DataProps::from_bits(0xF000_0000))
                .build(),
        ));
        let parsed = AtomSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(parsed.atoms()[0].attrs().props().bits(), 0xF000_0000);
    }

    #[test]
    fn empty_segment_roundtrip() {
        let seg = AtomSegment::new();
        let parsed = AtomSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert!(parsed.atoms().is_empty());
    }
}
