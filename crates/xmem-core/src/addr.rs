//! Address newtypes shared across the XMem system.
//!
//! The paper distinguishes virtual addresses (what the application and
//! `XMemLib` speak) from physical addresses (what the [`crate::aam::AtomAddressMap`]
//! and the hardware components are indexed by). Keeping them as distinct
//! newtypes prevents an entire class of unit-confusion bugs in the simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A virtual address in a process address space.
///
/// # Examples
///
/// ```
/// use xmem_core::addr::VirtAddr;
///
/// let va = VirtAddr::new(0x1000);
/// assert_eq!(va.page_index(4096), 1);
/// assert_eq!((va + 0x234).page_offset(4096), 0x234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address in the machine address space.
///
/// # Examples
///
/// ```
/// use xmem_core::addr::PhysAddr;
///
/// let pa = PhysAddr::new(0x8000);
/// assert_eq!(pa.frame_index(4096), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

macro_rules! addr_impl {
    ($ty:ident) => {
        impl $ty {
            /// Creates an address from a raw integer value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value of the address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the index of the page/frame containing this address.
            ///
            /// # Panics
            ///
            /// Panics if `page_size` is zero.
            #[inline]
            pub fn page_index(self, page_size: u64) -> u64 {
                assert!(page_size > 0, "page size must be non-zero");
                self.0 / page_size
            }

            /// Returns the offset of this address within its page/frame.
            ///
            /// # Panics
            ///
            /// Panics if `page_size` is zero.
            #[inline]
            pub fn page_offset(self, page_size: u64) -> u64 {
                assert!(page_size > 0, "page size must be non-zero");
                self.0 % page_size
            }

            /// Rounds the address down to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Rounds the address up to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_up(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                // simlint: allow(unwrap, reason = "documented `# Panics` contract: overflowing the 64-bit address space is a caller bug")
                Self(self.0.checked_add(align - 1).expect("address overflow") & !(align - 1))
            }

            /// Returns the address `bytes` bytes past this one, or `None` on overflow.
            #[inline]
            pub fn checked_add(self, bytes: u64) -> Option<Self> {
                self.0.checked_add(bytes).map(Self)
            }
        }

        impl Add<u64> for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$ty> for $ty {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $ty) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $ty {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            #[inline]
            fn from(addr: $ty) -> u64 {
                addr.0
            }
        }
    };
}

addr_impl!(VirtAddr);
addr_impl!(PhysAddr);

impl PhysAddr {
    /// Returns the index of the physical frame containing this address
    /// (identical to [`Self::page_index`], named for the physical side).
    ///
    /// # Panics
    ///
    /// Panics if `frame_size` is zero.
    #[inline]
    pub fn frame_index(self, frame_size: u64) -> u64 {
        self.page_index(frame_size)
    }
}

/// A half-open range `[start, start + len)` of virtual addresses.
///
/// This is the unit of the `MAP`/`UNMAP` operators: an atom is mapped to one
/// or more virtual address ranges (possibly non-contiguous, per the "flexible
/// mapping" invariant of §3.2 of the paper).
///
/// # Examples
///
/// ```
/// use xmem_core::addr::{VaRange, VirtAddr};
///
/// let r = VaRange::new(VirtAddr::new(0x1000), 64);
/// assert!(r.contains(VirtAddr::new(0x103f)));
/// assert!(!r.contains(VirtAddr::new(0x1040)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaRange {
    start: VirtAddr,
    len: u64,
}

impl VaRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    #[inline]
    pub const fn new(start: VirtAddr, len: u64) -> Self {
        Self { start, len }
    }

    /// Start of the range (inclusive).
    #[inline]
    pub const fn start(&self) -> VirtAddr {
        self.start
    }

    /// End of the range (exclusive).
    #[inline]
    pub fn end(&self) -> VirtAddr {
        VirtAddr::new(self.start.raw() + self.len)
    }

    /// Length of the range in bytes.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the range spans zero bytes.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `va` falls within the range.
    #[inline]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va.raw() < self.start.raw() + self.len
    }

    /// Returns `true` if the two ranges share any byte.
    #[inline]
    pub fn overlaps(&self, other: &VaRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start.raw() < other.end().raw()
            && other.start.raw() < self.end().raw()
    }

    /// Iterates over the page indices covered by this range.
    pub fn page_indices(&self, page_size: u64) -> impl Iterator<Item = u64> {
        let first = self.start.page_index(page_size);
        let last = if self.len == 0 {
            first
        } else {
            (self.start.raw() + self.len - 1) / page_size + 1
        };
        first..last
    }
}

// ---------------------------------------------------------------------------
// Checked narrowing
// ---------------------------------------------------------------------------

/// Narrows an address-derived value (set/bank/row index, page count, ...)
/// to `usize`, asserting in debug builds that nothing is truncated.
///
/// Plain `as` casts silently wrap; simlint's `narrowing-cast` rule bans
/// them on address/cycle expressions and points here. The callers all
/// mask or divide first, so the bound holds by construction — the
/// `debug_assert` documents and checks that reasoning instead of
/// trusting it.
#[inline]
#[track_caller]
pub fn addr_to_index(value: u64) -> usize {
    debug_assert!(
        usize::try_from(value).is_ok(),
        "address-derived value {value:#x} does not fit in usize"
    );
    value as usize
}

/// Narrows an address-derived value to `u32` (e.g. a packed row number).
#[inline]
#[track_caller]
pub fn addr_to_u32(value: u64) -> u32 {
    debug_assert!(
        u32::try_from(value).is_ok(),
        "address-derived value {value:#x} does not fit in u32"
    );
    value as u32
}

/// Narrows an address-derived value to `u16` (e.g. a SHiP signature).
#[inline]
#[track_caller]
pub fn addr_to_u16(value: u64) -> u16 {
    debug_assert!(
        u16::try_from(value).is_ok(),
        "address-derived value {value:#x} does not fit in u16"
    );
    value as u16
}

/// Narrows a cycle count to `u32` (e.g. a latency bucket boundary).
#[inline]
#[track_caller]
pub fn cycles_to_u32(cycles: u64) -> u32 {
    debug_assert!(
        u32::try_from(cycles).is_ok(),
        "cycle count {cycles} does not fit in u32"
    );
    // simlint: allow(narrowing-cast, reason = "this helper is the sanctioned endpoint for the cast; bound asserted above")
    cycles as u32
}

/// Narrows a `u128` cycle/nanosecond total to `u64`. Saturates rather
/// than wrapping: a saturated duration is visibly wrong, a wrapped one
/// is silently plausible.
#[inline]
pub fn cycles_to_u64(cycles: u128) -> u64 {
    debug_assert!(
        u64::try_from(cycles).is_ok(),
        "cycle count {cycles} does not fit in u64"
    );
    u64::try_from(cycles).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_arithmetic() {
        let a = VirtAddr::new(0x1000);
        assert_eq!((a + 0x10).raw(), 0x1010);
        assert_eq!((a + 0x10) - a, 0x10);
        assert_eq!(a.align_down(0x1000), a);
        assert_eq!((a + 1).align_down(0x1000), a);
        assert_eq!((a + 1).align_up(0x1000).raw(), 0x2000);
    }

    #[test]
    fn phys_addr_frame_index() {
        assert_eq!(PhysAddr::new(0).frame_index(4096), 0);
        assert_eq!(PhysAddr::new(4095).frame_index(4096), 0);
        assert_eq!(PhysAddr::new(4096).frame_index(4096), 1);
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = VaRange::new(VirtAddr::new(100), 50);
        assert!(r.contains(VirtAddr::new(100)));
        assert!(r.contains(VirtAddr::new(149)));
        assert!(!r.contains(VirtAddr::new(150)));
        assert!(!r.contains(VirtAddr::new(99)));

        let s = VaRange::new(VirtAddr::new(149), 1);
        assert!(r.overlaps(&s));
        let t = VaRange::new(VirtAddr::new(150), 10);
        assert!(!r.overlaps(&t));
        let empty = VaRange::new(VirtAddr::new(120), 0);
        assert!(!r.overlaps(&empty));
    }

    #[test]
    fn range_page_indices() {
        let r = VaRange::new(VirtAddr::new(4000), 200);
        // Spans the boundary between pages 0 and 1.
        let pages: Vec<u64> = r.page_indices(4096).collect();
        assert_eq!(pages, vec![0, 1]);

        let r2 = VaRange::new(VirtAddr::new(0), 4096);
        assert_eq!(r2.page_indices(4096).collect::<Vec<_>>(), vec![0]);

        let empty = VaRange::new(VirtAddr::new(123), 0);
        assert_eq!(empty.page_indices(4096).count(), 0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(VirtAddr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", PhysAddr::new(0xbeef)), "beef");
    }

    #[test]
    fn narrowing_helpers_preserve_in_range_values() {
        assert_eq!(addr_to_index(0), 0);
        assert_eq!(addr_to_index(0xffff), 0xffff);
        assert_eq!(addr_to_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(addr_to_u16(0x3fff), 0x3fff);
        assert_eq!(cycles_to_u32(123_456), 123_456);
        assert_eq!(cycles_to_u64(987_654_321), 987_654_321);
        assert_eq!(cycles_to_u64(u128::from(u64::MAX)), u64::MAX);
    }

    #[test]
    fn cycles_to_u64_saturates() {
        if cfg!(not(debug_assertions)) {
            assert_eq!(cycles_to_u64(u128::from(u64::MAX) + 1), u64::MAX);
        }
    }

    #[cfg(debug_assertions)]
    mod narrowing_bounds {
        use super::super::*;

        #[test]
        #[should_panic(expected = "does not fit in u16")]
        fn addr_to_u16_overflow_asserts() {
            let _ = addr_to_u16(0x1_0000);
        }

        #[test]
        #[should_panic(expected = "does not fit in u32")]
        fn cycles_to_u32_overflow_asserts() {
            let _ = cycles_to_u32(1 << 40);
        }

        #[test]
        #[should_panic(expected = "does not fit in u64")]
        fn cycles_to_u64_overflow_asserts() {
            let _ = cycles_to_u64(u128::from(u64::MAX) + 1);
        }
    }
}
