//! Analytic storage-overhead model reproducing §4.4(1) of the paper.
//!
//! The paper quantifies four overhead categories; the storage category is
//! pure arithmetic over table geometry, which this module reproduces so the
//! benchmark harness can print a paper-vs-measured table. (The hardware area
//! numbers in the paper come from CACTI at 14 nm — an external tool — so area
//! in mm² is explicitly out of scope; see DESIGN.md.)

use crate::aam::AamConfig;
use crate::ast::AtomStatusTable;
use crate::attrs::AtomAttributes;

/// A complete storage-overhead report for one system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageOverhead {
    /// Bytes of the Atom Status Table (per application).
    pub ast_bytes: u64,
    /// Bytes of the Global Attribute Table (per application).
    pub gat_bytes: u64,
    /// Bytes of the Atom Address Map (global).
    pub aam_bytes: u64,
    /// AAM bytes as a fraction of physical memory.
    pub aam_fraction: f64,
}

/// Computes the storage overheads for `atoms_per_app` atoms and the given
/// AAM geometry.
///
/// # Examples
///
/// Reproducing the paper's numbers for an 8 GB system with 256 atoms:
///
/// ```
/// use xmem_core::aam::AamConfig;
/// use xmem_core::overhead::storage_overhead;
///
/// let report = storage_overhead(
///     256,
///     &AamConfig { phys_bytes: 8 << 30, granularity: 512, id_bits: 8 },
/// );
/// assert_eq!(report.ast_bytes, 32);          // "the AST is very small (32B)"
/// assert_eq!(report.aam_bytes, 16 << 20);    // "16MB on a 8GB system"
/// assert!(report.aam_fraction < 0.002);      // "only 0.2% of physical memory"
/// ```
pub fn storage_overhead(atoms_per_app: u64, aam: &AamConfig) -> StorageOverhead {
    StorageOverhead {
        ast_bytes: AtomStatusTable::storage_bytes(),
        gat_bytes: atoms_per_app * AtomAttributes::ENCODED_BYTES,
        aam_bytes: aam.storage_bytes(),
        aam_fraction: aam.overhead_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_report() {
        let report = storage_overhead(256, &AamConfig::default());
        assert_eq!(report.ast_bytes, 32);
        assert_eq!(report.gat_bytes, 256 * 19);
        assert!(report.aam_fraction > 0.0);
    }

    #[test]
    fn low_overhead_variant() {
        // "if we support only 6-bit Atom IDs with a 1KB address range unit,
        // the storage overhead becomes 0.07%"
        let report = storage_overhead(
            64,
            &AamConfig {
                phys_bytes: 8 << 30,
                granularity: 1024,
                id_bits: 6,
            },
        );
        assert!((report.aam_fraction - 0.0007).abs() < 2e-4);
    }

    #[test]
    fn gat_scales_with_atoms() {
        let a = storage_overhead(10, &AamConfig::default());
        let b = storage_overhead(20, &AamConfig::default());
        assert_eq!(b.gat_bytes, 2 * a.gat_bytes);
    }
}
