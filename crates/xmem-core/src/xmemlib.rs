//! `XMemLib`: the application interface to XMem (§3.5.1, §4.1.1, Table 2).
//!
//! The library exposes the three operator families of the atom abstraction:
//!
//! | Operation | Functions | Handled |
//! |---|---|---|
//! | CREATE | [`XMemLib::create_atom`] | in software, at "compile time" |
//! | MAP/UNMAP | [`XMemLib::atom_map`], [`atom_unmap`](XMemLib::atom_unmap), 2D/3D variants | in hardware, via `ATOM_MAP` ISA instructions |
//! | ACTIVATE/DEACTIVATE | [`XMemLib::atom_activate`], [`atom_deactivate`](XMemLib::atom_deactivate) | in hardware, via `ATOM_ACTIVATE` ISA instructions |
//!
//! Per the paper, *multiple invocations of `CreateAtom` at the same place in
//! the program code always return the same Atom ID*: creation is deduplicated
//! by call site ([`CallSite`], conveniently produced by [`crate::call_site!`]).
//! This is what makes attributes statically summarizable into the
//! [atom segment](crate::segment::AtomSegment).
//!
//! Every runtime operation executes exactly one XMem ISA instruction, which
//! is counted in an [`InstCounter`] so the harness
//! can reproduce the paper's instruction-overhead numbers (§4.4(2)).

use crate::addr::{VaRange, VirtAddr};
use crate::amu::{AtomManagementUnit, Mmu};
use crate::atom::{AtomId, StaticAtom};
use crate::attrs::AtomAttributes;
use crate::error::{Result, XMemError};
use crate::isa::{InstCounter, XmemInst};
use crate::segment::AtomSegment;
use std::collections::BTreeMap;

/// A static program location, used to deduplicate `CreateAtom` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSite {
    /// Source file of the call.
    pub file: &'static str,
    /// Line of the call.
    pub line: u32,
}

/// Produces the [`CallSite`] of the invocation point.
///
/// # Examples
///
/// ```
/// let site = xmem_core::call_site!();
/// assert!(site.file.ends_with(".rs"));
/// ```
#[macro_export]
macro_rules! call_site {
    () => {
        $crate::xmemlib::CallSite {
            file: file!(),
            line: line!(),
        }
    };
}

/// The application-facing XMem library.
///
/// # Examples
///
/// ```
/// use xmem_core::xmemlib::XMemLib;
/// use xmem_core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
/// use xmem_core::aam::AamConfig;
/// use xmem_core::addr::{PhysAddr, VirtAddr};
/// use xmem_core::attrs::{AtomAttributes, Reuse};
/// use xmem_core::call_site;
///
/// let mut lib = XMemLib::new();
/// let tile = lib.create_atom(
///     call_site!(),
///     "tile",
///     AtomAttributes::builder().reuse(Reuse(128)).build(),
/// )?;
///
/// let mut amu = AtomManagementUnit::new(AmuConfig {
///     aam: AamConfig { phys_bytes: 1 << 20, ..Default::default() },
///     ..Default::default()
/// });
/// let mmu = IdentityMmu::new();
/// lib.atom_map(&mut amu, &mmu, tile, VirtAddr::new(0x4000), 0x1000)?;
/// lib.atom_activate(&mut amu, &mmu, tile)?;
/// assert_eq!(amu.active_atom_at(PhysAddr::new(0x4800)), Some(tile));
/// # Ok::<(), xmem_core::error::XMemError>(())
/// ```
#[derive(Debug, Default)]
pub struct XMemLib {
    atoms: Vec<StaticAtom>,
    sites: BTreeMap<CallSite, AtomId>,
    counter: InstCounter,
}

/// Highest usable atom ID: the all-ones encoding is reserved by the
/// [AAM](crate::aam::AtomAddressMap) to mean "no atom".
const MAX_USABLE_ATOMS: usize = AtomId::MAX_ATOMS - 1;

impl XMemLib {
    /// Creates an empty library state for one program.
    pub fn new() -> Self {
        Self::default()
    }

    /// `CreateAtom` (Table 2): creates an atom with immutable attributes and
    /// returns its ID. Repeated calls from the same [`CallSite`] return the
    /// original ID without creating a new atom.
    ///
    /// # Errors
    ///
    /// Returns [`XMemError::TooManyAtoms`] once 255 distinct atoms exist
    /// (ID 255 is reserved).
    pub fn create_atom(
        &mut self,
        site: CallSite,
        label: impl Into<String>,
        attrs: AtomAttributes,
    ) -> Result<AtomId> {
        if let Some(&id) = self.sites.get(&site) {
            return Ok(id);
        }
        if self.atoms.len() >= MAX_USABLE_ATOMS {
            return Err(XMemError::TooManyAtoms {
                limit: MAX_USABLE_ATOMS,
            });
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push(StaticAtom::new(id, label, attrs));
        self.sites.insert(site, id);
        Ok(id)
    }

    /// The compile-time summary of all created atoms (the binary's atom
    /// segment, §3.5.2).
    pub fn segment(&self) -> AtomSegment {
        let mut seg = AtomSegment::new();
        for atom in &self.atoms {
            seg.push(atom.clone());
        }
        seg
    }

    /// The static record of `id`, if created.
    pub fn atom(&self, id: AtomId) -> Option<&StaticAtom> {
        self.atoms.get(id.index())
    }

    /// Number of created atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The XMem instruction counter (for §4.4(2) accounting).
    pub fn counter(&self) -> &InstCounter {
        &self.counter
    }

    /// Mutable access to the instruction counter, letting the CPU model add
    /// ordinary program instructions to the same tally.
    pub fn counter_mut(&mut self) -> &mut InstCounter {
        &mut self.counter
    }

    fn check_atom(&self, id: AtomId) -> Result<()> {
        if id.index() < self.atoms.len() {
            Ok(())
        } else {
            Err(XMemError::UnknownAtom(id))
        }
    }

    fn exec(&mut self, amu: &mut AtomManagementUnit, mmu: &dyn Mmu, inst: XmemInst) -> Result<()> {
        self.counter.count_xmem(1);
        amu.execute(&inst, mmu)
    }

    /// `AtomMap` (Table 2): maps `[start, start+len)` to `id`.
    ///
    /// # Errors
    ///
    /// Fails for unknown atoms or untranslatable addresses.
    pub fn atom_map(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        id: AtomId,
        start: VirtAddr,
        len: u64,
    ) -> Result<()> {
        self.check_atom(id)?;
        self.exec(
            amu,
            mmu,
            XmemInst::Map {
                atom: id,
                range: VaRange::new(start, len),
            },
        )
    }

    /// `AtomUnmap` (Table 2): removes any atom mapping from the range.
    ///
    /// # Errors
    ///
    /// Fails for untranslatable addresses.
    pub fn atom_unmap(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        start: VirtAddr,
        len: u64,
    ) -> Result<()> {
        self.exec(
            amu,
            mmu,
            XmemInst::Unmap {
                range: VaRange::new(start, len),
            },
        )
    }

    /// `AtomMap2D` (Table 2): maps a `size_x` × `size_y` block inside a
    /// structure with `len_x`-byte rows.
    ///
    /// # Errors
    ///
    /// Fails for unknown atoms or untranslatable addresses.
    #[allow(clippy::too_many_arguments)]
    pub fn atom_map_2d(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        id: AtomId,
        base: VirtAddr,
        size_x: u64,
        size_y: u64,
        len_x: u64,
    ) -> Result<()> {
        self.check_atom(id)?;
        self.exec(
            amu,
            mmu,
            XmemInst::Map2d {
                atom: id,
                base,
                size_x,
                size_y,
                len_x,
            },
        )
    }

    /// `AtomUnmap2D`: unmaps a 2D block (same geometry as
    /// [`Self::atom_map_2d`]).
    ///
    /// # Errors
    ///
    /// Fails for untranslatable addresses.
    pub fn atom_unmap_2d(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        base: VirtAddr,
        size_x: u64,
        size_y: u64,
        len_x: u64,
    ) -> Result<()> {
        self.exec(
            amu,
            mmu,
            XmemInst::Unmap2d {
                base,
                size_x,
                size_y,
                len_x,
            },
        )
    }

    /// `AtomMap3D` (Table 2): maps a 3D block (`size_x` bytes × `size_y`
    /// rows × `size_z` planes) inside a structure with `len_x`-byte rows and
    /// `len_y`-row planes.
    ///
    /// # Errors
    ///
    /// Fails for unknown atoms or untranslatable addresses.
    #[allow(clippy::too_many_arguments)]
    pub fn atom_map_3d(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        id: AtomId,
        base: VirtAddr,
        size_x: u64,
        size_y: u64,
        size_z: u64,
        len_x: u64,
        len_y: u64,
    ) -> Result<()> {
        self.check_atom(id)?;
        self.exec(
            amu,
            mmu,
            XmemInst::Map3d {
                atom: id,
                base,
                size_x,
                size_y,
                size_z,
                len_x,
                len_y,
            },
        )
    }

    /// `AtomActivate` (Table 2): the atom's attributes become valid for all
    /// mapped data.
    ///
    /// # Errors
    ///
    /// Fails for unknown atoms.
    pub fn atom_activate(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        id: AtomId,
    ) -> Result<()> {
        self.check_atom(id)?;
        self.exec(amu, mmu, XmemInst::Activate(id))
    }

    /// `AtomDeactivate` (Table 2): the atom's attributes become invalid.
    ///
    /// # Errors
    ///
    /// Fails for unknown atoms.
    pub fn atom_deactivate(
        &mut self,
        amu: &mut AtomManagementUnit,
        mmu: &dyn Mmu,
        id: AtomId,
    ) -> Result<()> {
        self.check_atom(id)?;
        self.exec(amu, mmu, XmemInst::Deactivate(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aam::AamConfig;
    use crate::amu::{AmuConfig, IdentityMmu};
    use crate::attrs::Reuse;

    fn amu() -> AtomManagementUnit {
        AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: 1 << 20,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn create_dedups_by_site() {
        let mut lib = XMemLib::new();
        let site = CallSite {
            file: "a.rs",
            line: 10,
        };
        let a = lib
            .create_atom(site, "x", AtomAttributes::default())
            .unwrap();
        let b = lib
            .create_atom(site, "x", AtomAttributes::default())
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(lib.atom_count(), 1);

        let other = CallSite {
            file: "a.rs",
            line: 11,
        };
        let c = lib
            .create_atom(other, "y", AtomAttributes::default())
            .unwrap();
        assert_ne!(a, c);
        assert_eq!(lib.atom_count(), 2);
    }

    #[test]
    fn ids_are_consecutive_from_zero() {
        let mut lib = XMemLib::new();
        for i in 0..5u32 {
            let id = lib
                .create_atom(
                    CallSite { file: "f", line: i },
                    "a",
                    AtomAttributes::default(),
                )
                .unwrap();
            assert_eq!(id.raw() as u32, i);
        }
    }

    #[test]
    fn atom_limit_enforced() {
        let mut lib = XMemLib::new();
        for i in 0..255u32 {
            lib.create_atom(
                CallSite { file: "f", line: i },
                "a",
                AtomAttributes::default(),
            )
            .unwrap();
        }
        let err = lib
            .create_atom(
                CallSite {
                    file: "f",
                    line: 999,
                },
                "a",
                AtomAttributes::default(),
            )
            .unwrap_err();
        assert!(matches!(err, XMemError::TooManyAtoms { limit: 255 }));
    }

    #[test]
    fn operations_count_instructions() {
        let mut lib = XMemLib::new();
        let mut amu = amu();
        let mmu = IdentityMmu::new();
        let id = lib
            .create_atom(call_site!(), "t", AtomAttributes::default())
            .unwrap();
        lib.atom_map(&mut amu, &mmu, id, VirtAddr::new(0), 4096)
            .unwrap();
        lib.atom_activate(&mut amu, &mmu, id).unwrap();
        lib.atom_deactivate(&mut amu, &mmu, id).unwrap();
        lib.atom_unmap(&mut amu, &mmu, VirtAddr::new(0), 4096)
            .unwrap();
        // CREATE is compile-time: not counted. The 4 runtime ops are.
        assert_eq!(lib.counter().xmem_instructions(), 4);
    }

    #[test]
    fn unknown_atom_rejected() {
        let mut lib = XMemLib::new();
        let mut amu = amu();
        let mmu = IdentityMmu::new();
        let err = lib
            .atom_activate(&mut amu, &mmu, AtomId::new(0))
            .unwrap_err();
        assert!(matches!(err, XMemError::UnknownAtom(_)));
    }

    #[test]
    fn map_3d_through_the_library() {
        let mut lib = XMemLib::new();
        let mut amu = amu();
        let mmu = IdentityMmu::new();
        let id = lib
            .create_atom(call_site!(), "cube", AtomAttributes::default())
            .unwrap();
        // A 512-byte-wide, 2-row, 2-plane block: rows pitch 4 KB, planes
        // pitch 8 rows.
        lib.atom_map_3d(
            &mut amu,
            &mmu,
            id,
            VirtAddr::new(0x8000),
            512,
            2,
            2,
            4096,
            8,
        )
        .unwrap();
        lib.atom_activate(&mut amu, &mmu, id).unwrap();
        use crate::addr::PhysAddr;
        // Plane 0 row 0 and plane 1 row 1 both resolve.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x8000)), Some(id));
        let plane1_row1 = 0x8000 + 4096 * 8 + 4096;
        assert_eq!(amu.active_atom_at(PhysAddr::new(plane1_row1)), Some(id));
        // Outside the block width: unmapped.
        assert_eq!(amu.active_atom_at(PhysAddr::new(0x8000 + 2048)), None);
        assert_eq!(lib.counter().xmem_instructions(), 2);
    }

    #[test]
    fn segment_matches_created_atoms() {
        let mut lib = XMemLib::new();
        lib.create_atom(
            call_site!(),
            "alpha",
            AtomAttributes::builder().reuse(Reuse(1)).build(),
        )
        .unwrap();
        lib.create_atom(call_site!(), "beta", AtomAttributes::default())
            .unwrap();
        let seg = lib.segment();
        assert_eq!(seg.atoms().len(), 2);
        assert_eq!(seg.atoms()[0].label(), "alpha");
        assert_eq!(seg.atoms()[1].label(), "beta");
    }
}
