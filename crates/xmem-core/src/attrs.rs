//! Atom attributes: the program semantics an atom conveys (§3.3 of the paper).
//!
//! The paper defines three classes of attributes, all of which are
//! represented here:
//!
//! 1. **Data value properties** — the type of the values ([`DataType`]) and a
//!    bitset of properties of the data itself ([`DataProps`]: sparse, pointer,
//!    index, approximable, ...).
//! 2. **Access properties** — [`AccessPattern`] (regular with a stride,
//!    irregular-but-repeatable, or non-deterministic), [`RwChar`]
//!    (read/write characteristics), and [`AccessIntensity`] (an 8-bit
//!    relative "hotness" ranking).
//! 3. **Data locality** — [`Reuse`] (an 8-bit relative reuse amount; the
//!    working-set size is inferred from the size of the data mapped to the
//!    atom and is therefore *not* stored here).
//!
//! Attributes are **immutable once an atom is created** (§3.2); to change the
//! semantics of a region of data, a new atom is created and the data is
//! remapped. This is what lets the whole attribute table be summarized at
//! compile time and conveyed at load time.

use std::fmt;

/// The primitive type of the values stored in the data an atom describes.
///
/// Used e.g. by memory/cache compression to select a type-specific
/// compression algorithm (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 8-bit signed integer data.
    Int8,
    /// 16-bit signed integer data.
    Int16,
    /// 32-bit signed integer data.
    Int32,
    /// 64-bit signed integer data.
    Int64,
    /// 32-bit IEEE-754 floating point data.
    Float32,
    /// 64-bit IEEE-754 floating point data.
    Float64,
    /// 8-bit character data.
    Char8,
    /// Anything else (structs, unions, opaque bytes).
    Other,
}

impl DataType {
    /// Size in bytes of one element of this type, if statically known.
    ///
    /// # Examples
    ///
    /// ```
    /// use xmem_core::attrs::DataType;
    /// assert_eq!(DataType::Float64.element_size(), Some(8));
    /// assert_eq!(DataType::Other.element_size(), None);
    /// ```
    pub const fn element_size(self) -> Option<u64> {
        match self {
            DataType::Int8 | DataType::Char8 => Some(1),
            DataType::Int16 => Some(2),
            DataType::Int32 | DataType::Float32 => Some(4),
            DataType::Int64 | DataType::Float64 => Some(8),
            DataType::Other => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int8 => "INT8",
            DataType::Int16 => "INT16",
            DataType::Int32 => "INT32",
            DataType::Int64 => "INT64",
            DataType::Float32 => "FLOAT32",
            DataType::Float64 => "FLOAT64",
            DataType::Char8 => "CHAR8",
            DataType::Other => "OTHER",
        };
        f.write_str(s)
    }
}

/// An extensible bitset of data-value properties (§3.3(1)).
///
/// The paper implements this "as an extensible list using a single bit for
/// each attribute"; we mirror that with a `u32` bitset. New properties can be
/// added without breaking the binary atom-segment format (see
/// [`crate::segment`]), which is the paper's forward-compatibility story.
///
/// # Examples
///
/// ```
/// use xmem_core::attrs::DataProps;
///
/// let p = DataProps::SPARSE | DataProps::POINTER;
/// assert!(p.contains(DataProps::SPARSE));
/// assert!(!p.contains(DataProps::APPROXIMABLE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DataProps(u32);

impl DataProps {
    /// No properties set.
    pub const EMPTY: DataProps = DataProps(0);
    /// The data pool is mostly zeros / has low information density.
    pub const SPARSE: DataProps = DataProps(1 << 0);
    /// The values are pointers into other data structures.
    pub const POINTER: DataProps = DataProps(1 << 1);
    /// The values are indices into other data structures.
    pub const INDEX: DataProps = DataProps(1 << 2);
    /// The application tolerates approximation of these values.
    pub const APPROXIMABLE: DataProps = DataProps(1 << 3);
    /// The values compress well with general-purpose algorithms.
    pub const COMPRESSIBLE: DataProps = DataProps(1 << 4);
    /// The data is shared between threads.
    pub const SHARED: DataProps = DataProps(1 << 5);
    /// The data is private to a single thread.
    pub const PRIVATE: DataProps = DataProps(1 << 6);

    /// Creates a property set from raw bits (unknown bits are preserved,
    /// supporting forward compatibility of the segment format).
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        DataProps(bits)
    }

    /// Returns the raw bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns `true` if all properties in `other` are set in `self`.
    #[inline]
    pub const fn contains(self, other: DataProps) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no property is set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the union of the two property sets.
    #[inline]
    pub const fn union(self, other: DataProps) -> DataProps {
        DataProps(self.0 | other.0)
    }
}

impl std::ops::BitOr for DataProps {
    type Output = DataProps;
    #[inline]
    fn bitor(self, rhs: DataProps) -> DataProps {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for DataProps {
    #[inline]
    fn bitor_assign(&mut self, rhs: DataProps) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for DataProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("NONE");
        }
        let names = [
            (DataProps::SPARSE, "SPARSE"),
            (DataProps::POINTER, "POINTER"),
            (DataProps::INDEX, "INDEX"),
            (DataProps::APPROXIMABLE, "APPROXIMABLE"),
            (DataProps::COMPRESSIBLE, "COMPRESSIBLE"),
            (DataProps::SHARED, "SHARED"),
            (DataProps::PRIVATE, "PRIVATE"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// The access pattern of the data mapped to an atom (§3.3(2), `AccessPattern`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// A regular pattern with a repeated stride in bytes.
    ///
    /// A stride of 8 with `Float64` data means fully sequential element
    /// accesses; a stride of one row means column-major walks, etc.
    Regular {
        /// Stride between consecutive accesses, in bytes (may be negative).
        stride: i64,
    },
    /// Repeatable within the data range but with no fixed stride
    /// (e.g. traversals of a constant graph).
    Irregular,
    /// No repeated pattern at all (e.g. hash-table probes, randomized walks).
    NonDet,
}

impl AccessPattern {
    /// Convenience constructor for a sequential pattern over elements of
    /// `elem_size` bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use xmem_core::attrs::AccessPattern;
    /// assert_eq!(
    ///     AccessPattern::sequential(8),
    ///     AccessPattern::Regular { stride: 8 }
    /// );
    /// ```
    pub const fn sequential(elem_size: i64) -> Self {
        AccessPattern::Regular { stride: elem_size }
    }

    /// Returns the stride if the pattern is regular.
    pub const fn stride(self) -> Option<i64> {
        match self {
            AccessPattern::Regular { stride } => Some(stride),
            _ => None,
        }
    }

    /// Returns `true` if the pattern is amenable to a stride prefetcher.
    pub const fn is_prefetchable(self) -> bool {
        matches!(self, AccessPattern::Regular { .. })
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Regular { stride } => write!(f, "REGULAR(stride={stride})"),
            AccessPattern::Irregular => f.write_str("IRREGULAR"),
            AccessPattern::NonDet => f.write_str("NON_DET"),
        }
    }
}

/// Read/write characteristics of the data at a given time (§3.3(2), `RWChar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RwChar {
    /// The data is only read while the atom is active.
    ReadOnly,
    /// The data is both read and written (the default, weakest statement).
    #[default]
    ReadWrite,
    /// The data is only written while the atom is active.
    WriteOnly,
}

impl fmt::Display for RwChar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RwChar::ReadOnly => "READ_ONLY",
            RwChar::ReadWrite => "READ_WRITE",
            RwChar::WriteOnly => "WRITE_ONLY",
        };
        f.write_str(s)
    }
}

/// Relative access frequency ("hotness") of the data, 0 = coldest (§3.3(2)).
///
/// An 8-bit ranking *between* atoms, not an absolute rate — exactly as in the
/// paper, which stresses architecture-agnostic, relative expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AccessIntensity(pub u8);

impl AccessIntensity {
    /// The lowest intensity (cold data).
    pub const MIN: AccessIntensity = AccessIntensity(0);
    /// The highest intensity (hottest data).
    pub const MAX: AccessIntensity = AccessIntensity(u8::MAX);
}

impl fmt::Display for AccessIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Relative data reuse, 0 = no reuse (§3.3(3)).
///
/// Software cache optimizations (tiling, hash-join partitioning) express the
/// high-reuse working set by mapping it to an atom with a high `Reuse` value;
/// the cache then prioritizes keeping such atoms resident (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reuse(pub u8);

impl Reuse {
    /// No reuse: streaming data that should not pollute the cache.
    pub const NONE: Reuse = Reuse(0);
    /// Maximum relative reuse.
    pub const MAX: Reuse = Reuse(u8::MAX);
}

impl fmt::Display for Reuse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The complete, immutable attribute record of an atom.
///
/// Construct with [`AtomAttributes::builder`]. Every field is optional in
/// spirit — XMem is hint-based, so "unknown" is always a valid value — but
/// we keep concrete defaults (`ReadWrite`, `NonDet`, zero intensity/reuse)
/// that translate to "no special treatment" in every consumer.
///
/// # Examples
///
/// ```
/// use xmem_core::attrs::{AtomAttributes, AccessPattern, DataType, Reuse};
///
/// let attrs = AtomAttributes::builder()
///     .data_type(DataType::Float64)
///     .access_pattern(AccessPattern::sequential(8))
///     .reuse(Reuse(200))
///     .build();
/// assert_eq!(attrs.data_type(), Some(DataType::Float64));
/// assert_eq!(attrs.reuse(), Reuse(200));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomAttributes {
    data_type: Option<DataType>,
    props: DataProps,
    pattern: AccessPattern,
    rw: RwChar,
    intensity: AccessIntensity,
    reuse: Reuse,
}

impl Default for AtomAttributes {
    fn default() -> Self {
        AtomAttributes {
            data_type: None,
            props: DataProps::EMPTY,
            pattern: AccessPattern::NonDet,
            rw: RwChar::ReadWrite,
            intensity: AccessIntensity::MIN,
            reuse: Reuse::NONE,
        }
    }
}

impl AtomAttributes {
    /// The paper's encoded size of one atom's attributes: 19 bytes (§4.4(1)).
    ///
    /// Used by the storage-overhead model ([`crate::overhead`]).
    pub const ENCODED_BYTES: u64 = 19;

    /// Starts building an attribute record.
    pub fn builder() -> AtomAttributesBuilder {
        AtomAttributesBuilder::new()
    }

    /// The data type, if expressed.
    pub fn data_type(&self) -> Option<DataType> {
        self.data_type
    }

    /// The data-value property bitset.
    pub fn props(&self) -> DataProps {
        self.props
    }

    /// The access pattern.
    pub fn access_pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// The read/write characteristics.
    pub fn rw(&self) -> RwChar {
        self.rw
    }

    /// The relative access intensity.
    pub fn intensity(&self) -> AccessIntensity {
        self.intensity
    }

    /// The relative data reuse.
    pub fn reuse(&self) -> Reuse {
        self.reuse
    }
}

/// Builder for [`AtomAttributes`] (non-consuming terminal per the Rust API
/// guidelines would not help here; the builder is tiny and `build` copies).
///
/// # Examples
///
/// ```
/// use xmem_core::attrs::{AtomAttributes, RwChar, AccessIntensity};
///
/// let a = AtomAttributes::builder()
///     .rw(RwChar::ReadOnly)
///     .intensity(AccessIntensity(10))
///     .build();
/// assert_eq!(a.rw(), RwChar::ReadOnly);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AtomAttributesBuilder {
    attrs: AtomAttributes,
}

impl AtomAttributesBuilder {
    /// Creates a builder with all-default ("no hint") attributes.
    pub fn new() -> Self {
        Self {
            attrs: AtomAttributes::default(),
        }
    }

    /// Sets the data type.
    pub fn data_type(mut self, t: DataType) -> Self {
        self.attrs.data_type = Some(t);
        self
    }

    /// Sets the data-value property bitset.
    pub fn props(mut self, p: DataProps) -> Self {
        self.attrs.props = p;
        self
    }

    /// Sets the access pattern.
    pub fn access_pattern(mut self, p: AccessPattern) -> Self {
        self.attrs.pattern = p;
        self
    }

    /// Sets the read/write characteristics.
    pub fn rw(mut self, rw: RwChar) -> Self {
        self.attrs.rw = rw;
        self
    }

    /// Sets the relative access intensity.
    pub fn intensity(mut self, i: AccessIntensity) -> Self {
        self.attrs.intensity = i;
        self
    }

    /// Sets the relative reuse.
    pub fn reuse(mut self, r: Reuse) -> Self {
        self.attrs.reuse = r;
        self
    }

    /// Finalizes the attribute record.
    pub fn build(self) -> AtomAttributes {
        self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_props_bit_ops() {
        let p = DataProps::SPARSE | DataProps::INDEX;
        assert!(p.contains(DataProps::SPARSE));
        assert!(p.contains(DataProps::INDEX));
        assert!(!p.contains(DataProps::POINTER));
        assert!(!p.contains(DataProps::SPARSE | DataProps::POINTER));
        assert!(DataProps::EMPTY.is_empty());
        let mut q = DataProps::EMPTY;
        q |= DataProps::APPROXIMABLE;
        assert!(q.contains(DataProps::APPROXIMABLE));
    }

    #[test]
    fn data_props_display() {
        assert_eq!(DataProps::EMPTY.to_string(), "NONE");
        assert_eq!(
            (DataProps::SPARSE | DataProps::POINTER).to_string(),
            "SPARSE|POINTER"
        );
    }

    #[test]
    fn data_props_forward_compat_bits() {
        // Unknown future bits round-trip unchanged.
        let p = DataProps::from_bits(0x8000_0001);
        assert_eq!(p.bits(), 0x8000_0001);
        assert!(p.contains(DataProps::SPARSE));
    }

    #[test]
    fn access_pattern_helpers() {
        assert_eq!(AccessPattern::sequential(4).stride(), Some(4));
        assert!(AccessPattern::sequential(4).is_prefetchable());
        assert!(!AccessPattern::Irregular.is_prefetchable());
        assert_eq!(AccessPattern::NonDet.stride(), None);
    }

    #[test]
    fn builder_roundtrip() {
        let a = AtomAttributes::builder()
            .data_type(DataType::Int32)
            .props(DataProps::SPARSE)
            .access_pattern(AccessPattern::Irregular)
            .rw(RwChar::WriteOnly)
            .intensity(AccessIntensity(7))
            .reuse(Reuse(3))
            .build();
        assert_eq!(a.data_type(), Some(DataType::Int32));
        assert_eq!(a.props(), DataProps::SPARSE);
        assert_eq!(a.access_pattern(), AccessPattern::Irregular);
        assert_eq!(a.rw(), RwChar::WriteOnly);
        assert_eq!(a.intensity(), AccessIntensity(7));
        assert_eq!(a.reuse(), Reuse(3));
    }

    #[test]
    fn default_attrs_are_no_hint() {
        let a = AtomAttributes::default();
        assert_eq!(a.data_type(), None);
        assert!(a.props().is_empty());
        assert_eq!(a.access_pattern(), AccessPattern::NonDet);
        assert_eq!(a.rw(), RwChar::ReadWrite);
        assert_eq!(a.reuse(), Reuse::NONE);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(DataType::Int8.element_size(), Some(1));
        assert_eq!(DataType::Int16.element_size(), Some(2));
        assert_eq!(DataType::Int32.element_size(), Some(4));
        assert_eq!(DataType::Int64.element_size(), Some(8));
        assert_eq!(DataType::Float32.element_size(), Some(4));
        assert_eq!(DataType::Char8.element_size(), Some(1));
    }
}
