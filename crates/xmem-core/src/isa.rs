//! The XMem ISA extension (§4.1.3) and instruction-overhead accounting (§4.4(2)).
//!
//! The paper adds two instruction pairs to the ISA:
//!
//! * `ATOM_MAP` / `ATOM_UNMAP` — tell the [AMU](crate::amu::AtomManagementUnit)
//!   to update the address ranges of an atom (1D, 2D, and 3D forms exist as
//!   library calls; the mapping parameters are passed in AMU-specific
//!   registers).
//! * `ATOM_ACTIVATE` / `ATOM_DEACTIVATE` — update the atom's active status in
//!   the [AST](crate::ast::AtomStatusTable).
//!
//! Components query the AMU with an `ATOM_LOOKUP` request (not an ISA
//! instruction — it travels on the on-chip interconnect).
//!
//! This module defines the instruction encoding used by the simulator plus
//! the counters that reproduce the paper's instruction-overhead measurement
//! (0.014% average, 0.2% maximum additional instructions).

use crate::addr::VaRange;
use crate::atom::AtomId;
use std::fmt;

/// A decoded XMem ISA instruction as delivered to the AMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmemInst {
    /// Map a linear virtual address range to an atom.
    Map {
        /// Target atom.
        atom: AtomId,
        /// The linear VA range to map.
        range: VaRange,
    },
    /// Unmap a linear virtual address range (from whatever atom covers it).
    Unmap {
        /// The linear VA range to unmap.
        range: VaRange,
    },
    /// Map a 2D block to an atom (`AtomMap2D` in Table 2).
    ///
    /// The block is `size_x` bytes wide and `size_y` rows tall, inside a 2D
    /// structure whose rows are `len_x` bytes long. The AMU linearizes this
    /// into per-row ranges at AAM granularity (§4.2(4)) — but it is a single
    /// ISA instruction, with parameters passed in AMU-specific registers.
    Map2d {
        /// Target atom (the all-ones ID is reserved).
        atom: AtomId,
        /// Base virtual address of the block.
        base: crate::addr::VirtAddr,
        /// Width of the block in bytes.
        size_x: u64,
        /// Height of the block in rows.
        size_y: u64,
        /// Row pitch of the enclosing structure in bytes.
        len_x: u64,
    },
    /// Unmap a 2D block (same geometry as [`XmemInst::Map2d`]).
    Unmap2d {
        /// Base virtual address of the block.
        base: crate::addr::VirtAddr,
        /// Width of the block in bytes.
        size_x: u64,
        /// Height of the block in rows.
        size_y: u64,
        /// Row pitch of the enclosing structure in bytes.
        len_x: u64,
    },
    /// Map a 3D block to an atom (`AtomMap3D` in Table 2).
    Map3d {
        /// Target atom (the all-ones ID is reserved).
        atom: AtomId,
        /// Base virtual address of the block.
        base: crate::addr::VirtAddr,
        /// Width of the block in bytes.
        size_x: u64,
        /// Height of the block in rows.
        size_y: u64,
        /// Depth of the block in planes.
        size_z: u64,
        /// Row pitch of the enclosing structure in bytes.
        len_x: u64,
        /// Plane pitch of the enclosing structure in rows.
        len_y: u64,
    },
    /// Mark the atom's attributes valid for all data it maps.
    Activate(AtomId),
    /// Mark the atom's attributes invalid.
    Deactivate(AtomId),
}

impl fmt::Display for XmemInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmemInst::Map { atom, range } => {
                write!(f, "ATOM_MAP {atom}, [{}, {})", range.start(), range.end())
            }
            XmemInst::Unmap { range } => {
                write!(f, "ATOM_UNMAP [{}, {})", range.start(), range.end())
            }
            XmemInst::Map2d {
                atom,
                base,
                size_x,
                size_y,
                len_x,
            } => write!(
                f,
                "ATOM_MAP2D {atom}, base={base}, {size_x}x{size_y} pitch {len_x}"
            ),
            XmemInst::Unmap2d {
                base,
                size_x,
                size_y,
                len_x,
            } => write!(
                f,
                "ATOM_UNMAP2D base={base}, {size_x}x{size_y} pitch {len_x}"
            ),
            XmemInst::Map3d {
                atom,
                base,
                size_x,
                size_y,
                size_z,
                len_x,
                len_y,
            } => write!(
                f,
                "ATOM_MAP3D {atom}, base={base}, {size_x}x{size_y}x{size_z} pitch {len_x}/{len_y}"
            ),
            XmemInst::Activate(a) => write!(f, "ATOM_ACTIVATE {a}"),
            XmemInst::Deactivate(a) => write!(f, "ATOM_DEACTIVATE {a}"),
        }
    }
}

/// Counts program and XMem instructions to reproduce §4.4(2).
///
/// # Examples
///
/// ```
/// use xmem_core::isa::InstCounter;
///
/// let mut c = InstCounter::new();
/// c.count_program(10_000);
/// c.count_xmem(2);
/// assert_eq!(c.xmem_instructions(), 2);
/// assert!((c.overhead_fraction() - 2.0 / 10_002.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstCounter {
    program: u64,
    xmem: u64,
}

impl InstCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` ordinary program instructions.
    #[inline]
    pub fn count_program(&mut self, n: u64) {
        self.program += n;
    }

    /// Adds `n` XMem ISA instructions.
    #[inline]
    pub fn count_xmem(&mut self, n: u64) {
        self.xmem += n;
    }

    /// Ordinary program instructions executed.
    pub fn program_instructions(&self) -> u64 {
        self.program
    }

    /// XMem instructions executed.
    pub fn xmem_instructions(&self) -> u64 {
        self.xmem
    }

    /// Total instructions (program + XMem).
    pub fn total_instructions(&self) -> u64 {
        self.program + self.xmem
    }

    /// Fraction of all executed instructions that were XMem instructions.
    ///
    /// Returns 0.0 when nothing has executed.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            0.0
        } else {
            self.xmem as f64 / total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &InstCounter) {
        self.program += other.program;
        self.xmem += other.xmem;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;

    #[test]
    fn display_encodings() {
        let map = XmemInst::Map {
            atom: AtomId::new(1),
            range: VaRange::new(VirtAddr::new(0x100), 0x40),
        };
        assert_eq!(map.to_string(), "ATOM_MAP atom#1, [0x100, 0x140)");
        assert_eq!(
            XmemInst::Activate(AtomId::new(7)).to_string(),
            "ATOM_ACTIVATE atom#7"
        );
        assert_eq!(
            XmemInst::Deactivate(AtomId::new(7)).to_string(),
            "ATOM_DEACTIVATE atom#7"
        );
        let unmap = XmemInst::Unmap {
            range: VaRange::new(VirtAddr::new(0), 16),
        };
        assert_eq!(unmap.to_string(), "ATOM_UNMAP [0x0, 0x10)");
    }

    #[test]
    fn counter_zero_division() {
        let c = InstCounter::new();
        assert_eq!(c.overhead_fraction(), 0.0);
    }

    #[test]
    fn counter_merge() {
        let mut a = InstCounter::new();
        a.count_program(100);
        a.count_xmem(1);
        let mut b = InstCounter::new();
        b.count_program(50);
        b.count_xmem(2);
        a.merge(&b);
        assert_eq!(a.program_instructions(), 150);
        assert_eq!(a.xmem_instructions(), 3);
        assert_eq!(a.total_instructions(), 153);
    }
}
