//! Multi-core simulation: private L1/L2 per core, shared L3 and DRAM —
//! the Table 3 machine shape, and the setting both use cases presume
//! (§5.1: cache space changes "as a result of co-running applications";
//! §5.2(2): the pinning algorithm "takes the active atoms in *all the
//! cores*"; §6.2: placement considers "the program semantics of *all
//! co-running applications*").
//!
//! Each core replays a pre-recorded workload log
//! ([`workloads::sink::LogSink`]); the driver advances whichever core is
//! earliest in simulated time, so accesses from different cores interleave
//! at the shared L3 and memory controller in timestamp order.
//!
//! # Renaming and shared segments
//!
//! Atom IDs and virtual addresses from different workloads are renamed
//! into one shared space (one AMU serves the machine, as in the paper).
//! By default the renaming is *disjoint*: every `Create`/`Alloc` in every
//! log gets its own global atom and physical allocation, so co-runners
//! never touch each other's data. Workloads opt into sharing explicitly
//! through [`workloads::sink::TraceSink::create_atom_shared`] and
//! [`workloads::sink::TraceSink::alloc_shared`]: events carrying the same
//! `key` resolve to *one* global atom / one physical segment across all
//! cores (the first replayed event creates it, later ones alias it, and
//! their XMem map/activate hints are reference-counted so the shared atom
//! is mapped once and stays active while any core uses it). Shared atoms
//! must use linear (1-D) maps.
//!
//! # Coherence
//!
//! Under [`CoherenceMode::None`] (the default) the private hierarchies
//! never observe each other's writes — only correct for disjoint data,
//! and byte-identical to the original co-run model. Shared-data scenarios
//! require [`CoherenceMode::Mesi`], which routes every access through the
//! MESI snooping engine ([`crate::coherence`]) before falling through to
//! the shared L3/DRAM; coherence writebacks and invalidations surface in
//! [`CorunReport::bus`] and the per-cache snoop counters.

use crate::coherence::{mesi_access, MesiDomains};
use crate::config::{CoherenceMode, FramePolicyKind, MultiCoreConfig};
use cache_sim::cache::{Cache, CacheStats, Eviction, InsertPriority};
use cache_sim::coherence::{BusStats, SnoopBus};
use cache_sim::pin::{select_pinned, PinCandidate};
use cache_sim::prefetch::MultiStridePrefetcher;
use cache_sim::XmemMode;
use cpu_sim::batch::{MemoryPath, OpAttrs};
use cpu_sim::core::{Core, CoreStats};
use dram_sim::{Dram, DramStats};
use os_sim::loader::load_segment;
use os_sim::os::Os;
use os_sim::placement::FramePolicy;
use std::collections::{BTreeMap, BTreeSet};
use workloads::sink::TraceEvent;
use xmem_core::aam::AamConfig;
use xmem_core::addr::{PhysAddr, VirtAddr};
use xmem_core::alb::AlbStats;
use xmem_core::amu::{AmuConfig, AtomManagementUnit, Mmu};
use xmem_core::atom::{AtomId, StaticAtom};
use xmem_core::attrs::{DataProps, RwChar};
use xmem_core::pat::Pat;
use xmem_core::process::ProcessId;
use xmem_core::segment::AtomSegment;
use xmem_core::translate::{AttributeTranslator, CachePrimitive, PrefetcherPrimitive};
use xmem_core::xmemlib::{CallSite, XMemLib};

/// Result of a co-run: per-core core statistics plus the shared components.
#[derive(Debug, Clone)]
pub struct CorunReport {
    /// Per-core execution statistics, in core order.
    pub cores: Vec<CoreStats>,
    /// Per-core L1 statistics (private caches; includes snoop counters
    /// under MESI).
    pub l1s: Vec<CacheStats>,
    /// Per-core L2 statistics (private caches).
    pub l2s: Vec<CacheStats>,
    /// The shared L3.
    pub l3: CacheStats,
    /// The shared memory controller/DRAM.
    pub dram: DramStats,
    /// The shared AMU's lookaside buffer.
    pub alb: AlbStats,
    /// Snooping-bus traffic (all zero under [`CoherenceMode::None`]).
    pub bus: BusStats,
}

impl CorunReport {
    /// Cycles of core `i` (its private finish time).
    pub fn cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }
}

/// The shared memory system every core's accesses flow into.
#[derive(Debug)]
struct SharedMem {
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    l3: Cache,
    dram: Dram,
    stride_pfs: Vec<Option<MultiStridePrefetcher>>,
    amu: AtomManagementUnit,
    cache_pat: Pat<CachePrimitive>,
    pf_pat: Pat<PrefetcherPrimitive>,
    os: Os,
    mode: XmemMode,
    coherence: CoherenceMode,
    bus: SnoopBus,
    pinned: Vec<AtomId>,
    /// Atoms excluded from pinning (coherence-aware placement: migratory
    /// shared data whose lines bounce between private caches anyway).
    pin_exempt: BTreeSet<AtomId>,
    last_epoch: u64,
    inflight_prefetches: BTreeSet<u64>,
    l1_lat: u64,
    l2_lat: u64,
    l3_lat: u64,
    xmem_prefetch_degree: usize,
    line_bytes: u64,
}

impl SharedMem {
    /// §5.2(2): re-run the greedy pinning over the active atoms of *all*
    /// cores whenever the (shared) AMU epoch changes.
    fn refresh_pinning(&mut self) {
        let epoch = self.amu.epoch();
        if epoch == self.last_epoch {
            return;
        }
        self.last_epoch = epoch;
        if self.mode != XmemMode::Full {
            return;
        }
        let candidates: Vec<PinCandidate> = self
            .amu
            .active_atoms()
            .into_iter()
            .filter_map(|atom| {
                if self.pin_exempt.contains(&atom) {
                    return None;
                }
                let prim = self.cache_pat.get(atom)?;
                prim.pin_candidate.then_some(PinCandidate {
                    atom,
                    reuse: prim.reuse,
                    size_bytes: self.amu.mapped_bytes(atom),
                })
            })
            .collect();
        self.l3.age_pinned();
        self.pinned = select_pinned(&candidates, self.l3.config().size_bytes);
    }

    fn writeback_shared(&mut self, ev: Eviction, now: u64) {
        if ev.dirty {
            let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
        }
    }

    fn guided_prefetch(&mut self, pa: u64, atom: AtomId, t_mem: u64) {
        let Some(prim) = self.pf_pat.get(atom) else {
            return;
        };
        let Some(stride) = prim.stride else {
            return;
        };
        let line = self.line_bytes;
        let forward = stride >= 0;
        let exts = self.amu.extents(atom);
        if exts.is_empty() {
            return;
        }
        let mut ei = exts
            .iter()
            .position(|e| pa >= e.start.raw() && pa < e.start.raw() + e.len)
            .unwrap_or(0);
        let mut pos = pa & !(line - 1);
        let mut targets = Vec::with_capacity(self.xmem_prefetch_degree);
        for _ in 0..self.xmem_prefetch_degree {
            if forward {
                pos += line;
                if pos >= exts[ei].start.raw() + exts[ei].len {
                    ei = (ei + 1) % exts.len();
                    pos = exts[ei].start.raw() & !(line - 1);
                }
            } else {
                let ext_start = exts[ei].start.raw() & !(line - 1);
                if pos <= ext_start {
                    ei = (ei + exts.len() - 1) % exts.len();
                    pos = (exts[ei].start.raw() + exts[ei].len - 1) & !(line - 1);
                } else {
                    pos -= line;
                }
            }
            targets.push(pos);
        }
        let priority = if self.pinned.contains(&atom) {
            InsertPriority::Pinned
        } else {
            InsertPriority::Normal
        };
        for target in targets {
            if self.l3.contains(target) {
                continue;
            }
            let _ = self.dram.serve_prefetch(target, t_mem);
            if let Some(ev) = self.l3.fill(target, false, priority) {
                self.writeback_shared(ev, t_mem);
            }
            if self.inflight_prefetches.len() < (1 << 16) {
                self.inflight_prefetches.insert(target);
            }
        }
    }

    /// One access from `core` (same policy structure as the single-core
    /// [`cache_sim::hierarchy::Hierarchy`], with private L1/L2/prefetcher
    /// and shared L3/DRAM/AMU).
    fn serve_core(&mut self, core: usize, pa: u64, is_write: bool, now: u64) -> u64 {
        if self.coherence == CoherenceMode::Mesi {
            return self.serve_core_mesi(core, pa, is_write, now);
        }
        let line_addr = pa & !(self.line_bytes - 1);
        if self.l1s[core].probe(pa, is_write) {
            return self.l1_lat;
        }
        if self.l2s[core].probe(pa, false) {
            if let Some(ev) = self.l1s[core].fill(line_addr, is_write, InsertPriority::Normal) {
                if ev.dirty && !self.l2s[core].set_dirty(ev.addr) && !self.l3.set_dirty(ev.addr) {
                    let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
                }
            }
            return self.l1_lat + self.l2_lat;
        }

        if self.mode != XmemMode::Off {
            self.refresh_pinning();
        }
        let atom = if self.mode != XmemMode::Off {
            self.amu.active_atom_at(PhysAddr::new(pa))
        } else {
            None
        };
        let l3_total = self.l1_lat + self.l2_lat + self.l3_lat;
        let l3_hit = self.l3.probe(pa, false);
        let stride_reqs = self.stride_pfs[core]
            .as_mut()
            .map(|pf| pf.train(pa))
            .unwrap_or_default();

        if l3_hit {
            self.inflight_prefetches.remove(&line_addr);
            if let Some(ev) = self.l2s[core].fill(line_addr, false, InsertPriority::Normal) {
                if ev.dirty && !self.l3.set_dirty(ev.addr) {
                    let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
                }
            }
            if let Some(ev) = self.l1s[core].fill(line_addr, is_write, InsertPriority::Normal) {
                if ev.dirty && !self.l2s[core].set_dirty(ev.addr) && !self.l3.set_dirty(ev.addr) {
                    let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
                }
            }
            self.issue_stride(stride_reqs, now + l3_total);
            return l3_total;
        }

        let t_mem = now + l3_total;
        let dram_lat = self.dram.serve(line_addr, OpAttrs::read(), t_mem);
        let priority = match (self.mode, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => InsertPriority::Pinned,
            _ => InsertPriority::Normal,
        };
        if let Some(ev) = self.l3.fill(line_addr, false, priority) {
            self.writeback_shared(ev, t_mem);
        }
        if let Some(ev) = self.l2s[core].fill(line_addr, false, InsertPriority::Normal) {
            if ev.dirty && !self.l3.set_dirty(ev.addr) {
                let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
            }
        }
        if let Some(ev) = self.l1s[core].fill(line_addr, is_write, InsertPriority::Normal) {
            if ev.dirty && !self.l2s[core].set_dirty(ev.addr) && !self.l3.set_dirty(ev.addr) {
                let _ = self.dram.serve(ev.addr, OpAttrs::write(), now);
            }
        }

        let guided = match (self.mode, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => {
                self.guided_prefetch(pa, a, t_mem);
                true
            }
            (XmemMode::PrefetchOnly, Some(a)) => {
                let reuse = self.cache_pat.get(a).map(|p| p.reuse).unwrap_or(0);
                if reuse > 0 {
                    self.guided_prefetch(pa, a, t_mem);
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !guided {
            self.issue_stride(stride_reqs, t_mem);
        }
        l3_total + dram_lat
    }

    /// The MESI variant of [`SharedMem::serve_core`]: the coherence engine
    /// owns the private L1/L2 levels and the bus; this wrapper sinks the
    /// coherence writebacks toward L3/DRAM and runs the shared-level
    /// (L3/DRAM/prefetch/pinning) policy for accesses the peers could not
    /// supply. Cache-to-cache transfers bypass the L3 entirely, and the
    /// stride prefetchers train only on the memory path (bus-satisfied
    /// accesses carry no locality the L3 could exploit).
    fn serve_core_mesi(&mut self, core: usize, pa: u64, is_write: bool, now: u64) -> u64 {
        let line_addr = pa & !(self.line_bytes - 1);
        let mut domains = MesiDomains {
            l1s: &mut self.l1s,
            l2s: &mut self.l2s,
            bus: &mut self.bus,
            l1_lat: self.l1_lat,
            l2_lat: self.l2_lat,
            line_bytes: self.line_bytes,
        };
        let acc = mesi_access(&mut domains, core, pa, is_write, now);
        for &(_, wb) in &acc.writebacks {
            if !self.l3.set_dirty(wb) {
                let _ = self.dram.serve(wb, OpAttrs::write(), now);
            }
        }
        if !acc.from_memory {
            return acc.latency;
        }

        if self.mode != XmemMode::Off {
            self.refresh_pinning();
        }
        let atom = if self.mode != XmemMode::Off {
            self.amu.active_atom_at(PhysAddr::new(pa))
        } else {
            None
        };
        let l3_total = acc.latency + self.l3_lat;
        let l3_hit = self.l3.probe(pa, false);
        let stride_reqs = self.stride_pfs[core]
            .as_mut()
            .map(|pf| pf.train(pa))
            .unwrap_or_default();

        if l3_hit {
            self.inflight_prefetches.remove(&line_addr);
            self.issue_stride(stride_reqs, now + l3_total);
            return l3_total;
        }

        let t_mem = now + l3_total;
        let dram_lat = self.dram.serve(line_addr, OpAttrs::read(), t_mem);
        let priority = match (self.mode, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => InsertPriority::Pinned,
            _ => InsertPriority::Normal,
        };
        if let Some(ev) = self.l3.fill(line_addr, false, priority) {
            self.writeback_shared(ev, t_mem);
        }
        let guided = match (self.mode, atom) {
            (XmemMode::Full, Some(a)) if self.pinned.contains(&a) => {
                self.guided_prefetch(pa, a, t_mem);
                true
            }
            (XmemMode::PrefetchOnly, Some(a)) => {
                let reuse = self.cache_pat.get(a).map(|p| p.reuse).unwrap_or(0);
                if reuse > 0 {
                    self.guided_prefetch(pa, a, t_mem);
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !guided {
            self.issue_stride(stride_reqs, t_mem);
        }
        l3_total + dram_lat
    }

    fn issue_stride(&mut self, reqs: Vec<cache_sim::prefetch::PrefetchRequest>, t_mem: u64) {
        for req in reqs {
            let target = req.addr & !(self.line_bytes - 1);
            if self.l3.contains(target) {
                continue;
            }
            let _ = self.dram.serve_prefetch(target, t_mem);
            if let Some(ev) = self.l3.fill(target, false, InsertPriority::Normal) {
                self.writeback_shared(ev, t_mem);
            }
        }
    }
}

/// Adapter giving one core's `Core::step` a view of the shared memory.
struct CoreMemView<'a> {
    mem: &'a mut SharedMem,
    core: usize,
    /// Per-core VA translation table: (recorded base, len, actual base),
    /// sorted by recorded base.
    ranges: &'a [(u64, u64, u64)],
}

/// Translates a recorded VA through a core's (recorded → actual) ranges.
fn translate_va(ranges: &[(u64, u64, u64)], va: u64) -> u64 {
    match ranges.binary_search_by(|&(base, _, _)| base.cmp(&va)) {
        Ok(i) => ranges[i].2,
        Err(0) => va, // untranslated (never allocated — will fault below)
        Err(i) => {
            let (base, len, actual) = ranges[i - 1];
            if va < base + len {
                actual + (va - base)
            } else {
                va
            }
        }
    }
}

impl MemoryPath for CoreMemView<'_> {
    fn serve(&mut self, va: u64, attrs: OpAttrs, now: u64) -> u64 {
        let actual_va = translate_va(self.ranges, va);
        let pa = self
            .mem
            .os
            .page_table()
            .translate(VirtAddr::new(actual_va))
            .unwrap_or_else(|| panic!("core {}: unallocated VA {va:#x}", self.core));
        self.mem.serve_core(self.core, pa.raw(), attrs.write, now)
    }
}

/// Runs one pre-recorded workload log per core on the shared machine.
///
/// Cores advance in simulated-time order (the earliest core processes its
/// next event), so shared-resource contention emerges naturally. Returns
/// per-core and shared statistics.
///
/// # Panics
///
/// Panics if `logs.len() != config.cores`, if the combined workloads create
/// more than 255 atoms, or if physical memory is exhausted.
pub fn run_corun(config: &MultiCoreConfig, logs: &[Vec<TraceEvent>]) -> CorunReport {
    assert_eq!(logs.len(), config.cores, "one workload log per core");

    // ── pass 1: merge every core's atoms into one shared ID space ───────
    // Private `Create`s get a fresh global atom each; `CreateShared`s with
    // the same key resolve to one global atom for all cores. `atom_maps`
    // records each core's (local creation index → global id) renaming.
    let mut lib = XMemLib::new();
    let mut segment = AtomSegment::new();
    let mut atom_maps: Vec<BTreeMap<u8, AtomId>> = vec![BTreeMap::new(); config.cores];
    let mut shared_atoms: BTreeMap<u64, AtomId> = BTreeMap::new();
    let mut shared_ids: BTreeSet<AtomId> = BTreeSet::new();
    let coherence_aware = config.coherence == CoherenceMode::Mesi && config.coherence_aware_pinning;
    let mut pin_exempt: BTreeSet<AtomId> = BTreeSet::new();
    for (core, log) in logs.iter().enumerate() {
        let mut count = 0u8;
        for ev in log {
            match ev {
                TraceEvent::Create { label, attrs } => {
                    let id = lib
                        .create_atom(
                            CallSite {
                                file: "<corun>",
                                line: (core as u32) << 16 | count as u32,
                            },
                            format!("c{core}:{label}"),
                            attrs.clone(),
                        )
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("combined atom space exhausted");
                    atom_maps[core].insert(count, id);
                    segment.push(StaticAtom::new(
                        id,
                        format!("c{core}:{label}"),
                        attrs.clone(),
                    ));
                    count += 1;
                }
                TraceEvent::CreateShared { key, label, attrs } => {
                    let id = match shared_atoms.get(key) {
                        Some(&id) => id,
                        None => {
                            let id = lib
                                .create_atom(
                                    CallSite {
                                        file: "<corun-shared>",
                                        line: *key as u32,
                                    },
                                    format!("shared:{label}"),
                                    attrs.clone(),
                                )
                                // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                                .expect("combined atom space exhausted");
                            shared_atoms.insert(*key, id);
                            shared_ids.insert(id);
                            segment.push(StaticAtom::new(
                                id,
                                format!("shared:{label}"),
                                attrs.clone(),
                            ));
                            // Coherence-aware placement: a read-write shared
                            // atom is migratory — its lines ping-pong between
                            // private caches, so L3 pin budget spent on it is
                            // wasted. Read-only shared tables stay pinnable.
                            if coherence_aware
                                && attrs.props().contains(DataProps::SHARED)
                                && attrs.rw() != RwChar::ReadOnly
                            {
                                pin_exempt.insert(id);
                            }
                            id
                        }
                    };
                    atom_maps[core].insert(count, id);
                    count += 1;
                }
                _ => {}
            }
        }
    }

    // ── load time: GAT + PATs + frame policy over the merged atom set ───
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("load");
    let policy = match config.frame_policy {
        FramePolicyKind::Sequential => FramePolicy::Sequential,
        FramePolicyKind::Randomized { seed } => FramePolicy::Randomized { seed },
        FramePolicyKind::XmemPlacement => FramePolicy::Xmem {
            atoms: loaded.placement.clone(),
            mapping: config.mapping,
            dram: config.dram,
        },
    };
    let xmem_enabled = config.xmem != XmemMode::Off;
    let mut cache_pat = Pat::new();
    let mut pf_pat = Pat::new();
    if xmem_enabled {
        cache_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_cache(a));
        pf_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_prefetcher(a));
    }

    let mut mem = SharedMem {
        l1s: (0..config.cores).map(|_| Cache::new(config.l1)).collect(),
        l2s: (0..config.cores).map(|_| Cache::new(config.l2)).collect(),
        l3: Cache::new(config.l3),
        dram: Dram::new(config.dram, config.mapping),
        stride_pfs: (0..config.cores)
            .map(|_| {
                config.stride_prefetcher.then(|| {
                    MultiStridePrefetcher::new(config.stride_streams, config.prefetch_degree)
                })
            })
            .collect(),
        amu: AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: config.phys_bytes,
                ..AamConfig::default()
            },
            alb_entries: 256,
            page_size: 4096,
        }),
        cache_pat,
        pf_pat,
        os: Os::new(config.phys_bytes, 4096, policy),
        mode: config.xmem,
        pinned: Vec::new(),
        last_epoch: u64::MAX,
        inflight_prefetches: BTreeSet::new(),
        l1_lat: config.l1.latency,
        l2_lat: config.l2.latency,
        l3_lat: config.l3.latency,
        xmem_prefetch_degree: config.xmem_prefetch_degree,
        line_bytes: config.l1.line_bytes,
        coherence: config.coherence,
        bus: SnoopBus::new(config.bus),
        pin_exempt,
    };

    // ── replay ───────────────────────────────────────────────────────────
    let mut cores: Vec<Core> = (0..config.cores).map(|_| Core::new(config.core)).collect();
    let mut pos = vec![0usize; config.cores];
    let mut created = vec![0u32; config.cores]; // creates seen during replay
    let mut ranges: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); config.cores];
    // Shared-segment replay state: one physical allocation per key, and
    // reference counts so only the first mapper/activator (and last
    // unmapper/deactivator) touches the AMU for a shared atom.
    let mut shared_bases: BTreeMap<u64, u64> = BTreeMap::new();
    let mut shared_map_rc: BTreeMap<(u64, u64), u32> = BTreeMap::new();
    let mut act_rc: BTreeMap<AtomId, u32> = BTreeMap::new();

    loop {
        // Pick the live core earliest in simulated time.
        let next = (0..config.cores)
            .filter(|&i| pos[i] < logs[i].len())
            .min_by_key(|&i| (cores[i].now(), i));
        let Some(i) = next else { break };

        // Apply hint events until the next op (hints are "free" in time).
        while pos[i] < logs[i].len() {
            let rename = |core: usize, id: AtomId| {
                *atom_maps[core]
                    .get(&id.raw())
                    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                    .expect("atom referenced before creation")
            };
            let ev = logs[i][pos[i]].clone();
            pos[i] += 1;
            match ev {
                TraceEvent::Op(op) => {
                    let mut view = CoreMemView {
                        mem: &mut mem,
                        core: i,
                        ranges: &ranges[i],
                    };
                    cores[i].step(op, &mut view);
                    break;
                }
                TraceEvent::Create { .. } | TraceEvent::CreateShared { .. } => {
                    created[i] += 1; // already merged in pass 1
                }
                TraceEvent::Alloc { bytes, atom, base } => {
                    let global_atom = atom.map(|a| rename(i, a));
                    let actual = mem
                        .os
                        .malloc(bytes, global_atom)
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("physical memory exhausted")
                        .raw();
                    ranges[i].push((base, bytes.next_multiple_of(4096).max(4096), actual));
                    ranges[i].sort_unstable();
                }
                TraceEvent::AllocShared {
                    key,
                    bytes,
                    atom,
                    base,
                } => {
                    // One physical allocation per key; every core's local VA
                    // range for it translates to the same frames.
                    let actual = match shared_bases.get(&key) {
                        Some(&pa) => pa,
                        None => {
                            let global_atom = atom.map(|a| rename(i, a));
                            let pa = mem
                                .os
                                .malloc(bytes, global_atom)
                                // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                                .expect("physical memory exhausted")
                                .raw();
                            shared_bases.insert(key, pa);
                            pa
                        }
                    };
                    ranges[i].push((base, bytes.next_multiple_of(4096).max(4096), actual));
                    ranges[i].sort_unstable();
                }
                TraceEvent::Map { atom, start, len } => {
                    if xmem_enabled {
                        let global = rename(i, atom);
                        let actual = translate_va(&ranges[i], start);
                        if shared_ids.contains(&global) {
                            let rc = shared_map_rc.entry((actual, len)).or_insert(0);
                            *rc += 1;
                            if *rc > 1 {
                                continue; // later mappers: range already live
                            }
                        }
                        lib.atom_map(
                            &mut mem.amu,
                            mem.os.page_table(),
                            global,
                            VirtAddr::new(actual),
                            len,
                        )
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("map");
                    }
                }
                TraceEvent::Unmap { start, len } => {
                    if xmem_enabled {
                        let actual = translate_va(&ranges[i], start);
                        if let Some(rc) = shared_map_rc.get_mut(&(actual, len)) {
                            *rc -= 1;
                            if *rc > 0 {
                                continue; // other cores still map this range
                            }
                        }
                        lib.atom_unmap(
                            &mut mem.amu,
                            mem.os.page_table(),
                            VirtAddr::new(actual),
                            len,
                        )
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("unmap");
                    }
                }
                TraceEvent::Map2d {
                    atom,
                    base,
                    size_x,
                    size_y,
                    len_x,
                } => {
                    if xmem_enabled {
                        let actual = translate_va(&ranges[i], base);
                        lib.atom_map_2d(
                            &mut mem.amu,
                            mem.os.page_table(),
                            rename(i, atom),
                            VirtAddr::new(actual),
                            size_x,
                            size_y,
                            len_x,
                        )
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("map2d");
                    }
                }
                TraceEvent::Unmap2d {
                    base,
                    size_x,
                    size_y,
                    len_x,
                } => {
                    if xmem_enabled {
                        let actual = translate_va(&ranges[i], base);
                        lib.atom_unmap_2d(
                            &mut mem.amu,
                            mem.os.page_table(),
                            VirtAddr::new(actual),
                            size_x,
                            size_y,
                            len_x,
                        )
                        // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                        .expect("unmap2d");
                    }
                }
                TraceEvent::Activate(atom) => {
                    if xmem_enabled {
                        let global = rename(i, atom);
                        if shared_ids.contains(&global) {
                            let rc = act_rc.entry(global).or_insert(0);
                            *rc += 1;
                            if *rc > 1 {
                                continue; // already active on another core's behalf
                            }
                        }
                        lib.atom_activate(&mut mem.amu, mem.os.page_table(), global)
                            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                            .expect("activate");
                    }
                }
                TraceEvent::Deactivate(atom) => {
                    if xmem_enabled {
                        let global = rename(i, atom);
                        if let Some(rc) = act_rc.get_mut(&global) {
                            *rc -= 1;
                            if *rc > 0 {
                                continue; // other cores still want it active
                            }
                        }
                        lib.atom_deactivate(&mut mem.amu, mem.os.page_table(), global)
                            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
                            .expect("deactivate");
                    }
                }
            }
        }
    }

    CorunReport {
        cores: cores.iter().map(|c| c.stats()).collect(),
        l1s: mem.l1s.iter().map(|c| c.stats()).collect(),
        l2s: mem.l2s.iter().map(|c| c.stats()).collect(),
        l3: mem.l3.stats(),
        dram: mem.dram.stats(),
        alb: mem.amu.alb_stats(),
        bus: mem.bus.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::polybench::{KernelParams, PolybenchKernel};
    use workloads::sink::{LogSink, TraceSink};

    fn record(f: impl Fn(&mut dyn TraceSink)) -> Vec<TraceEvent> {
        let mut log = LogSink::new();
        f(&mut log);
        log.into_events()
    }

    fn kernel_log(n: usize, tile: u64) -> Vec<TraceEvent> {
        record(|s| {
            PolybenchKernel::Gemm.generate(
                &KernelParams {
                    n,
                    tile_bytes: tile,
                    steps: 1,
                    reuse: 200,
                },
                s,
            )
        })
    }

    fn hog_log(lines: u64) -> Vec<TraceEvent> {
        record(|s| {
            let base = s.alloc(lines * 64, None);
            for i in 0..lines * 4 {
                s.load(base + (i % lines) * 64);
                s.compute(2);
            }
        })
    }

    #[test]
    fn single_core_corun_matches_shape() {
        let cfg = MultiCoreConfig::scaled_corun(1, 32 << 10, crate::SystemKind::Baseline);
        let report = run_corun(&cfg, &[kernel_log(32, 4 << 10)]);
        assert_eq!(report.cores.len(), 1);
        assert!(report.cores[0].cycles > 0);
        assert!(report.dram.accesses() > 0);
    }

    #[test]
    fn corun_is_deterministic() {
        let cfg = MultiCoreConfig::scaled_corun(2, 32 << 10, crate::SystemKind::Xmem);
        let logs = vec![kernel_log(24, 2 << 10), hog_log(512)];
        let a = run_corun(&cfg, &logs);
        let b = run_corun(&cfg, &logs);
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn interference_slows_the_victim() {
        let solo_cfg = MultiCoreConfig::scaled_corun(1, 32 << 10, crate::SystemKind::Baseline);
        let solo = run_corun(&solo_cfg, &[kernel_log(32, 8 << 10)]);
        let corun_cfg = MultiCoreConfig::scaled_corun(3, 32 << 10, crate::SystemKind::Baseline);
        let corun = run_corun(
            &corun_cfg,
            &[kernel_log(32, 8 << 10), hog_log(2048), hog_log(2048)],
        );
        assert!(
            corun.cycles(0) > solo.cycles(0),
            "co-runners must interfere: solo {} vs corun {}",
            solo.cycles(0),
            corun.cycles(0)
        );
    }

    #[test]
    fn xmem_protects_victim_under_corun() {
        // The §5 premise: the kernel tuned for the whole L3 loses cache to
        // streaming co-runners; XMem pins its tile and suffers less.
        let logs = vec![kernel_log(48, 16 << 10), hog_log(4096), hog_log(4096)];
        let base_cfg = MultiCoreConfig::scaled_corun(3, 32 << 10, crate::SystemKind::Baseline);
        let xmem_cfg = MultiCoreConfig::scaled_corun(3, 32 << 10, crate::SystemKind::Xmem);
        let base = run_corun(&base_cfg, &logs);
        let xmem = run_corun(&xmem_cfg, &logs);
        assert!(
            xmem.cycles(0) < base.cycles(0),
            "xmem {} vs baseline {}",
            xmem.cycles(0),
            base.cycles(0)
        );
    }

    #[test]
    fn atom_ids_disjoint_across_cores() {
        // Two copies of the same workload: their atoms must not collide.
        let cfg = MultiCoreConfig::scaled_corun(2, 32 << 10, crate::SystemKind::Xmem);
        let logs = vec![kernel_log(24, 2 << 10), kernel_log(24, 2 << 10)];
        let report = run_corun(&cfg, &logs);
        // Both kernels complete the same work.
        assert_eq!(report.cores[0].instructions, report.cores[1].instructions);
    }
}
