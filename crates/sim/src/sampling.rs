//! Statistical interval sampling: functional fast-forward interleaved with
//! detailed measurement windows.
//!
//! Full-length execution of every op is the cost that blocks the
//! 10⁴–10⁵-point grids the ROADMAP targets — with the batched hot path
//! landed, the simulator spends its time *being detailed everywhere*, not
//! in dispatch. Interval sampling (SMARTS-style, cf. "Memory Access
//! Vectors: Improving Sampling Fidelity for CPU Performance Simulations")
//! runs the trace in a repeating schedule of three per-op modes:
//!
//! * **fast-forward** — functional warming: caches/TLB/DRAM row state,
//!   prefetcher streams, and AMU stats stay live (tags, LRU, open rows),
//!   but the core model skips all timing. Warming is continuous because
//!   cold-state bias dwarfs every other sampling error: a window opening
//!   on stale cache content over-counts misses by integer factors;
//! * **pipeline warmup** — the same functional warming, with loads also
//!   retiring through the core at a fixed latency so the ROB/issue state
//!   the window opens on is in steady flight;
//! * **detailed window** — the ordinary cycle-accurate path, measured.
//!
//! The schedule is driven by a [`SamplingSpec`]: each `interval` ops start
//! with `warmup_ops` of pipeline warmup, then a `window_ops`-long detailed
//! window, then fast-forward to the end of the interval (leading with the
//! window means short runs still measure something).
//! Per-window feature vectors (IPC, MPKI, row-hit rate,
//! ALB hit rate — the exact telemetry signal of the epoch sampler) are
//! post-stratified with a deterministic k-means so the reported confidence
//! interval reflects between-phase variance instead of assuming the run is
//! homogeneous. The result is a [`SamplingSummary`] serialized as the
//! backwards-compatible `"sampling"` block of `xmem-report-v1`.
//!
//! A 100%-coverage spec ([`SamplingSpec::full_coverage`]) makes every op
//! detailed and reproduces the unsampled run byte-identically — the
//! byte-identity suite pins this.

use crate::report_sink::JsonValue;

/// The per-op execution mode the sampling schedule assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePhase {
    /// Functional warming of the memory system; no core timing.
    FastForward,
    /// Functional warming plus fixed-latency retirement through the core.
    Warm,
    /// Full detailed execution, measured.
    Detailed,
}

/// The sampling schedule: every `interval` ops open with `warmup_ops` of
/// pipeline warmup and a detailed window of `window_ops`; everything after
/// that fast-forwards to the end of the interval.
///
/// `window_ops >= interval` degenerates to 100% detailed coverage (no
/// fast-forward, no warmup) — byte-identical to an unsampled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingSpec {
    /// Ops of pipeline warmup immediately before each detailed window.
    pub warmup_ops: u64,
    /// Ops of detailed execution at the start of each interval (after
    /// warmup).
    pub window_ops: u64,
    /// Schedule period in ops (≥ 1).
    pub interval: u64,
}

impl SamplingSpec {
    /// The default schedule for a bare `--sample`: 1k warmup + 8k detailed
    /// per 25k ops (32% detailed coverage). Tuned on the fig4–fig6
    /// standard grids: windows this long span enough DRAM accesses for
    /// the row-hit rate — the noisiest per-window feature — to converge,
    /// which matters more than coverage (see EXPERIMENTS.md). Long runs
    /// can afford sparser schedules (e.g. `2000:8000:100000`).
    pub const DEFAULT: SamplingSpec = SamplingSpec {
        warmup_ops: 1_000,
        window_ops: 8_000,
        interval: 25_000,
    };

    /// The spec under which every op is detailed: sampled execution is
    /// byte-identical to a full run.
    pub const fn full_coverage() -> SamplingSpec {
        SamplingSpec {
            warmup_ops: 0,
            window_ops: 1,
            interval: 1,
        }
    }

    /// Parses `"warmup:window:interval"` (e.g. `2000:2000:50000`).
    pub fn parse(s: &str) -> Result<SamplingSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [w, d, i] = parts[..] else {
            return Err(format!(
                "sampling spec '{s}': expected warmup:window:interval"
            ));
        };
        let field = |name: &str, v: &str| {
            v.trim()
                .parse::<u64>()
                .map_err(|e| format!("sampling spec '{s}': bad {name} '{v}': {e}"))
        };
        let spec = SamplingSpec {
            warmup_ops: field("warmup_ops", w)?,
            window_ops: field("window_ops", d)?,
            interval: field("interval", i)?,
        };
        if spec.interval == 0 {
            return Err(format!("sampling spec '{s}': interval must be >= 1"));
        }
        if spec.window_ops == 0 {
            return Err(format!("sampling spec '{s}': window_ops must be >= 1"));
        }
        Ok(spec)
    }

    /// The first in-interval phase index that is detailed.
    #[inline]
    fn detail_start(&self) -> u64 {
        self.warmup_ops.min(self.interval)
    }

    /// The execution mode of op `i` (0-based global op index).
    ///
    /// Each interval runs warmup → detailed window → fast-forward, in that
    /// order. Leading with the warmup+window (rather than trailing the
    /// interval with it) means a run only `warmup_ops + window_ops` long
    /// still produces one measured window — short runs degrade to "mostly
    /// detailed" rather than "no estimate at all".
    #[inline]
    pub fn phase_of(&self, i: u64) -> SamplePhase {
        let p = i % self.interval;
        let detail = self.detail_start();
        if p < detail {
            SamplePhase::Warm
        } else if p < detail.saturating_add(self.window_ops) {
            SamplePhase::Detailed
        } else {
            SamplePhase::FastForward
        }
    }

    /// The number of consecutive ops starting at `i` (inclusive) that share
    /// `phase_of(i)` — the distance to the next phase boundary. Always at
    /// least 1. Lets the batched dispatch process a whole same-phase run in
    /// one tight loop instead of re-deriving the phase per op.
    #[inline]
    pub fn phase_run(&self, i: u64) -> u64 {
        // No warmup and a window covering the interval: every op is
        // detailed and the run never ends, so a whole batch is always one
        // run (the reason a 100%-coverage spec costs one dispatch per
        // batch, like unsampled execution).
        if self.warmup_ops == 0 && self.window_ops >= self.interval {
            return u64::MAX;
        }
        let p = i % self.interval;
        let detail = self.detail_start();
        let window_end = detail.saturating_add(self.window_ops).min(self.interval);
        let boundary = if p < detail {
            detail
        } else if p < window_end {
            window_end
        } else {
            self.interval
        };
        boundary - p
    }

    /// The fraction of ops executed in detail.
    pub fn coverage(&self) -> f64 {
        self.window_ops.min(self.interval) as f64 / self.interval as f64
    }

    /// This spec as a JSON object (the `"spec"` field of the block).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("warmup_ops", JsonValue::U64(self.warmup_ops)),
            ("window_ops", JsonValue::U64(self.window_ops)),
            ("interval", JsonValue::U64(self.interval)),
        ])
    }

    /// Parses the `"spec"` object back — the inverse of
    /// [`SamplingSpec::to_json`].
    pub fn from_json(v: &JsonValue) -> Option<SamplingSpec> {
        Some(SamplingSpec {
            warmup_ops: v.get("warmup_ops")?.as_u64()?,
            window_ops: v.get("window_ops")?.as_u64()?,
            interval: v.get("interval")?.as_u64()?,
        })
    }
}

/// The raw counter deltas measured over one detailed window (between the
/// machine snapshots at the window's post-ramp open and its close).
///
/// Raw deltas, not ratios: the core's clock advances in miss-completion
/// jumps, so a single short window's cycle delta is noisy — dividing
/// per window and averaging the ratios would let near-zero denominators
/// explode the estimate. The summary instead computes every metric as a
/// *ratio of sums* across all windows (the standard stratified-ratio
/// estimator), where the boundary noise cancels; the per-window ratios
/// below feed only the clustering, the CI, and the observed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowFeatures {
    /// Instructions retired inside the window.
    pub instructions: u64,
    /// Core cycles elapsed inside the window.
    pub cycles: u64,
    /// L1 misses inside the window.
    pub l1_misses: u64,
    /// L2 misses inside the window.
    pub l2_misses: u64,
    /// L3 misses inside the window.
    pub l3_misses: u64,
    /// DRAM accesses (reads + writes) inside the window.
    pub dram_accesses: u64,
    /// DRAM row-buffer hits inside the window.
    pub row_hits: u64,
    /// ALB lookups inside the window.
    pub alb_lookups: u64,
    /// ALB hits inside the window.
    pub alb_hits: u64,
}

/// The sampled-metric field order of the serialized `"metrics"` object —
/// fixed so rendering is deterministic.
const METRIC_COLUMNS: [&str; 6] = [
    "ipc",
    "l1_mpki",
    "l2_mpki",
    "l3_mpki",
    "row_hit_rate",
    "alb_hit_rate",
];

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

impl WindowFeatures {
    /// Instructions per cycle over this window.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// L1 misses per kilo-instruction over this window.
    pub fn l1_mpki(&self) -> f64 {
        ratio(self.l1_misses, self.instructions) * 1000.0
    }

    /// L2 misses per kilo-instruction over this window.
    pub fn l2_mpki(&self) -> f64 {
        ratio(self.l2_misses, self.instructions) * 1000.0
    }

    /// L3 misses per kilo-instruction over this window.
    pub fn l3_mpki(&self) -> f64 {
        ratio(self.l3_misses, self.instructions) * 1000.0
    }

    /// DRAM row-hit rate over this window's accesses.
    pub fn row_hit_rate(&self) -> f64 {
        ratio(self.row_hits, self.dram_accesses)
    }

    /// ALB hit rate over this window's lookups.
    pub fn alb_hit_rate(&self) -> f64 {
        ratio(self.alb_hits, self.alb_lookups)
    }

    /// One metric's numerator, denominator, and output scale for the
    /// ratio-of-sums estimator.
    fn metric_parts(&self, name: &str) -> (u64, u64, f64) {
        match name {
            "ipc" => (self.instructions, self.cycles, 1.0),
            "l1_mpki" => (self.l1_misses, self.instructions, 1000.0),
            "l2_mpki" => (self.l2_misses, self.instructions, 1000.0),
            "l3_mpki" => (self.l3_misses, self.instructions, 1000.0),
            "row_hit_rate" => (self.row_hits, self.dram_accesses, 1.0),
            "alb_hit_rate" => (self.alb_hits, self.alb_lookups, 1.0),
            _ => unreachable!("unknown sampled metric {name}"),
        }
    }

    fn metric(&self, name: &str) -> f64 {
        let (n, d, scale) = self.metric_parts(name);
        ratio(n, d) * scale
    }

    /// The clustering feature vector (the telemetry signal of PR 3: IPC,
    /// per-level MPKI, row-hit rate, ALB hit rate).
    fn features(&self) -> [f64; 6] {
        [
            self.ipc(),
            self.l1_mpki(),
            self.l2_mpki(),
            self.l3_mpki(),
            self.row_hit_rate(),
            self.alb_hit_rate(),
        ]
    }
}

/// One sampled metric: the ratio-of-sums estimate across all detailed
/// windows, with a 95% confidence interval from the post-stratified
/// per-window variance and the observed per-window range.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampledMetric {
    /// Ratio-of-sums estimate over all detailed windows (e.g. total window
    /// instructions over total window cycles for IPC).
    pub mean: f64,
    /// 95% confidence half-width from the post-stratified variance
    /// (0 when every window landed in a singleton cluster).
    pub ci95: f64,
    /// Smallest window value.
    pub min: f64,
    /// Largest window value.
    pub max: f64,
}

impl SampledMetric {
    fn to_json(self) -> JsonValue {
        JsonValue::object([
            ("mean", JsonValue::F64(self.mean)),
            ("ci95", JsonValue::F64(self.ci95)),
            ("min", JsonValue::F64(self.min)),
            ("max", JsonValue::F64(self.max)),
        ])
    }

    fn from_json(v: &JsonValue) -> Option<SampledMetric> {
        Some(SampledMetric {
            mean: v.get("mean")?.as_f64()?,
            ci95: v.get("ci95")?.as_f64()?,
            min: v.get("min")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
        })
    }
}

/// One stratum of the post-stratification: how many windows it holds and
/// which window is closest to its centroid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleCluster {
    /// Number of detailed windows assigned to this cluster.
    pub windows: u64,
    /// Index (into the run's window sequence) of the representative
    /// window — the member closest to the cluster centroid.
    pub representative: u64,
}

/// The full sampled-run summary: schedule, coverage accounting, the
/// telemetry-feature clustering, and every sampled metric with its
/// confidence interval. Serialized as the optional `"sampling"` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingSummary {
    /// The schedule that produced this run.
    pub spec: SamplingSpec,
    /// Total ops the generator emitted.
    pub total_ops: u64,
    /// Ops executed in detail.
    pub detailed_ops: u64,
    /// Ops executed as functional warmup.
    pub warm_ops: u64,
    /// Number of detailed windows measured.
    pub windows: u64,
    /// Achieved detailed coverage, `detailed_ops / total_ops`.
    pub coverage: f64,
    /// The post-stratification clusters, in cluster-index order.
    pub clusters: Vec<SampleCluster>,
    /// Per-metric stratified estimates, in [`METRIC_COLUMNS`] order.
    pub metrics: Vec<(String, SampledMetric)>,
}

impl SamplingSummary {
    /// Builds the summary from the measured windows: clusters the feature
    /// vectors (deterministic k-means, k = min(3, windows)) and computes
    /// each metric's post-stratified mean and 95% CI.
    pub fn from_windows(
        spec: SamplingSpec,
        total_ops: u64,
        detailed_ops: u64,
        warm_ops: u64,
        windows: &[WindowFeatures],
    ) -> SamplingSummary {
        let assignment = cluster_windows(windows);
        let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let clusters = (0..k)
            .map(|c| {
                let members: Vec<usize> =
                    (0..windows.len()).filter(|&i| assignment[i] == c).collect();
                SampleCluster {
                    windows: members.len() as u64,
                    representative: representative_of(windows, &members) as u64,
                }
            })
            .collect();
        let metrics = METRIC_COLUMNS
            .iter()
            .map(|&name| {
                (
                    name.to_string(),
                    stratified_metric(windows, name, &assignment, k),
                )
            })
            .collect();
        SamplingSummary {
            spec,
            total_ops,
            detailed_ops,
            warm_ops,
            windows: windows.len() as u64,
            coverage: if total_ops == 0 {
                0.0
            } else {
                detailed_ops as f64 / total_ops as f64
            },
            clusters,
            metrics,
        }
    }

    /// Looks up one sampled metric by name.
    pub fn metric(&self, name: &str) -> Option<SampledMetric> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| *m)
    }

    /// This summary as the record's optional `"sampling"` JSON block.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("spec", self.spec.to_json()),
            ("total_ops", JsonValue::U64(self.total_ops)),
            ("detailed_ops", JsonValue::U64(self.detailed_ops)),
            ("warm_ops", JsonValue::U64(self.warm_ops)),
            ("windows", JsonValue::U64(self.windows)),
            ("coverage", JsonValue::F64(self.coverage)),
            (
                "clusters",
                JsonValue::Array(
                    self.clusters
                        .iter()
                        .map(|c| {
                            JsonValue::object([
                                ("windows", JsonValue::U64(c.windows)),
                                ("representative", JsonValue::U64(c.representative)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics",
                JsonValue::Object(
                    self.metrics
                        .iter()
                        .map(|(name, m)| (name.clone(), m.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `"sampling"` block back — the inverse of
    /// [`SamplingSummary::to_json`].
    pub fn from_json(block: &JsonValue) -> Option<SamplingSummary> {
        let spec = SamplingSpec::from_json(block.get("spec")?)?;
        let clusters = block
            .get("clusters")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(SampleCluster {
                    windows: c.get("windows")?.as_u64()?,
                    representative: c.get("representative")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let metrics_obj = block.get("metrics")?;
        let metrics = METRIC_COLUMNS
            .iter()
            .map(|&name| {
                Some((
                    name.to_string(),
                    SampledMetric::from_json(metrics_obj.get(name)?)?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(SamplingSummary {
            spec,
            total_ops: block.get("total_ops")?.as_u64()?,
            detailed_ops: block.get("detailed_ops")?.as_u64()?,
            warm_ops: block.get("warm_ops")?.as_u64()?,
            windows: block.get("windows")?.as_u64()?,
            coverage: block.get("coverage")?.as_f64()?,
            clusters,
            metrics,
        })
    }

    /// Reads the optional `"sampling"` block out of an `xmem-report-v1`
    /// record object. `None` for unsampled (or pre-sampling) records.
    pub fn from_record_json(record: &JsonValue) -> Option<SamplingSummary> {
        Self::from_json(record.get("sampling")?)
    }
}

/// Deterministic k-means over the window feature vectors: min-max
/// normalized features, k = min(3, windows), centroids seeded at evenly
/// spaced window indices, a fixed 16 assignment/update rounds, ties to the
/// lowest cluster index. No RNG, no wall clock — the same windows always
/// cluster the same way (simlint forbids nondeterminism in the sim crates).
fn cluster_windows(windows: &[WindowFeatures]) -> Vec<usize> {
    let n = windows.len();
    if n == 0 {
        return Vec::new();
    }
    let k = n.min(3);
    // Min-max normalize each feature dimension so MPKI (tens) does not
    // drown IPC (ones) in the distance metric.
    let raw: Vec<[f64; 6]> = windows.iter().map(|w| w.features()).collect();
    let mut lo = [f64::INFINITY; 6];
    let mut hi = [f64::NEG_INFINITY; 6];
    for f in &raw {
        for d in 0..6 {
            lo[d] = lo[d].min(f[d]);
            hi[d] = hi[d].max(f[d]);
        }
    }
    let norm: Vec<[f64; 6]> = raw
        .iter()
        .map(|f| {
            let mut out = [0.0; 6];
            for d in 0..6 {
                let span = hi[d] - lo[d];
                // Degenerate dimension (all windows equal): contribute 0
                // rather than dividing by the zero span.
                out[d] = if hi[d] > lo[d] {
                    (f[d] - lo[d]) / span
                } else {
                    0.0
                };
            }
            out
        })
        .collect();
    let dist2 =
        |a: &[f64; 6], b: &[f64; 6]| -> f64 { (0..6).map(|d| (a[d] - b[d]) * (a[d] - b[d])).sum() };
    // Seed centroids at evenly spaced window indices (sorted by time, so
    // program phases seed distinct clusters).
    let mut centroids: Vec<[f64; 6]> = (0..k)
        .map(|c| norm[if k == 1 { 0 } else { c * (n - 1) / (k - 1) }])
        .collect();
    let mut assignment = vec![0usize; n];
    for _round in 0..16 {
        for (i, f) in norm.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(f, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut mean = [0.0; 6];
            for &i in &members {
                for d in 0..6 {
                    mean[d] += norm[i][d];
                }
            }
            for v in &mut mean {
                *v /= members.len() as f64;
            }
            *centroid = mean;
        }
    }
    // Compact cluster indices so empty clusters leave no gaps (stable:
    // first-seen order is ascending because seeds are time-ordered).
    let mut remap: Vec<Option<usize>> = vec![None; k];
    let mut next = 0usize;
    for a in &assignment {
        if remap[*a].is_none() {
            remap[*a] = Some(next);
            next += 1;
        }
    }
    assignment
        .iter()
        // simlint: allow(unwrap, reason = "every assigned cluster index was entered into the remap above")
        .map(|a| remap[*a].expect("assigned clusters are remapped"))
        .collect()
}

/// The member window closest (in raw feature space) to the cluster's mean;
/// ties break to the lowest window index.
fn representative_of(windows: &[WindowFeatures], members: &[usize]) -> usize {
    let mut mean = [0.0; 6];
    for &i in members {
        let f = windows[i].features();
        for d in 0..6 {
            mean[d] += f[d];
        }
    }
    for v in &mut mean {
        *v /= members.len().max(1) as f64;
    }
    let mut best = members.first().copied().unwrap_or(0);
    let mut best_d = f64::INFINITY;
    for &i in members {
        let f = windows[i].features();
        let d: f64 = (0..6).map(|x| (f[x] - mean[x]) * (f[x] - mean[x])).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Post-stratified estimate of one metric: the ratio-of-sums mean across
/// all windows (robust to the per-window cycle-delta jumpiness a plain
/// mean of per-window ratios is not), with a 95% CI from the stratified
/// per-window variance `Σ (n_c/N)² · s_c²/n_c` (singleton strata
/// contribute zero — they have no within-cluster variance to estimate).
fn stratified_metric(
    windows: &[WindowFeatures],
    name: &str,
    assignment: &[usize],
    k: usize,
) -> SampledMetric {
    let n = windows.len();
    if n == 0 {
        return SampledMetric::default();
    }
    let mut num = 0u64;
    let mut den = 0u64;
    let mut scale = 1.0;
    let values: Vec<f64> = windows
        .iter()
        .map(|w| {
            let (wn, wd, s) = w.metric_parts(name);
            num += wn;
            den += wd;
            scale = s;
            w.metric(name)
        })
        .collect();
    let mean = ratio(num, den) * scale;
    let mut var = 0.0;
    for c in 0..k {
        let members: Vec<f64> = (0..n)
            .filter(|&i| assignment[i] == c)
            .map(|i| values[i])
            .collect();
        let nc = members.len();
        if nc < 2 {
            continue;
        }
        let mc = members.iter().sum::<f64>() / nc as f64;
        let s2 = members.iter().map(|v| (v - mc) * (v - mc)).sum::<f64>() / (nc - 1) as f64;
        let w = nc as f64 / n as f64;
        var += w * w * s2 / nc as f64;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in &values {
        min = min.min(v);
        max = max.max(v);
    }
    SampledMetric {
        mean,
        ci95: 1.96 * var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_schedule_places_window_at_interval_start() {
        let spec = SamplingSpec {
            warmup_ops: 2,
            window_ops: 3,
            interval: 10,
        };
        let phases: Vec<SamplePhase> = (0..20).map(|i| spec.phase_of(i)).collect();
        use SamplePhase::*;
        assert_eq!(
            phases,
            vec![
                Warm,
                Warm,
                Detailed,
                Detailed,
                Detailed,
                FastForward,
                FastForward,
                FastForward,
                FastForward,
                FastForward,
                Warm,
                Warm,
                Detailed,
                Detailed,
                Detailed,
                FastForward,
                FastForward,
                FastForward,
                FastForward,
                FastForward,
            ]
        );
    }

    #[test]
    fn phase_run_reaches_exactly_the_next_boundary() {
        let spec = SamplingSpec {
            warmup_ops: 2,
            window_ops: 3,
            interval: 10,
        };
        // Every index: the run is positive, the whole run shares the
        // phase, and the op just past the run is a different phase (or a
        // new interval's Warm).
        for i in 0..40 {
            let run = spec.phase_run(i);
            assert!(run >= 1, "empty run at {i}");
            let phase = spec.phase_of(i);
            assert!(
                (i..i + run).all(|j| spec.phase_of(j) == phase),
                "run at {i}"
            );
            let next = i + run;
            assert!(
                spec.phase_of(next) != phase || next % spec.interval == 0,
                "run at {i} stops short of the boundary"
            );
        }
        assert_eq!(spec.phase_run(0), 2);
        assert_eq!(spec.phase_run(2), 3);
        assert_eq!(spec.phase_run(5), 5);
        assert_eq!(spec.phase_run(9), 1);
        // Oversized window: detailed to the end of the interval.
        let wide = SamplingSpec {
            warmup_ops: 2,
            window_ops: 100,
            interval: 10,
        };
        assert_eq!(wide.phase_run(2), 8);
        assert_eq!(wide.phase_run(9), 1);
    }

    #[test]
    fn full_coverage_makes_every_op_detailed() {
        let spec = SamplingSpec::full_coverage();
        assert!((0..1000).all(|i| spec.phase_of(i) == SamplePhase::Detailed));
        assert_eq!(spec.phase_run(0), u64::MAX, "all-detailed run never ends");
        assert_eq!(spec.coverage(), 1.0);
    }

    #[test]
    fn oversized_warmup_saturates_instead_of_wrapping() {
        let spec = SamplingSpec {
            warmup_ops: 1_000,
            window_ops: 3,
            interval: 10,
        };
        // Warmup longer than the interval: every op warms (the window
        // never opens), nothing wraps, nothing panics.
        assert!((0..30).all(|i| spec.phase_of(i) == SamplePhase::Warm));
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let spec = SamplingSpec::parse("2000:2000:50000").expect("parses");
        assert_eq!(
            spec,
            SamplingSpec {
                warmup_ops: 2000,
                window_ops: 2000,
                interval: 50000
            }
        );
        assert!(SamplingSpec::parse("1:2").is_err(), "too few fields");
        assert!(SamplingSpec::parse("1:2:3:4").is_err(), "too many fields");
        assert!(SamplingSpec::parse("a:2:3").is_err(), "non-numeric");
        assert!(SamplingSpec::parse("0:1:0").is_err(), "zero interval");
        assert!(SamplingSpec::parse("0:0:10").is_err(), "zero window");
        let json = spec.to_json();
        assert_eq!(SamplingSpec::from_json(&json), Some(spec));
    }

    /// A 1000-instruction window: `cycles` sets its IPC, `l1_misses` its
    /// MPKI (misses == MPKI at 1000 instructions).
    fn window(cycles: u64, l1_misses: u64) -> WindowFeatures {
        WindowFeatures {
            instructions: 1000,
            cycles,
            l1_misses,
            l2_misses: l1_misses / 2,
            l3_misses: l1_misses / 4,
            dram_accesses: 10,
            row_hits: 8,
            alb_lookups: 10,
            alb_hits: 5,
        }
    }

    #[test]
    fn clustering_is_deterministic_and_separates_phases() {
        // Two clearly distinct phases: high-IPC/low-MPKI (4.0 IPC, 1 MPKI)
        // and the reverse (0.5 IPC, 40 MPKI).
        let windows: Vec<WindowFeatures> = (0..8)
            .map(|i| {
                if i < 4 {
                    window(250, 1)
                } else {
                    window(2000, 40)
                }
            })
            .collect();
        let a = cluster_windows(&windows);
        let b = cluster_windows(&windows);
        assert_eq!(a, b, "no RNG, no wall clock: always the same clusters");
        assert_eq!(a.len(), 8);
        // The two phases never share a cluster.
        assert!(a[..4].iter().all(|&c| c == a[0]));
        assert!(a[4..].iter().all(|&c| c == a[4]));
        assert_ne!(a[0], a[4]);
    }

    #[test]
    fn identical_windows_have_zero_ci() {
        // 500 cycles per 1000 instructions: exactly 2.0 IPC.
        let windows = vec![window(500, 5); 6];
        let summary =
            SamplingSummary::from_windows(SamplingSpec::DEFAULT, 300_000, 12_000, 12_000, &windows);
        for (name, m) in &summary.metrics {
            assert!(
                m.ci95.abs() < 1e-12,
                "{name}: identical windows must have ~zero CI, got {}",
                m.ci95
            );
            assert_eq!(m.min, m.max);
        }
        let ipc = summary.metric("ipc").expect("ipc metric present");
        assert!((ipc.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_json_round_trips_byte_identically() {
        let windows = vec![
            window(333, 2),
            window(400, 3),
            window(2000, 30),
            window(1666, 28),
        ];
        let summary = SamplingSummary::from_windows(
            SamplingSpec {
                warmup_ops: 100,
                window_ops: 50,
                interval: 1000,
            },
            4_000,
            200,
            400,
            &windows,
        );
        let json = summary.to_json();
        let parsed = SamplingSummary::from_json(&json).expect("parses");
        assert_eq!(parsed, summary);
        assert_eq!(parsed.to_json().render(), json.render());
        // Text round-trip through the JSON parser too.
        let reparsed = JsonValue::parse(&json.render()).expect("valid JSON");
        assert_eq!(SamplingSummary::from_json(&reparsed), Some(summary));
        // Not a sampling block at all.
        assert!(SamplingSummary::from_record_json(&JsonValue::object([(
            "label",
            JsonValue::Str("x".into())
        )]))
        .is_none());
    }

    #[test]
    fn empty_run_summarizes_without_panicking() {
        let summary = SamplingSummary::from_windows(SamplingSpec::DEFAULT, 0, 0, 0, &[]);
        assert_eq!(summary.windows, 0);
        assert!(summary.clusters.is_empty());
        assert_eq!(summary.coverage, 0.0);
        for (_, m) in &summary.metrics {
            assert!(m.mean.abs() < 1e-12 && m.ci95.abs() < 1e-12);
        }
        let json = summary.to_json();
        assert_eq!(SamplingSummary::from_json(&json), Some(summary));
    }
}
