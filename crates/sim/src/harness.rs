//! The experiment-sweep engine: enumerable run specifications executed on
//! a fixed-size worker pool with deterministic, order-stable results.
//!
//! Every figure in the paper is a *sweep*: the cross product of workloads,
//! system configurations, and parameter values, each point an independent
//! full-system simulation. This module gives that structure a first-class
//! API —
//!
//! * [`RunSpec`] names one point: a label, a [`SystemConfig`], and a
//!   [`WorkloadSpec`] saying what trace to run on it;
//! * [`Sweep`] executes a list of specs on `std::thread::scope` workers and
//!   returns one [`RunRecord`] per spec, **in spec order** regardless of
//!   which worker finished first;
//! * [`run_jobs`] is the underlying generic pool for jobs that do not fit
//!   the `RunSpec` mold (e.g. multi-core co-runs).
//!
//! Simulations are pure functions of their config, so a parallel sweep is
//! bit-identical to a serial one — `tests/harness.rs` proves it.
//!
//! ```
//! use workloads::polybench::{KernelParams, PolybenchKernel};
//! use xmem_sim::harness::{RunSpec, Sweep, WorkloadSpec};
//! use xmem_sim::{SystemConfig, SystemKind};
//!
//! let p = KernelParams { n: 16, tile_bytes: 1024, steps: 1, reuse: 200 };
//! let sweep = Sweep::new(
//!     [SystemKind::Baseline, SystemKind::Xmem]
//!         .map(|kind| RunSpec {
//!             label: format!("mvt/{kind}"),
//!             config: SystemConfig::scaled_use_case1(8 << 10, kind),
//!             workload: WorkloadSpec::kernel(PolybenchKernel::Mvt, p),
//!         })
//!         .to_vec(),
//! );
//! let records = sweep.run();
//! assert_eq!(records.len(), 2);
//! assert!(records[0].label.starts_with("mvt"));
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::SystemConfig;
use crate::machine::run_workload;
use crate::report::RunReport;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::TraceSink;

/// Runs `jobs` independent jobs on at most `workers` scoped threads and
/// returns their results **indexed by job**, not by completion order.
///
/// Jobs are handed out from a shared atomic counter, so workers stay busy
/// even when job runtimes vary wildly (a placement sweep mixes millisecond
/// and second-long simulations). `run` must be a pure function of the job
/// index for the sweep to be deterministic; the pool itself never reorders
/// results.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_jobs<T, F>(jobs: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    // One slot per job: each is written exactly once, by whichever worker
    // drew that index.
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = run(i);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every job index was claimed and ran")
        })
        .collect()
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// What one run simulates: a workload-generator closure in data form, so
/// specs can be stored, enumerated, and shipped across threads.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A use-case-1 polybench kernel (Figs 4–6).
    Kernel {
        /// Which kernel.
        kernel: PolybenchKernel,
        /// Problem-size / tile parameters.
        params: KernelParams,
    },
    /// A use-case-2 placement workload (Figs 7–8).
    Placement(PlacementWorkload),
}

impl WorkloadSpec {
    /// A kernel workload.
    pub fn kernel(kernel: PolybenchKernel, params: KernelParams) -> Self {
        WorkloadSpec::Kernel { kernel, params }
    }

    /// A placement workload.
    pub fn placement(w: PlacementWorkload) -> Self {
        WorkloadSpec::Placement(w)
    }

    /// The workload's short name (kernel or workload name).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Kernel { kernel, .. } => kernel.name(),
            WorkloadSpec::Placement(w) => w.name,
        }
    }

    /// Replays the workload into a trace sink (what [`run_workload`] does
    /// twice: once to scan, once to execute).
    pub fn generate(&self, sink: &mut dyn TraceSink) {
        match self {
            WorkloadSpec::Kernel { kernel, params } => kernel.generate(params, sink),
            WorkloadSpec::Placement(w) => w.generate(sink),
        }
    }
}

/// One enumerable experiment point.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Human-readable point label (becomes the report's `label` field).
    pub label: String,
    /// The complete system configuration to simulate.
    pub config: SystemConfig,
    /// What to run on it.
    pub workload: WorkloadSpec,
}

impl RunSpec {
    /// A spec with a label built from the workload name.
    pub fn new(label: impl Into<String>, config: SystemConfig, workload: WorkloadSpec) -> Self {
        RunSpec {
            label: label.into(),
            config,
            workload,
        }
    }

    /// Executes this spec (one full two-pass simulation). Pure: equal specs
    /// give equal reports.
    pub fn execute(&self) -> RunReport {
        run_workload(&self.config, |sink| self.workload.generate(sink))
    }
}

/// A run spec together with its measured report — the unit every
/// [`crate::report_sink::ReportSink`] serializes.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's label.
    pub label: String,
    /// The configuration that produced the report.
    pub config: SystemConfig,
    /// The workload's short name.
    pub workload: &'static str,
    /// The measurements.
    pub report: RunReport,
}

/// A batch of [`RunSpec`]s executed on a worker pool.
///
/// Results come back in spec order; with pure specs the records are
/// byte-identical whether `workers` is 1 or 64.
#[derive(Debug, Clone)]
pub struct Sweep {
    specs: Vec<RunSpec>,
    workers: usize,
}

impl Sweep {
    /// A sweep over `specs` using every available core.
    pub fn new(specs: Vec<RunSpec>) -> Self {
        Sweep {
            specs,
            workers: default_workers(),
        }
    }

    /// Overrides the worker count (`1` = serial reference execution).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Appends a spec.
    pub fn push(&mut self, spec: RunSpec) {
        self.specs.push(spec);
    }

    /// The specs, in execution/result order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Executes every spec and returns one record per spec, in spec order.
    pub fn run(&self) -> Vec<RunRecord> {
        let reports = run_jobs(self.specs.len(), self.workers, |i| self.specs[i].execute());
        self.specs
            .iter()
            .zip(reports)
            .map(|(spec, report)| RunRecord {
                label: spec.label.clone(),
                config: spec.config,
                workload: spec.workload.name(),
                report,
            })
            .collect()
    }

    /// Executes every spec and returns the record with the fewest cycles
    /// (ties broken by spec order, exactly like a serial `min_by_key`).
    ///
    /// # Panics
    ///
    /// Panics on an empty sweep.
    pub fn best(&self) -> RunRecord {
        self.run()
            .into_iter()
            .min_by_key(|r| r.report.cycles())
            .expect("at least one spec")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;

    #[test]
    fn run_jobs_is_order_stable() {
        // Job i sleeps inversely to its index so completion order is the
        // reverse of submission order; results must still come back by index.
        let out = run_jobs(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_jobs_handles_edge_counts() {
        assert_eq!(run_jobs(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(1, 64, |i| i + 1), vec![1]);
        assert_eq!(run_jobs(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sweep_preserves_spec_order_and_labels() {
        let p = KernelParams {
            n: 12,
            tile_bytes: 512,
            steps: 1,
            reuse: 200,
        };
        let specs: Vec<RunSpec> = [SystemKind::Baseline, SystemKind::Xmem]
            .into_iter()
            .map(|kind| {
                RunSpec::new(
                    format!("{kind}"),
                    SystemConfig::scaled_use_case1(8 << 10, kind),
                    WorkloadSpec::kernel(PolybenchKernel::Mvt, p),
                )
            })
            .collect();
        let records = Sweep::new(specs).run();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "Baseline");
        assert_eq!(records[1].label, "XMem");
        assert_eq!(records[0].workload, "mvt");
        assert!(records.iter().all(|r| r.report.cycles() > 0));
    }
}
