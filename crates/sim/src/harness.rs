//! The experiment-sweep engine: enumerable run specifications executed on
//! a fixed-size worker pool with deterministic, order-stable results.
//!
//! Every figure in the paper is a *sweep*: the cross product of workloads,
//! system configurations, and parameter values, each point an independent
//! full-system simulation. This module gives that structure a first-class
//! API —
//!
//! * [`RunSpec`] names one point: a label, a [`SystemConfig`], and a
//!   [`WorkloadSpec`] saying what trace to run on it;
//! * [`Sweep`] executes a list of specs on `std::thread::scope` workers and
//!   returns one [`RunOutcome`] per spec, **in spec order** regardless of
//!   which worker finished first;
//! * [`run_jobs`] is the underlying generic pool for jobs that do not fit
//!   the `RunSpec` mold (e.g. multi-core co-runs).
//!
//! Simulations are pure functions of their config, so a parallel sweep is
//! bit-identical to a serial one — `tests/harness.rs` proves it.
//!
//! Sweeps degrade gracefully instead of aborting: every point runs inside
//! `catch_unwind`, so one panicking spec never discards the rest of the
//! grid ([`Sweep::run_outcomes`] surfaces it as a [`RunFailure`]). With
//! [`Sweep::report_dir`] each finished record is additionally streamed to
//! disk as it completes, and [`Sweep::resume_from`] reloads those finished
//! labels so a killed sweep re-runs only its missing points.
//!
//! ```
//! use workloads::polybench::{KernelParams, PolybenchKernel};
//! use xmem_sim::harness::{RunSpec, Sweep, WorkloadSpec};
//! use xmem_sim::{SystemConfig, SystemKind};
//!
//! let p = KernelParams { n: 16, tile_bytes: 1024, steps: 1, reuse: 200 };
//! let sweep = Sweep::new(
//!     [SystemKind::Baseline, SystemKind::Xmem]
//!         .map(|kind| RunSpec {
//!             label: format!("mvt/{kind}"),
//!             config: SystemConfig::scaled_use_case1(8 << 10, kind),
//!             workload: WorkloadSpec::kernel(PolybenchKernel::Mvt, p),
//!         })
//!         .to_vec(),
//! );
//! let records = sweep.run();
//! assert_eq!(records.len(), 2);
//! assert!(records[0].label.starts_with("mvt"));
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::config::SystemConfig;
use crate::machine::RunOutput;
use crate::report::RunReport;
use crate::report_sink::{config_kv, scan_point_records, write_point_record, JsonValue};
use crate::sampling::{SamplingSpec, SamplingSummary};
use crate::telemetry::TelemetrySeries;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::TraceSink;
use xmem_core::addr::cycles_to_u64;

/// The shared-counter scoped-thread pool underneath [`run_jobs`] and
/// [`Sweep`]: `run` additionally receives the worker index that executed
/// the job (for the report's `run` block).
fn pool<T, F>(jobs: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    // One slot per job: each is written exactly once, by whichever worker
    // drew that index.
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let slots = &slots;
            let next = &next;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = run(i, worker);
                // simlint: allow(unwrap, reason = "slot mutexes are never poisoned: worker panics are caught by catch_unwind inside run()")
                // simlint: allow(panic-in-worker, reason = "the expect fires only on lock poisoning, which the catch_unwind inside run() rules out")
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            // simlint: allow(panic-in-worker, reason = "runs after the scope joins; the expect fires only on lock poisoning, which the catch_unwind inside run() rules out")
            slot.into_inner()
                // simlint: allow(unwrap, reason = "slot mutexes are never poisoned: worker panics are caught by catch_unwind inside run()")
                .expect("result slot")
                // simlint: allow(unwrap, reason = "the shared counter hands every index to exactly one worker before the scope joins")
                .expect("every job index was claimed and ran")
        })
        .collect()
}

/// Runs `jobs` independent jobs on at most `workers` scoped threads and
/// returns their results **indexed by job**, not by completion order.
///
/// Jobs are handed out from a shared atomic counter, so workers stay busy
/// even when job runtimes vary wildly (a placement sweep mixes millisecond
/// and second-long simulations). `run` must be a pure function of the job
/// index for the sweep to be deterministic; the pool itself never reorders
/// results.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins. For fault
/// isolation (one bad point must not discard a whole grid), use
/// [`Sweep::run_outcomes`] instead.
pub fn run_jobs<T, F>(jobs: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pool(jobs, workers, |i, _worker| run(i))
}

/// The default worker count: the `XMEM_WORKERS` environment variable when
/// it parses as an integer (clamped to ≥ 1, so CI and scripts can pin the
/// pool without per-binary flags), otherwise the machine's available
/// parallelism.
pub fn default_workers() -> usize {
    // simlint: allow(nondet-taint, reason = "worker count shapes scheduling only; per-point results are merged in spec order, so the report bytes do not depend on it")
    workers_override(std::env::var("XMEM_WORKERS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The `XMEM_WORKERS` parse, separated from the process environment so
/// tests never need `set_var` (concurrent setenv/getenv is UB under the
/// threaded test harness).
fn workers_override(value: Option<&str>) -> Option<usize> {
    let n = value?.trim().parse::<usize>().ok()?;
    Some(n.max(1))
}

/// A thread-safe done/total meter that repaints one `\r` progress line on
/// stderr: `label: done/total, failures, ETA`. Sweeps drive it via
/// [`Sweep::progress`]; binaries with bespoke pools (co-runs) tick it by
/// hand around [`run_jobs`].
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    failed: AtomicUsize,
    resumed: AtomicUsize,
    start: Instant,
    enabled: bool,
}

impl Progress {
    /// A meter over `total` points, painting to stderr.
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        Progress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            resumed: AtomicUsize::new(0),
            // simlint: allow(nondet-taint, reason = "progress-meter start time feeds the stderr ETA line only, never the report")
            start: Instant::now(),
            enabled: true,
        }
    }

    /// A meter that counts but never paints (sweeps without a label).
    fn silent(total: usize) -> Self {
        Progress {
            enabled: false,
            ..Progress::new(String::new(), total)
        }
    }

    /// Records one executed point and repaints the line.
    pub fn tick(&self, failed: bool) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.repaint();
    }

    /// Records one point adopted from a report directory without
    /// executing. Resumed points reload in microseconds, so they are
    /// kept out of the ETA's per-point rate — counting them would make
    /// the remaining real work look nearly free.
    pub fn tick_resumed(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.resumed.fetch_add(1, Ordering::Relaxed);
        self.repaint();
    }

    fn repaint(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        let failures = self.failed.load(Ordering::Relaxed);
        let resumed = self.resumed.load(Ordering::Relaxed);
        let executed = done.saturating_sub(resumed);
        // simlint: allow(nondet-taint, reason = "elapsed time feeds the stderr ETA line only, never the report")
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = match eta_secs(elapsed, executed, self.total.saturating_sub(done)) {
            Some(secs) => fmt_eta(secs),
            None => "--".to_string(),
        };
        let resumed_note = if resumed > 0 {
            format!(" ({resumed} resumed)")
        } else {
            String::new()
        };
        eprint!(
            "\r{}: {done}/{} done{resumed_note}, {failures} failed, ETA {eta}   ",
            self.label, self.total,
        );
    }

    /// Terminates the progress line (call once, after the pool joins).
    pub fn finish(&self) {
        if self.enabled && self.total > 0 {
            eprintln!();
        }
    }
}

/// ETA from executed points only: `None` ("--") until at least one point
/// has actually run for a measurable time — a sweep that has so far only
/// reloaded resumed points has no rate to extrapolate from.
fn eta_secs(elapsed: f64, executed: usize, remaining: usize) -> Option<f64> {
    if remaining == 0 {
        return Some(0.0);
    }
    // simlint: allow(float-cmp, reason = "guard against a zero/negative wall-clock interval; only gates the ETA display, never simulation state")
    if executed == 0 || elapsed <= 0.0 {
        return None;
    }
    Some(elapsed / executed as f64 * remaining as f64)
}

fn fmt_eta(secs: f64) -> String {
    let s = secs.ceil() as u64;
    if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// What one run simulates: a workload-generator closure in data form, so
/// specs can be stored, enumerated, and shipped across threads.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A use-case-1 polybench kernel (Figs 4–6).
    Kernel {
        /// Which kernel.
        kernel: PolybenchKernel,
        /// Problem-size / tile parameters.
        params: KernelParams,
    },
    /// A use-case-2 placement workload (Figs 7–8).
    Placement(PlacementWorkload),
    /// A workload that panics when generated — fault injection for testing
    /// the sweep engine's isolation guarantees end to end.
    Fault {
        /// The panic message.
        message: String,
    },
}

impl WorkloadSpec {
    /// A kernel workload.
    pub fn kernel(kernel: PolybenchKernel, params: KernelParams) -> Self {
        WorkloadSpec::Kernel { kernel, params }
    }

    /// A placement workload.
    pub fn placement(w: PlacementWorkload) -> Self {
        WorkloadSpec::Placement(w)
    }

    /// A fault-injection workload that panics with `message`.
    pub fn fault(message: impl Into<String>) -> Self {
        WorkloadSpec::Fault {
            message: message.into(),
        }
    }

    /// The workload's short name (kernel or workload name).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Kernel { kernel, .. } => kernel.name(),
            WorkloadSpec::Placement(w) => w.name,
            WorkloadSpec::Fault { .. } => "fault",
        }
    }

    /// The workload's parameterization as a JSON object — serialized into
    /// every record (the `workload_params` block) and required to match on
    /// resume, so a point from a differently-sized run (e.g. `--quick`)
    /// can never be silently adopted by a full-size sweep. `Null` for
    /// workloads without a stored parameterization.
    pub fn params_json(&self) -> JsonValue {
        match self {
            WorkloadSpec::Kernel { params, .. } => JsonValue::object([
                ("n", JsonValue::U64(params.n as u64)),
                ("tile_bytes", JsonValue::U64(params.tile_bytes)),
                ("steps", JsonValue::U64(params.steps as u64)),
                ("reuse", JsonValue::U64(params.reuse as u64)),
            ]),
            WorkloadSpec::Placement(w) => JsonValue::object([
                (
                    "compute_per_access",
                    JsonValue::U64(w.compute_per_access as u64),
                ),
                ("accesses", JsonValue::U64(w.accesses)),
                (
                    "structs",
                    JsonValue::Array(
                        w.structs
                            .iter()
                            .map(|s| {
                                JsonValue::object([
                                    ("name", JsonValue::Str(s.name.to_string())),
                                    ("kib", JsonValue::U64(s.kib)),
                                    ("kind", JsonValue::Str(format!("{:?}", s.kind))),
                                    ("weight", JsonValue::U64(s.weight as u64)),
                                    ("write_pct", JsonValue::U64(s.write_pct as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            WorkloadSpec::Fault { .. } => JsonValue::Null,
        }
    }

    /// Replays the workload into a trace sink (what [`run_workload`] does
    /// twice: once to scan, once to execute).
    ///
    /// Generic over the sink so the executing path monomorphizes: driven
    /// through [`RunSpec::execute`], the generator's per-op sink calls
    /// inline straight into the batch emitter instead of going through a
    /// `dyn TraceSink` vtable per op.
    pub fn generate<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        match self {
            WorkloadSpec::Kernel { kernel, params } => kernel.generate(params, sink),
            WorkloadSpec::Placement(w) => w.generate(sink),
            WorkloadSpec::Fault { message } => panic!("{message}"),
        }
    }
}

impl crate::machine::Generator for WorkloadSpec {
    fn emit<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        self.generate(sink);
    }
}

/// One enumerable experiment point.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Human-readable point label (becomes the report's `label` field).
    pub label: String,
    /// The complete system configuration to simulate.
    pub config: SystemConfig,
    /// What to run on it.
    pub workload: WorkloadSpec,
}

impl RunSpec {
    /// A spec with a label built from the workload name.
    pub fn new(label: impl Into<String>, config: SystemConfig, workload: WorkloadSpec) -> Self {
        RunSpec {
            label: label.into(),
            config,
            workload,
        }
    }

    /// Executes this spec (one full two-pass simulation). Pure: equal specs
    /// give equal reports.
    ///
    /// This is the monomorphized hot path: the workload's sink calls inline
    /// into the batch emitter with no per-op virtual dispatch.
    pub fn execute(&self) -> RunReport {
        crate::machine::run_generator(&self.config, None, &self.workload).0
    }

    /// Like [`RunSpec::execute`], additionally sampling a telemetry series
    /// every `epoch_instructions` retired instructions when `Some`.
    /// Sampling is observational: the report is identical either way.
    pub fn execute_with_telemetry(
        &self,
        epoch_instructions: Option<u64>,
    ) -> (RunReport, Option<TelemetrySeries>) {
        crate::machine::run_generator(&self.config, epoch_instructions, &self.workload)
    }

    /// Like [`RunSpec::execute_with_telemetry`], additionally executing
    /// under an interval [`SamplingSpec`] when one is given (`None` runs
    /// fully detailed — identical to the other entry points).
    pub fn execute_sampled(
        &self,
        epoch_instructions: Option<u64>,
        sampling: Option<SamplingSpec>,
    ) -> RunOutput {
        crate::machine::run_generator_sampled(
            &self.config,
            epoch_instructions,
            sampling,
            &self.workload,
        )
    }
}

/// Execution metadata for one finished point — the report's optional
/// `run` block. Pure observability: it never feeds back into the
/// simulation, so two runs of the same spec differ only here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunMeta {
    /// Wall-clock execution time of the point, in nanoseconds.
    pub wall_nanos: u64,
    /// Index of the pool worker that executed the point.
    pub worker: u64,
    /// Whether the record was reloaded from a report directory by
    /// [`Sweep::resume_from`] rather than executed in this process.
    pub resumed: bool,
}

/// A run spec together with its measured report — the unit every
/// [`crate::report_sink::ReportSink`] serializes.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's label.
    pub label: String,
    /// The configuration that produced the report.
    pub config: SystemConfig,
    /// The workload's short name.
    pub workload: &'static str,
    /// The workload's parameterization ([`WorkloadSpec::params_json`]);
    /// `Null` when unknown (e.g. a replayed trace).
    pub workload_params: JsonValue,
    /// The measurements.
    pub report: RunReport,
    /// Epoch-sampled time series ([`crate::telemetry`]); `None` unless the
    /// sweep enabled sampling via [`Sweep::epoch`]. Serialized as the
    /// record's optional `telemetry` block.
    pub telemetry: Option<TelemetrySeries>,
    /// Interval-sampling summary ([`crate::sampling`]); `None` unless the
    /// sweep executed under a [`Sweep::sampling`] spec. Serialized as the
    /// record's optional `sampling` block.
    pub sampling: Option<SamplingSummary>,
    /// How the point was executed (`None` for records built outside a
    /// sweep, e.g. replayed from JSON).
    pub run: Option<RunMeta>,
}

/// One spec's panic, caught by the sweep so the rest of the grid survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// The failing spec's label.
    pub label: String,
    /// The panic payload, rendered to a string.
    pub message: String,
}

/// What happened to one spec of a sweep.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The spec executed in this process.
    Completed(RunRecord),
    /// The record was reloaded from a report directory by
    /// [`Sweep::resume_from`] instead of re-executing.
    Resumed(RunRecord),
    /// The spec panicked. Every other point of the sweep still ran.
    Failed(RunFailure),
}

impl RunOutcome {
    /// The record, when the point completed or resumed.
    pub fn record(&self) -> Option<&RunRecord> {
        match self {
            RunOutcome::Completed(r) | RunOutcome::Resumed(r) => Some(r),
            RunOutcome::Failed(_) => None,
        }
    }

    /// The record by value, when the point completed or resumed.
    pub fn into_record(self) -> Option<RunRecord> {
        match self {
            RunOutcome::Completed(r) | RunOutcome::Resumed(r) => Some(r),
            RunOutcome::Failed(_) => None,
        }
    }

    /// The failure, when the point panicked.
    pub fn failure(&self) -> Option<&RunFailure> {
        match self {
            RunOutcome::Failed(f) => Some(f),
            _ => None,
        }
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A batch of [`RunSpec`]s executed on a worker pool.
///
/// Results come back in spec order; with pure specs the records are
/// byte-identical whether `workers` is 1 or 64. Each point runs inside
/// `catch_unwind`, so a panicking spec costs exactly one point — never the
/// grid.
#[derive(Debug, Clone)]
pub struct Sweep {
    specs: Vec<RunSpec>,
    workers: usize,
    stream_dir: Option<PathBuf>,
    resumed: BTreeMap<String, RunRecord>,
    progress: Option<String>,
    epoch: Option<u64>,
    sampling: Option<SamplingSpec>,
}

impl Sweep {
    /// A sweep over `specs` using [`default_workers`] threads.
    pub fn new(specs: Vec<RunSpec>) -> Self {
        Sweep {
            specs,
            workers: default_workers(),
            stream_dir: None,
            resumed: BTreeMap::new(),
            progress: None,
            epoch: None,
            sampling: None,
        }
    }

    /// Overrides the worker count (`1` = serial reference execution).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Samples a telemetry time series on every point, one sample per
    /// `epoch_instructions` retired (clamped to ≥ 1); the series lands in
    /// each record's `telemetry` block. Call *before*
    /// [`Sweep::resume_from`]: a stored point is adopted only when its
    /// sampling epoch matches this setting (no block ↔ `None`).
    pub fn epoch(mut self, epoch_instructions: Option<u64>) -> Self {
        self.epoch = epoch_instructions.map(|e| e.max(1));
        self
    }

    /// Executes every point under the interval-sampling schedule `spec`
    /// (fast-forward / functional warmup / detailed windows); each record
    /// gains a `sampling` block with the sampled estimates and their
    /// confidence intervals. Call *before* [`Sweep::resume_from`]: a
    /// stored point is adopted only when its sampling spec matches this
    /// setting (no block ↔ `None`).
    pub fn sampling(mut self, spec: Option<SamplingSpec>) -> Self {
        self.sampling = spec;
        self
    }

    /// Paints a `label: done/total, failures, ETA` progress line on stderr
    /// while the sweep runs.
    pub fn progress(mut self, label: impl Into<String>) -> Self {
        self.progress = Some(label.into());
        self
    }

    /// Streams each record into `dir` as it finishes (one single-record
    /// `xmem-report-v1` file per point, written atomically), so a killed
    /// sweep loses only its in-flight points.
    pub fn report_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.stream_dir = Some(dir.into());
        self
    }

    /// Like [`Sweep::report_dir`], additionally reloading every point
    /// already finished in `dir`: a resumed sweep re-executes only the
    /// missing labels and returns [`RunOutcome::Resumed`] for the rest.
    ///
    /// A stored point is adopted only when its label, workload name,
    /// workload parameters, and serialized config summary all match the
    /// spec — stale files from a different parameterization (including a
    /// `--quick`-sized run in the same directory) simply re-run. Call this
    /// after every
    /// spec has been pushed. Unreadable directories or files are skipped
    /// with a warning (a kill can truncate the in-flight file); those
    /// points re-run too.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let records = match scan_point_records(&dir) {
            Ok(records) => records,
            Err(e) => {
                eprintln!(
                    "warning: cannot scan report dir {}: {e}; running the full sweep",
                    dir.display()
                );
                self.stream_dir = Some(dir);
                return self;
            }
        };
        let by_label: BTreeMap<&str, &RunSpec> =
            self.specs.iter().map(|s| (s.label.as_str(), s)).collect();
        let mut resumed = BTreeMap::new();
        for rec in &records {
            let Some(label) = rec.get("label").and_then(|l| l.as_str()) else {
                continue;
            };
            let Some(spec) = by_label.get(label) else {
                continue;
            };
            if rec.get("workload").and_then(|w| w.as_str()) != Some(spec.workload.name()) {
                continue;
            }
            // Workload parameters must match too: labels and config
            // summaries do not encode problem sizes, so without this a
            // `--quick` run's points would silently resume into a
            // full-size sweep. Old records without the block never match.
            if rec.get("workload_params").unwrap_or(&JsonValue::Null)
                != &spec.workload.params_json()
            {
                continue;
            }
            // The stored config summary must match the spec's exactly — a
            // point from a differently-parameterized sweep re-runs instead
            // of silently resuming.
            if rec.get("config") != Some(&JsonValue::object(config_kv(&spec.config))) {
                continue;
            }
            // The stored telemetry must match the sweep's sampling setup:
            // a record without the block cannot satisfy a sweep that wants
            // a series, and a series sampled on a different epoch re-runs
            // rather than silently resuming with the wrong resolution.
            let telemetry = TelemetrySeries::from_record_json(rec);
            if telemetry.as_ref().map(|t| t.epoch_instructions) != self.epoch {
                continue;
            }
            // Likewise the sampling schedule: a full-detail record cannot
            // satisfy a sampled sweep (or vice versa), and a record sampled
            // under a different spec re-runs instead of resuming with the
            // wrong coverage.
            let sampling = SamplingSummary::from_record_json(rec);
            if sampling.as_ref().map(|s| s.spec) != self.sampling {
                continue;
            }
            let Some(report) = RunRecord::report_from_json(rec) else {
                continue;
            };
            let run = RunMeta {
                resumed: true,
                ..RunMeta::from_record_json(rec).unwrap_or_default()
            };
            resumed.insert(
                label.to_string(),
                RunRecord {
                    label: label.to_string(),
                    config: spec.config,
                    workload: spec.workload.name(),
                    workload_params: spec.workload.params_json(),
                    report,
                    telemetry,
                    sampling,
                    run: Some(run),
                },
            );
        }
        self.resumed = resumed;
        self.stream_dir = Some(dir);
        self
    }

    /// Appends a spec.
    pub fn push(&mut self, spec: RunSpec) {
        self.specs.push(spec);
    }

    /// The specs, in execution/result order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Executes every spec and returns one outcome per spec, in spec
    /// order. Each point runs inside `catch_unwind`: a panicking spec
    /// yields [`RunOutcome::Failed`] while every other point completes
    /// (and streams, when a report directory is set). Never unwinds.
    pub fn run_outcomes(&self) -> Vec<RunOutcome> {
        let total = self.specs.len();
        let progress = match &self.progress {
            Some(label) => Progress::new(label.clone(), total),
            None => Progress::silent(total),
        };
        let outcomes = pool(total, self.workers, |i, worker| {
            let spec = &self.specs[i];
            if let Some(record) = self.resumed.get(&spec.label) {
                progress.tick_resumed();
                return RunOutcome::Resumed(record.clone());
            }
            // simlint: allow(nondet-taint, reason = "wall_nanos lands only in the RunMeta `run` block, which is documented pure observability and excluded from determinism comparisons")
            let start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| {
                spec.execute_sampled(self.epoch, self.sampling)
            })) {
                Ok(out) => {
                    let record = RunRecord {
                        label: spec.label.clone(),
                        config: spec.config,
                        workload: spec.workload.name(),
                        workload_params: spec.workload.params_json(),
                        report: out.report,
                        telemetry: out.telemetry,
                        sampling: out.sampling,
                        run: Some(RunMeta {
                            // simlint: allow(nondet-taint, reason = "wall_nanos lands only in the RunMeta `run` block, which is documented pure observability and excluded from determinism comparisons")
                            wall_nanos: cycles_to_u64(start.elapsed().as_nanos()),
                            worker: worker as u64,
                            resumed: false,
                        }),
                    };
                    if let Some(dir) = &self.stream_dir {
                        if let Err(e) = write_point_record(dir, &record) {
                            eprintln!(
                                "warning: cannot stream record '{}' to {}: {e}",
                                record.label,
                                dir.display()
                            );
                        }
                    }
                    progress.tick(false);
                    RunOutcome::Completed(record)
                }
                Err(payload) => {
                    progress.tick(true);
                    RunOutcome::Failed(RunFailure {
                        label: spec.label.clone(),
                        message: panic_message(payload),
                    })
                }
            }
        });
        progress.finish();
        outcomes
    }

    /// Executes every spec and returns one record per spec, in spec order.
    ///
    /// # Panics
    ///
    /// Panics with a summary of every failure — but only *after* the whole
    /// grid has run (and streamed, when a report directory is set), so one
    /// bad point never discards the others' work. Use
    /// [`Sweep::run_outcomes`] to handle failures without unwinding.
    pub fn run(&self) -> Vec<RunRecord> {
        let outcomes = self.run_outcomes();
        let total = outcomes.len();
        let mut records = Vec::with_capacity(total);
        let mut failures = Vec::new();
        for outcome in outcomes {
            match outcome {
                RunOutcome::Completed(r) | RunOutcome::Resumed(r) => records.push(r),
                RunOutcome::Failed(f) => failures.push(f),
            }
        }
        assert!(
            failures.is_empty(),
            "sweep: {}/{total} points panicked (every other point completed): {}",
            failures.len(),
            failures
                .iter()
                .map(|f| format!("{}: {}", f.label, f.message))
                .collect::<Vec<_>>()
                .join("; ")
        );
        records
    }

    /// Executes every spec and returns the completed record with the
    /// fewest cycles (ties broken by spec order, exactly like a serial
    /// `min_by_key`). `None` when the sweep is empty or every point
    /// failed; failed points are otherwise skipped.
    pub fn best(&self) -> Option<RunRecord> {
        self.run_outcomes()
            .into_iter()
            .filter_map(RunOutcome::into_record)
            .min_by_key(|r| r.report.cycles())
    }
}

/// The per-point streaming location for a report directory scoped to one
/// figure: `<dir>/<name>.points`.
pub fn points_dir(dir: impl AsRef<Path>, name: &str) -> PathBuf {
    dir.as_ref().join(format!("{name}.points"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;

    #[test]
    fn run_jobs_is_order_stable() {
        // Job i sleeps inversely to its index so completion order is the
        // reverse of submission order; results must still come back by index.
        let out = run_jobs(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_jobs_handles_edge_counts() {
        assert_eq!(run_jobs(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(1, 64, |i| i + 1), vec![1]);
        assert_eq!(run_jobs(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_reports_worker_indices_in_range() {
        let out = pool(16, 3, |i, worker| {
            assert!(worker < 3);
            (i, worker)
        });
        assert!(out.iter().enumerate().all(|(i, (j, _))| i == *j));
        // Serial pools attribute everything to worker 0.
        assert!(pool(4, 1, |_, worker| worker).iter().all(|w| *w == 0));
    }

    #[test]
    fn sweep_preserves_spec_order_and_labels() {
        let p = KernelParams {
            n: 12,
            tile_bytes: 512,
            steps: 1,
            reuse: 200,
        };
        let specs: Vec<RunSpec> = [SystemKind::Baseline, SystemKind::Xmem]
            .into_iter()
            .map(|kind| {
                RunSpec::new(
                    format!("{kind}"),
                    SystemConfig::scaled_use_case1(8 << 10, kind),
                    WorkloadSpec::kernel(PolybenchKernel::Mvt, p),
                )
            })
            .collect();
        let records = Sweep::new(specs).run();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "Baseline");
        assert_eq!(records[1].label, "XMem");
        assert_eq!(records[0].workload, "mvt");
        assert!(records.iter().all(|r| r.report.cycles() > 0));
        // Every sweep-produced record carries execution metadata.
        assert!(records.iter().all(|r| {
            let run = r.run.expect("sweep records carry a run block");
            run.wall_nanos > 0 && !run.resumed
        }));
    }

    #[test]
    fn xmem_workers_env_overrides_default() {
        // Exercise the parse directly: mutating the real environment from
        // a test is UB under the threaded test harness (concurrent
        // setenv/getenv on glibc) and races other tests.
        assert_eq!(workers_override(Some("3")), Some(3));
        assert_eq!(workers_override(Some("0")), Some(1), "clamped to >= 1");
        assert_eq!(
            workers_override(Some(" 7 ")),
            Some(7),
            "whitespace tolerated"
        );
        assert_eq!(
            workers_override(Some("not-a-number")),
            None,
            "garbage falls back"
        );
        assert_eq!(workers_override(None), None, "unset falls back");
        assert!(default_workers() >= 1);
    }

    #[test]
    fn fmt_eta_renders_minutes() {
        assert_eq!(fmt_eta(0.0), "0s");
        assert_eq!(fmt_eta(58.2), "59s");
        assert_eq!(fmt_eta(61.0), "1m01s");
        assert_eq!(fmt_eta(3600.0), "60m00s");
    }

    #[test]
    fn eta_extrapolates_from_executed_points_only() {
        // 2 executed points in 10s, 3 remaining → 15s.
        assert_eq!(eta_secs(10.0, 2, 3), Some(15.0));
        // Everything done (or everything resumed): ETA 0, never NaN.
        assert_eq!(eta_secs(0.0, 0, 0), Some(0.0));
        assert_eq!(eta_secs(5.0, 0, 0), Some(0.0));
        // No executed points yet — a resumed-only prefix has no rate to
        // extrapolate from; must not divide by zero.
        assert_eq!(eta_secs(3.0, 0, 7), None);
        // Degenerate clock (first tick lands within timer resolution).
        assert_eq!(eta_secs(0.0, 1, 7), None);
    }

    #[test]
    fn progress_ticks_do_not_panic_with_resumed_points() {
        // Exercise the repaint paths directly: resumed-only (no rate),
        // then a mixed executed/failed tail.
        let p = Progress::new("unit", 4);
        p.tick_resumed();
        p.tick_resumed();
        p.tick(false);
        p.tick(true);
        assert_eq!(p.done.load(Ordering::Relaxed), 4);
        assert_eq!(p.resumed.load(Ordering::Relaxed), 2);
        assert_eq!(p.failed.load(Ordering::Relaxed), 1);
        p.finish();
    }
}
