//! Run statistics and derived metrics.

use cache_sim::{CacheStats, PrefetchStats};
use cpu_sim::CoreStats;
use dram_sim::DramStats;
use xmem_core::alb::AlbStats;

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Core-level statistics (cycles, instructions, loads).
    pub core: CoreStats,
    /// L1 cache statistics.
    pub l1: CacheStats,
    /// L2 cache statistics.
    pub l2: CacheStats,
    /// L3 cache statistics.
    pub l3: CacheStats,
    /// DRAM statistics (row hits, latencies, traffic).
    pub dram: DramStats,
    /// Atom-lookaside-buffer statistics (§4.2's 98.9% coverage claim).
    pub alb: AlbStats,
    /// XMem ISA instructions executed.
    pub xmem_instructions: u64,
    /// XMem instructions as a fraction of all instructions (§4.4(2)).
    pub instruction_overhead: f64,
    /// XMem-guided prefetcher statistics.
    pub xmem_prefetch: PrefetchStats,
    /// Baseline stride-prefetcher statistics (when enabled).
    pub stride_prefetch: Option<PrefetchStats>,
}

impl RunReport {
    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.core.cycles
    }

    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.core.cycles as f64 / self.core.cycles.max(1) as f64
    }

    /// Execution time normalized to `reference` (>1 means slower).
    pub fn normalized_time(&self, reference: &RunReport) -> f64 {
        self.core.cycles as f64 / reference.core.cycles.max(1) as f64
    }

    /// Average DRAM *demand* read latency normalized to `reference`
    /// (prefetch reads are off the critical path).
    pub fn normalized_read_latency(&self, reference: &RunReport) -> f64 {
        let r = reference.dram.avg_demand_read_latency();
        // simlint: allow(float-cmp, reason = "exact-zero sentinel for a no-demand-reads reference; a derived report metric, not a scheduling decision")
        if r == 0.0 {
            1.0
        } else {
            self.dram.avg_demand_read_latency() / r
        }
    }

    /// L3 misses per kilo-instruction.
    pub fn l3_mpki(&self) -> f64 {
        self.l3.mpk(self.core.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, read_lat: u64, reads: u64) -> RunReport {
        RunReport {
            core: CoreStats {
                cycles,
                instructions: 1000,
                ..Default::default()
            },
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            l3: CacheStats::default(),
            dram: DramStats {
                reads,
                demand_reads: reads,
                total_read_latency: read_lat * reads,
                total_demand_read_latency: read_lat * reads,
                ..Default::default()
            },
            alb: AlbStats::default(),
            xmem_instructions: 0,
            instruction_overhead: 0.0,
            xmem_prefetch: PrefetchStats::default(),
            stride_prefetch: None,
        }
    }

    #[test]
    fn speedup_and_normalization() {
        let fast = report(500, 100, 10);
        let slow = report(1000, 150, 10);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.normalized_time(&fast) - 2.0).abs() < 1e-9);
        assert!((fast.normalized_read_latency(&slow) - 100.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn mpki_uses_instructions() {
        let mut r = report(100, 0, 0);
        r.l3 = CacheStats {
            accesses: 50,
            hits: 30,
            ..Default::default()
        };
        assert!((r.l3_mpki() - 20.0).abs() < 1e-9); // 20 misses / 1k inst
    }
}
