//! Structured observability for sweep results: JSON and CSV emission.
//!
//! A [`ReportSink`] consumes [`RunRecord`]s and renders them as a machine-
//! readable document — [`JsonSink`] produces the `xmem-report-v1` schema
//! (one object per record, nested by component), [`CsvSink`] a flat table
//! with dotted column names (`core.cycles`, `dram.row_hit_rate`, …). Both
//! are hand-rolled on `std` only; [`JsonValue`] includes a parser so tests
//! (and downstream tooling) can round-trip reports.
//!
//! ```
//! use workloads::polybench::{KernelParams, PolybenchKernel};
//! use xmem_sim::{JsonSink, KernelRun, ReportSink, Sweep};
//!
//! let p = KernelParams { n: 12, tile_bytes: 512, steps: 1, reuse: 200 };
//! let records = Sweep::new(vec![KernelRun::new(PolybenchKernel::Mvt, p).spec()]).run();
//! let mut sink = JsonSink::new();
//! for r in &records {
//!     sink.emit(r).unwrap();
//! }
//! let doc = xmem_sim::report_sink::JsonValue::parse(&sink.render()).unwrap();
//! assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("xmem-report-v1"));
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{FramePolicyKind, SystemConfig};
use crate::harness::{RunMeta, RunRecord};
use crate::report::RunReport;
use cache_sim::{CacheStats, PrefetchStats};
use cpu_sim::kv::{KvPairs, KvValue};
use cpu_sim::CoreStats;
use dram_sim::DramStats;
use xmem_core::alb::AlbStats;

/// The schema identifier stamped into every JSON report document.
pub const JSON_SCHEMA: &str = "xmem-report-v1";

// ──────────────────────────── JSON values ────────────────────────────

/// A JSON document tree. Objects preserve insertion order, so rendering is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters).
    U64(u64),
    /// A float (ratios, averages). Always rendered with a decimal point or
    /// exponent so the type survives a round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (ordered key → value pairs).
    Object(Vec<(String, JsonValue)>),
}

impl From<KvValue> for JsonValue {
    fn from(v: KvValue) -> Self {
        match v {
            KvValue::U64(v) => JsonValue::U64(v),
            KvValue::F64(v) => JsonValue::F64(v),
            KvValue::Bool(v) => JsonValue::Bool(v),
        }
    }
}

impl JsonValue {
    /// An object from named pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An object from a stats `kv()` list.
    pub fn from_kv(pairs: KvPairs) -> Self {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.into()))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => render_f64(*v, out),
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for everything this module
    /// renders; accepts arbitrary whitespace).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

fn render_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // Keep the float/integer distinction through a round-trip.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A record rejected by a [`ReportSink`] — e.g. a CSV record whose
/// flattened columns do not match the table's header. Carried as a typed
/// error (rather than a panic) so binaries can diagnose the offending
/// record and exit cleanly, and so a sink failure inside a sweep worker
/// surfaces as [`crate::harness::RunOutcome::Failed`] rather than
/// tearing the process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError {
    /// Label of the rejected record.
    pub label: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record `{}` rejected: {}", self.label, self.message)
    }
}

impl std::error::Error for SinkError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over a run of plain bytes, then re-decode as UTF-8.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.contains(['.', 'e', 'E']) || text.starts_with('-') {
            text.parse::<f64>()
                .map(JsonValue::F64)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(JsonValue::U64)
                .map_err(|_| self.err("bad number"))
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ─────────────────────── record serialization ────────────────────────

fn frame_policy_str(policy: FramePolicyKind) -> String {
    match policy {
        FramePolicyKind::Sequential => "sequential".to_string(),
        FramePolicyKind::Randomized { seed } => format!("randomized({seed:#x})"),
        FramePolicyKind::XmemPlacement => "xmem-placement".to_string(),
    }
}

/// The configuration summary serialized with every record.
pub fn config_kv(cfg: &SystemConfig) -> Vec<(&'static str, JsonValue)> {
    vec![
        (
            "xmem_mode",
            JsonValue::Str(format!("{:?}", cfg.hierarchy.xmem)),
        ),
        ("mapping", JsonValue::Str(cfg.mapping.name().to_string())),
        (
            "frame_policy",
            JsonValue::Str(frame_policy_str(cfg.frame_policy)),
        ),
        ("ideal_rbl", JsonValue::Bool(cfg.ideal_rbl)),
        (
            "stride_prefetcher",
            JsonValue::Bool(cfg.hierarchy.stride_prefetcher),
        ),
        ("l1_bytes", JsonValue::U64(cfg.hierarchy.l1.size_bytes)),
        ("l2_bytes", JsonValue::U64(cfg.hierarchy.l2.size_bytes)),
        ("l3_bytes", JsonValue::U64(cfg.hierarchy.l3.size_bytes)),
        ("phys_bytes", JsonValue::U64(cfg.phys_bytes)),
        ("dram_channels", JsonValue::U64(cfg.dram.channels as u64)),
        ("tlb", JsonValue::Bool(cfg.tlb.is_some())),
    ]
}

/// The derived headline metrics serialized with every record (Figs 4–8
/// plotting axes: IPC, MPKI, row locality, ALB coverage, overheads).
pub fn derived_kv(report: &RunReport) -> KvPairs {
    vec![
        ("ipc", report.core.ipc().into()),
        ("l3_mpki", report.l3_mpki().into()),
        ("row_hit_rate", report.dram.row_hit_rate().into()),
        ("alb_coverage", report.alb.hit_rate().into()),
        (
            "avg_demand_read_latency",
            report.dram.avg_demand_read_latency().into(),
        ),
        ("instruction_overhead", report.instruction_overhead.into()),
    ]
}

impl RunRecord {
    /// This record as one `xmem-report-v1` JSON object, nested by
    /// component.
    pub fn to_json(&self) -> JsonValue {
        self.to_json_with(&[])
    }

    /// Like [`RunRecord::to_json`], with caller-computed extras (e.g.
    /// speedups over a baseline record) merged into the `derived` object.
    pub fn to_json_with(&self, extras: &[(&'static str, KvValue)]) -> JsonValue {
        let r = &self.report;
        let mut derived = derived_kv(r);
        derived.extend(extras.iter().copied());
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("workload".into(), JsonValue::Str(self.workload.to_string())),
            ("config".into(), JsonValue::object(config_kv(&self.config))),
            ("core".into(), JsonValue::from_kv(r.core.kv())),
            ("l1".into(), JsonValue::from_kv(r.l1.kv())),
            ("l2".into(), JsonValue::from_kv(r.l2.kv())),
            ("l3".into(), JsonValue::from_kv(r.l3.kv())),
            ("dram".into(), JsonValue::from_kv(r.dram.kv())),
            (
                // xmem-core sits outside the cpu-sim stats chain, so the
                // ALB is spelled out rather than via kv().
                "alb".into(),
                JsonValue::object([
                    ("hits", JsonValue::U64(r.alb.hits)),
                    ("misses", JsonValue::U64(r.alb.misses)),
                    ("hit_rate", JsonValue::F64(r.alb.hit_rate())),
                ]),
            ),
            (
                "xmem".into(),
                JsonValue::object([
                    ("instructions", JsonValue::U64(r.xmem_instructions)),
                    (
                        "instruction_overhead",
                        JsonValue::F64(r.instruction_overhead),
                    ),
                ]),
            ),
            (
                "xmem_prefetch".into(),
                JsonValue::from_kv(r.xmem_prefetch.kv()),
            ),
            (
                "stride_prefetch".into(),
                match &r.stride_prefetch {
                    Some(p) => JsonValue::from_kv(p.kv()),
                    None => JsonValue::Null,
                },
            ),
        ];
        // Optional, backwards-compatible workload parameterization: resume
        // refuses to adopt a point whose parameters (problem size, tile,
        // placement mix) differ from the spec's. Absent when unknown.
        if self.workload_params != JsonValue::Null {
            fields.insert(2, ("workload_params".into(), self.workload_params.clone()));
        }
        // Optional, backwards-compatible epoch-sampled time series: absent
        // unless the sweep enabled telemetry, so v1 consumers keep parsing.
        if let Some(telemetry) = &self.telemetry {
            fields.push(("telemetry".into(), telemetry.to_json()));
        }
        // Optional, backwards-compatible sampling summary: absent unless the
        // sweep ran in sampled mode, so v1 consumers keep parsing.
        if let Some(sampling) = &self.sampling {
            fields.push(("sampling".into(), sampling.to_json()));
        }
        fields.push(("derived".into(), JsonValue::from_kv(derived)));
        // Optional, backwards-compatible execution metadata: absent for
        // records built outside a sweep, so v1 consumers keep parsing.
        if let Some(run) = &self.run {
            fields.push(("run".into(), run.to_json()));
        }
        JsonValue::Object(fields)
    }

    /// Rebuilds the measured report from one `xmem-report-v1` record
    /// object — the inverse of [`RunRecord::to_json`] for every *stored*
    /// counter, used by [`crate::harness::Sweep::resume_from`]. Derived
    /// metrics are recomputed on demand; the demand-read latency
    /// histogram is not serialized and comes back empty. `None` when a
    /// required field is missing or mistyped.
    pub fn report_from_json(record: &JsonValue) -> Option<RunReport> {
        let core = record.get("core")?;
        let dram = record.get("dram")?;
        let alb = record.get("alb")?;
        let xmem = record.get("xmem")?;
        Some(RunReport {
            core: CoreStats {
                cycles: u64_field(core, "cycles")?,
                instructions: u64_field(core, "instructions")?,
                loads: u64_field(core, "loads")?,
                stores: u64_field(core, "stores")?,
                total_load_latency: u64_field(core, "total_load_latency")?,
            },
            l1: cache_stats_from_json(record.get("l1")?)?,
            l2: cache_stats_from_json(record.get("l2")?)?,
            l3: cache_stats_from_json(record.get("l3")?)?,
            dram: DramStats {
                demand_read_hist: Default::default(),
                reads: u64_field(dram, "reads")?,
                demand_reads: u64_field(dram, "demand_reads")?,
                total_demand_read_latency: u64_field(dram, "total_demand_read_latency")?,
                writes: u64_field(dram, "writes")?,
                row_hits: u64_field(dram, "row_hits")?,
                row_misses: u64_field(dram, "row_misses")?,
                row_conflicts: u64_field(dram, "row_conflicts")?,
                total_read_latency: u64_field(dram, "total_read_latency")?,
                total_write_latency: u64_field(dram, "total_write_latency")?,
            },
            alb: AlbStats {
                hits: u64_field(alb, "hits")?,
                misses: u64_field(alb, "misses")?,
            },
            xmem_instructions: u64_field(xmem, "instructions")?,
            instruction_overhead: f64_field(xmem, "instruction_overhead")?,
            xmem_prefetch: prefetch_stats_from_json(record.get("xmem_prefetch")?)?,
            stride_prefetch: match record.get("stride_prefetch")? {
                JsonValue::Null => None,
                v => Some(prefetch_stats_from_json(v)?),
            },
        })
    }

    /// This record as flat `(column, value)` cells with dotted names — the
    /// CSV row form.
    pub fn flat_cells(&self, extras: &[(&'static str, KvValue)]) -> Vec<(String, JsonValue)> {
        fn flatten(prefix: &str, value: &JsonValue, out: &mut Vec<(String, JsonValue)>) {
            match value {
                JsonValue::Object(pairs) => {
                    for (k, v) in pairs {
                        let name = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        flatten(&name, v, out);
                    }
                }
                other => out.push((prefix.to_string(), other.clone())),
            }
        }
        let mut out = Vec::new();
        // The telemetry and sampling blocks are per-record variable-length
        // structures (a time series; a window/cluster summary), so they
        // cannot flatten into the fixed column set a CSV table requires —
        // rows omit them (the JSON form keeps them).
        if let JsonValue::Object(pairs) = self.to_json_with(extras) {
            for (k, v) in &pairs {
                if k == "telemetry" || k == "sampling" {
                    continue;
                }
                flatten(k, v, &mut out);
            }
        }
        out
    }
}

impl RunMeta {
    /// This metadata as the record's optional `run` JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("wall_nanos", JsonValue::U64(self.wall_nanos)),
            ("worker", JsonValue::U64(self.worker)),
            (
                "outcome",
                JsonValue::Str(if self.resumed { "resumed" } else { "ok" }.to_string()),
            ),
        ])
    }

    /// Reads the optional `run` block back out of a record object.
    pub fn from_record_json(record: &JsonValue) -> Option<RunMeta> {
        let run = record.get("run")?;
        Some(RunMeta {
            wall_nanos: run.get("wall_nanos")?.as_u64()?,
            worker: run.get("worker")?.as_u64()?,
            resumed: run.get("outcome")?.as_str()? == "resumed",
        })
    }
}

fn u64_field(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn f64_field(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

fn cache_stats_from_json(v: &JsonValue) -> Option<CacheStats> {
    Some(CacheStats {
        accesses: u64_field(v, "accesses")?,
        hits: u64_field(v, "hits")?,
        fills: u64_field(v, "fills")?,
        evictions: u64_field(v, "evictions")?,
        writebacks: u64_field(v, "writebacks")?,
        // Emitted only when nonzero (coherent runs), so absence means 0.
        snoop_invalidations: u64_field(v, "snoop_invalidations").unwrap_or(0),
        snoop_writebacks: u64_field(v, "snoop_writebacks").unwrap_or(0),
    })
}

fn prefetch_stats_from_json(v: &JsonValue) -> Option<PrefetchStats> {
    Some(PrefetchStats {
        issued: u64_field(v, "issued")?,
        useful: u64_field(v, "useful")?,
    })
}

// ─────────────────────── per-point streaming ─────────────────────────

/// FNV-1a, for a stable label → file-name mapping.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The file name a point record streams to inside a report directory:
/// the sanitized label plus a stable hash of the full label, so every
/// label (however odd its characters) maps to its own path.
pub fn point_file_name(label: &str) -> String {
    let mut sanitized: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    sanitized.truncate(80);
    format!("{sanitized}-{:016x}.json", label_hash(label))
}

/// Writes one record into `dir` as a single-record `xmem-report-v1`
/// document, atomically (temp file + rename), creating `dir` as needed.
/// This is the sweep's streaming path: a run killed mid-sweep leaves
/// every finished point durable and at worst one truncated temp file.
pub fn write_point_record(dir: &Path, record: &RunRecord) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(point_file_name(&record.label));
    let doc = JsonValue::object([
        ("schema", JsonValue::Str(JSON_SCHEMA.to_string())),
        ("records", JsonValue::Array(vec![record.to_json()])),
    ])
    .render();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Reads every `*.json` point file in `dir` and returns the record
/// objects found, in file-name order. A missing directory is an empty
/// scan; files that fail to read, parse, or carry the wrong schema are
/// skipped (a killed run may leave a truncated file — that point simply
/// re-runs).
pub fn scan_point_records(dir: &Path) -> io::Result<Vec<JsonValue>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut records = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = JsonValue::parse(&text) else {
            eprintln!(
                "warning: skipping unparseable point file {}",
                path.display()
            );
            continue;
        };
        if doc.get("schema").and_then(|s| s.as_str()) != Some(JSON_SCHEMA) {
            continue;
        }
        if let Some(recs) = doc.get("records").and_then(|r| r.as_array()) {
            records.extend(recs.iter().cloned());
        }
    }
    Ok(records)
}

// ──────────────────────────── report sinks ───────────────────────────

/// A consumer of run records that renders a machine-readable document.
pub trait ReportSink {
    /// Adds one record.
    ///
    /// # Errors
    ///
    /// [`SinkError`] if the sink rejects the record (see [`Self::emit_with`]).
    fn emit(&mut self, record: &RunRecord) -> Result<(), SinkError> {
        self.emit_with(record, &[])
    }

    /// Adds one record with caller-computed derived extras (e.g. a
    /// `speedup` over some baseline the sink cannot know about).
    ///
    /// # Errors
    ///
    /// [`SinkError`] if the record does not fit the document built so far
    /// (e.g. ragged CSV columns). The sink is unchanged on error.
    fn emit_with(
        &mut self,
        record: &RunRecord,
        extras: &[(&'static str, KvValue)],
    ) -> Result<(), SinkError>;

    /// Renders everything emitted so far.
    fn render(&self) -> String;

    /// The conventional file extension for this sink's format.
    fn extension(&self) -> &'static str;
}

/// Renders records as one `xmem-report-v1` JSON document.
#[derive(Debug, Default)]
pub struct JsonSink {
    records: Vec<JsonValue>,
}

impl JsonSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReportSink for JsonSink {
    fn emit_with(
        &mut self,
        record: &RunRecord,
        extras: &[(&'static str, KvValue)],
    ) -> Result<(), SinkError> {
        self.records.push(record.to_json_with(extras));
        Ok(())
    }

    fn render(&self) -> String {
        JsonValue::object([
            ("schema", JsonValue::Str(JSON_SCHEMA.to_string())),
            ("records", JsonValue::Array(self.records.clone())),
        ])
        .render()
    }

    fn extension(&self) -> &'static str {
        "json"
    }
}

/// Renders records as a flat CSV table. Columns come from the first
/// emitted record; later records must flatten to the same columns.
#[derive(Debug, Default)]
pub struct CsvSink {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses CSV text produced by this sink back into cells (quoted
    /// fields included) — the inverse used by the round-trip tests.
    pub fn parse(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut quoted = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if cell.is_empty() => quoted = true,
                ',' if !quoted => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' if !quoted => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' if !quoted => {}
                c => cell.push(c),
            }
        }
        if !cell.is_empty() || !row.is_empty() {
            row.push(cell);
            rows.push(row);
        }
        rows
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn csv_cell(value: &JsonValue) -> String {
    match value {
        JsonValue::Str(s) => csv_escape(s),
        JsonValue::Null => String::new(),
        // Numbers/bools render clean; arrays (e.g. a placement workload's
        // `workload_params.structs`) render as JSON containing commas and
        // quotes, so the rendered text goes through CSV escaping too.
        other => csv_escape(&other.render()),
    }
}

impl ReportSink for CsvSink {
    fn emit_with(
        &mut self,
        record: &RunRecord,
        extras: &[(&'static str, KvValue)],
    ) -> Result<(), SinkError> {
        let cells = record.flat_cells(extras);
        if self.header.is_empty() {
            self.header = cells.iter().map(|(name, _)| name.clone()).collect();
        } else {
            let names: Vec<&String> = cells.iter().map(|(name, _)| name).collect();
            if self.header.iter().collect::<Vec<_>>() != names {
                return Err(SinkError {
                    label: record.label.clone(),
                    message: format!(
                        "CSV records must share a column set (got {names:?}, header {:?})",
                        self.header
                    ),
                });
            }
        }
        self.rows
            .push(cells.iter().map(|(_, v)| csv_cell(v)).collect());
        Ok(())
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn extension(&self) -> &'static str {
        "csv"
    }
}

/// Writes a sink's rendered document to `path`, creating parent
/// directories as needed.
pub fn write_report(path: impl AsRef<Path>, sink: &dyn ReportSink) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, sink.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_parses_scalars() {
        let v = JsonValue::object([
            ("u", JsonValue::U64(42)),
            ("f", JsonValue::F64(0.5)),
            ("whole_f", JsonValue::F64(2.0)),
            ("b", JsonValue::Bool(true)),
            ("n", JsonValue::Null),
            ("s", JsonValue::Str("a \"quote\"\nline".to_string())),
            (
                "arr",
                JsonValue::Array(vec![JsonValue::U64(1), JsonValue::Null]),
            ),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // Whole floats keep their type.
        assert!(text.contains("\"whole_f\":2.0"));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    fn synthetic_record() -> RunRecord {
        let mk_cache = |accesses: u64| CacheStats {
            accesses,
            hits: accesses / 2,
            fills: accesses / 3,
            evictions: accesses / 4,
            writebacks: accesses / 5,
            snoop_invalidations: 0,
            snoop_writebacks: 0,
        };
        RunRecord {
            label: "unit/synthetic point".to_string(),
            config: SystemConfig::scaled_use_case1(8 << 10, crate::config::SystemKind::Xmem),
            workload: "gemm",
            workload_params: JsonValue::object([
                ("n", JsonValue::U64(24)),
                ("tile_bytes", JsonValue::U64(4 << 10)),
                ("steps", JsonValue::U64(2)),
                ("reuse", JsonValue::U64(200)),
            ]),
            report: RunReport {
                core: CoreStats {
                    cycles: 1000,
                    instructions: 900,
                    loads: 400,
                    stores: 100,
                    total_load_latency: 4800,
                },
                l1: mk_cache(500),
                l2: mk_cache(200),
                l3: mk_cache(90),
                dram: DramStats {
                    demand_read_hist: Default::default(),
                    reads: 80,
                    demand_reads: 60,
                    total_demand_read_latency: 9000,
                    writes: 20,
                    row_hits: 50,
                    row_misses: 20,
                    row_conflicts: 10,
                    total_read_latency: 11_000,
                    total_write_latency: 3000,
                },
                alb: AlbStats {
                    hits: 70,
                    misses: 2,
                },
                xmem_instructions: 12,
                instruction_overhead: 0.013,
                xmem_prefetch: PrefetchStats {
                    issued: 30,
                    useful: 25,
                },
                stride_prefetch: Some(PrefetchStats {
                    issued: 10,
                    useful: 4,
                }),
            },
            telemetry: None,
            sampling: None,
            run: Some(RunMeta {
                wall_nanos: 123_456,
                worker: 3,
                resumed: false,
            }),
        }
    }

    /// `report_from_json` + `RunMeta::from_record_json` invert `to_json`:
    /// a record rebuilt from its own JSON renders byte-identically.
    #[test]
    fn record_json_reconstruction_round_trips() {
        let record = synthetic_record();
        let json = record.to_json();
        let report = RunRecord::report_from_json(&json).expect("reconstructs");
        let rebuilt = RunRecord {
            report,
            run: RunMeta::from_record_json(&json),
            ..record.clone()
        };
        assert_eq!(rebuilt.to_json().render(), json.render());
        assert_eq!(report.cycles(), 1000);

        // stride_prefetch = None survives too.
        let mut no_stride = record;
        no_stride.report.stride_prefetch = None;
        let json = no_stride.to_json();
        let report = RunRecord::report_from_json(&json).expect("reconstructs");
        assert_eq!(report.stride_prefetch, None);
        assert_eq!(
            RunRecord {
                report,
                ..no_stride.clone()
            }
            .to_json()
            .render(),
            json.render()
        );
    }

    #[test]
    fn run_block_is_optional_and_tagged() {
        let mut record = synthetic_record();
        let json = record.to_json();
        assert_eq!(
            json.get("run")
                .and_then(|r| r.get("outcome"))
                .and_then(|o| o.as_str()),
            Some("ok")
        );
        record.run = None;
        assert!(record.to_json().get("run").is_none(), "block is optional");
        assert!(RunMeta::from_record_json(&record.to_json()).is_none());
        record.run = Some(RunMeta {
            resumed: true,
            ..RunMeta::default()
        });
        assert!(RunMeta::from_record_json(&record.to_json()).is_some_and(|m| m.resumed));
    }

    #[test]
    fn workload_params_block_is_optional() {
        let mut record = synthetic_record();
        assert_eq!(
            record
                .to_json()
                .get("workload_params")
                .and_then(|p| p.get("n"))
                .and_then(|n| n.as_u64()),
            Some(24)
        );
        // Records with an unknown parameterization (replayed traces,
        // pre-upgrade files) render without the block at all.
        record.workload_params = JsonValue::Null;
        assert!(record.to_json().get("workload_params").is_none());
    }

    #[test]
    fn telemetry_block_is_optional_and_backwards_compatible() {
        use crate::telemetry::{TelemetrySample, TelemetrySeries};
        let mut record = synthetic_record();
        // Without sampling there is no block at all — pre-telemetry
        // readers of xmem-report-v1 see an unchanged record.
        let bare = record.to_json();
        assert!(bare.get("telemetry").is_none());
        let mut series = TelemetrySeries::new(100);
        series.samples.push(TelemetrySample {
            instructions: 100,
            cycles: 140,
            ipc: 100.0 / 140.0,
            l2_psel: -3.0,
            ..Default::default()
        });
        series.samples.push(TelemetrySample {
            instructions: 180,
            cycles: 260,
            ipc: 80.0 / 120.0,
            l2_psel: 2.0,
            ..Default::default()
        });
        record.telemetry = Some(series.clone());
        let json = record.to_json();
        // The block sits between the component stats and `derived`, and a
        // reader that ignores unknown keys reconstructs the same report.
        assert_eq!(
            TelemetrySeries::from_record_json(&json),
            Some(series),
            "series round-trips through the record"
        );
        assert_eq!(
            RunRecord::report_from_json(&json),
            RunRecord::report_from_json(&bare),
            "old readers parse records with the block"
        );
        // And through rendered text, including the negative psel floats.
        let reparsed = JsonValue::parse(&json.render()).expect("valid JSON");
        assert_eq!(reparsed.render(), json.render());
        assert_eq!(
            TelemetrySeries::from_record_json(&reparsed),
            record.telemetry
        );
        // CSV rows omit the variable-length block: column sets stay fixed
        // whether or not a record carries telemetry.
        let with = record.flat_cells(&[]);
        record.telemetry = None;
        assert_eq!(with, record.flat_cells(&[]));
        assert!(with.iter().all(|(name, _)| !name.starts_with("telemetry")));
    }

    #[test]
    fn sampling_block_is_optional_and_backwards_compatible() {
        use crate::sampling::{SamplingSpec, SamplingSummary, WindowFeatures};
        let mut record = synthetic_record();
        // Without sampled execution there is no block at all — pre-sampling
        // readers of xmem-report-v1 see an unchanged record.
        let bare = record.to_json();
        assert!(bare.get("sampling").is_none());
        let spec = SamplingSpec {
            warmup_ops: 100,
            window_ops: 200,
            interval: 1000,
        };
        let windows = vec![
            WindowFeatures {
                instructions: 200,
                cycles: 250,
                l1_misses: 3,
                l2_misses: 1,
                l3_misses: 0,
                dram_accesses: 10,
                row_hits: 7,
                alb_lookups: 10,
                alb_hits: 9,
            },
            WindowFeatures {
                instructions: 200,
                cycles: 330,
                l1_misses: 6,
                l2_misses: 2,
                l3_misses: 1,
                dram_accesses: 10,
                row_hits: 4,
                alb_lookups: 10,
                alb_hits: 5,
            },
        ];
        let summary = SamplingSummary::from_windows(spec, 10_000, 2000, 1000, &windows);
        record.sampling = Some(summary.clone());
        let json = record.to_json();
        // The block sits after the component stats (and telemetry, when
        // present), before `derived`; a reader that ignores unknown keys
        // reconstructs the same report.
        assert_eq!(
            SamplingSummary::from_record_json(&json),
            Some(summary),
            "summary round-trips through the record"
        );
        assert_eq!(
            RunRecord::report_from_json(&json),
            RunRecord::report_from_json(&bare),
            "old readers parse records with the block"
        );
        // And through rendered text.
        let reparsed = JsonValue::parse(&json.render()).expect("valid JSON");
        assert_eq!(reparsed.render(), json.render());
        assert_eq!(
            SamplingSummary::from_record_json(&reparsed),
            record.sampling
        );
        // CSV rows omit the variable-length block: column sets stay fixed
        // whether or not a record carries a sampling summary.
        let with = record.flat_cells(&[]);
        record.sampling = None;
        assert_eq!(with, record.flat_cells(&[]));
        assert!(with.iter().all(|(name, _)| !name.starts_with("sampling")));
    }

    #[test]
    fn point_files_round_trip_via_scan() {
        let dir = std::env::temp_dir().join(format!("xmem-points-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let record = synthetic_record();
        let path = write_point_record(&dir, &record).expect("write");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(point_file_name(&record.label).as_str())
        );
        // A truncated half-written file is skipped, not fatal.
        std::fs::write(dir.join("truncated.json"), "{\"schema\":\"xmem-rep").unwrap();
        let records = scan_point_records(&dir).expect("scan");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], record.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
        // A missing directory is an empty scan, not an error.
        assert_eq!(scan_point_records(&dir).expect("missing dir"), Vec::new());
    }

    #[test]
    fn point_file_names_are_sanitized_and_distinct() {
        let a = point_file_name("gemm/XMem 32KB");
        assert!(a.starts_with("gemm-XMem-32KB-"));
        assert!(a.ends_with(".json"));
        assert_ne!(a, point_file_name("gemm/XMem_32KB"));
    }

    #[test]
    fn csv_sink_rejects_ragged_columns_with_typed_error() {
        let record = synthetic_record();
        let mut sink = CsvSink::new();
        sink.emit_with(&record, &[("speedup", 1.5.into())])
            .expect("first record defines the header");
        let err = sink
            .emit(&record)
            .expect_err("a record missing the extra column must be rejected");
        assert_eq!(err.label, record.label);
        assert!(err.message.contains("column set"), "{err}");
        // The sink is unchanged on error: header plus the one accepted row.
        assert_eq!(CsvSink::parse(&sink.render()).len(), 2);
    }

    #[test]
    fn csv_escaping_round_trips() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        // Non-string leaves are escaped after rendering: a JSON array cell
        // (placement `workload_params.structs`) contains commas and quotes.
        assert_eq!(csv_cell(&JsonValue::U64(7)), "7");
        let arr = JsonValue::Array(vec![
            JsonValue::object([("k", JsonValue::Str("v".into()))]),
            JsonValue::U64(1),
        ]);
        assert_eq!(csv_cell(&arr), "\"[{\"\"k\"\":\"\"v\"\"},1]\"");
        assert_eq!(
            CsvSink::parse(&format!("{}\n", csv_cell(&arr)))[0][0],
            arr.render()
        );
        let parsed = CsvSink::parse("a,\"b,c\",\"say \"\"hi\"\"\"\n1,2,3\n");
        assert_eq!(
            parsed,
            vec![
                vec!["a".to_string(), "b,c".to_string(), "say \"hi\"".to_string()],
                vec!["1".to_string(), "2".to_string(), "3".to_string()],
            ]
        );
    }
}
