//! # xmem-sim — the full-system driver
//!
//! Composes every substrate into the simulated machine of Table 3 and runs
//! workload generators on it:
//!
//! ```text
//! workload generator ──TraceSink──▶ Machine
//!                                    ├─ Core (cpu-sim)
//!                                    ├─ Hierarchy L1/L2/L3 (cache-sim)
//!                                    │    └─ Dram (dram-sim)
//!                                    ├─ AMU + PATs (xmem-core)
//!                                    └─ Os: page table + frames (os-sim)
//! ```
//!
//! [`run_workload`] executes the two-pass compile/load/run flow;
//! [`experiments`] wraps it in the exact system configurations the paper's
//! figures compare.
//!
//! ```
//! use xmem_sim::{run_workload, SystemConfig, SystemKind};
//! use workloads::polybench::{KernelParams, PolybenchKernel};
//!
//! let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Baseline);
//! let p = KernelParams { n: 16, tile_bytes: 1024, steps: 1, reuse: 200 };
//! let r = run_workload(&cfg, |s| PolybenchKernel::Mvt.generate(&p, s));
//! assert!(r.core.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coherence;
pub mod config;
pub mod experiments;
pub mod harness;
pub mod machine;
pub mod multicore;
pub mod report;
pub mod report_sink;
pub mod sampling;
pub mod telemetry;

pub use crate::coherence::{mesi_access, CoherentAccess, CoherentCluster, MesiDomains};
pub use crate::config::{
    CoherenceMode, FramePolicyKind, MultiCoreConfig, SystemConfig, SystemConfigBuilder, SystemKind,
};
pub use crate::experiments::{placement_specs, run_placement, KernelRun, Uc2System};
pub use crate::harness::{
    default_workers, run_jobs, Progress, RunFailure, RunMeta, RunOutcome, RunRecord, RunSpec,
    Sweep, WorkloadSpec,
};
pub use crate::machine::{
    run_generator, run_generator_sampled, run_workload, run_workload_with_telemetry, Generator,
    Machine, RunOutput, ScanSink,
};
#[doc(hidden)]
pub use crate::machine::{run_workload_sampled_scalar, run_workload_scalar};
pub use crate::multicore::{run_corun, CorunReport};
pub use crate::report::RunReport;
pub use crate::report_sink::{
    point_file_name, scan_point_records, write_point_record, write_report, CsvSink, JsonError,
    JsonSink, JsonValue, ReportSink, JSON_SCHEMA,
};
pub use crate::sampling::{
    SampleCluster, SamplePhase, SampledMetric, SamplingSpec, SamplingSummary, WindowFeatures,
};
pub use crate::telemetry::{
    ChromeTrace, TelemetrySample, TelemetrySeries, DEFAULT_EPOCH_INSTRUCTIONS,
};
